"""Shared helpers for the benchmark/reproduction harness.

Each benchmark regenerates one of the paper's tables/figures (see
DESIGN.md §3).  Besides pytest-benchmark timing, every benchmark
writes its reproduced rows to ``benchmarks/results/<id>.txt`` so the
numbers quoted in EXPERIMENTS.md can be re-derived with one command.
"""

from __future__ import annotations

import json
import platform
import random
import sys
from pathlib import Path
from typing import Any

from repro.sim import DuplexLink, LinkConfig, Simulator
from repro.transport import (
    MonolithicTcpHost,
    Rfc793Shim,
    SublayeredTcpHost,
    TcpConfig,
)

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, lines: list[str]) -> None:
    """Persist a reproduced table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n=== {name} ===")
    print(text)


def write_bench_json(
    name: str,
    *,
    wall_s: float,
    events: int | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Persist machine-readable results to ``results/BENCH_<name>.json``.

    One JSON object per benchmark — name, wall time, and (when the
    benchmark is event-loop bound) events and events/sec — so the perf
    trajectory can be diffed across PRs instead of eyeballing the text
    tables.
    """
    payload: dict[str, Any] = {
        "bench": name,
        "wall_s": round(wall_s, 6),
        "python": platform.python_version(),
    }
    if events is not None:
        payload["events"] = events
        payload["events_per_s"] = (
            round(events / wall_s, 1) if wall_s > 0 else None
        )
    if extra:
        payload.update(extra)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench-json] {path}", file=sys.stderr)
    return payload


def table(rows: list[dict[str, Any]]) -> list[str]:
    """Fixed-width text table from uniform dict rows."""
    if not rows:
        return ["(no rows)"]
    headers = list(rows[0])
    widths = {
        h: max(len(str(h)), *(len(str(r[h])) for r in rows)) for h in headers
    }
    lines = ["  ".join(str(h).ljust(widths[h]) for h in headers)]
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append("  ".join(str(row[h]).ljust(widths[h]) for h in headers))
    return lines


# ----------------------------------------------------------------------
# Transport run helpers (mirrors tests/transport/helpers.py)
# ----------------------------------------------------------------------
def make_pair(
    kind_a: str = "sub",
    kind_b: str = "sub",
    seed: int = 1,
    config: TcpConfig | None = None,
    link: LinkConfig | None = None,
    **host_kwargs: Any,
):
    sim = Simulator()
    config = config or TcpConfig(mss=1000)

    def build(kind: str, name: str):
        if kind == "mono":
            return MonolithicTcpHost(name, sim.clock(), config)
        if kind == "sub":
            return SublayeredTcpHost(name, sim.clock(), config, **host_kwargs)
        if kind == "sub+shim":
            return SublayeredTcpHost(
                name, sim.clock(), config, shim=Rfc793Shim(), **host_kwargs
            )
        raise ValueError(kind)

    a = build(kind_a, "a")
    b = build(kind_b, "b")
    duplex = DuplexLink(
        sim,
        link or LinkConfig(delay=0.02, rate_bps=8_000_000),
        rng_forward=random.Random(seed),
        rng_reverse=random.Random(seed + 1),
    )
    duplex.attach(a, b)
    return sim, a, b


def run_transfer(
    sim: Simulator,
    a: Any,
    b: Any,
    nbytes: int = 50_000,
    until: float = 300.0,
) -> dict[str, Any]:
    """One-way transfer with completion timing; returns measurements."""
    b.listen(80)
    data = bytes(i % 251 for i in range(nbytes))
    timing: dict[str, float] = {}

    # completion = the receiver has the whole stream (uniform across
    # both TCPs; their close-callback semantics differ)
    def accept(peer_sock) -> None:
        def on_data(_chunk) -> None:
            if len(peer_sock.bytes_received()) >= nbytes:
                timing.setdefault("done", sim.now)

        peer_sock.on_data = on_data

    b.on_accept = accept
    sock = a.connect(12345, 80)

    def go() -> None:
        timing["start"] = sim.now
        sock.send(data)
        sock.close()

    sock.on_connect = go
    sim.run(until=until)
    peer = b.socket_for(80, 12345)
    received = peer.bytes_received() if peer is not None else b""
    elapsed = timing.get("done", sim.now) - timing.get("start", 0.0)
    return {
        "intact": received == data,
        "bytes": len(received),
        "virtual_seconds": round(elapsed, 3),
        "goodput_mbps": (
            round(8 * nbytes / elapsed / 1e6, 3) if elapsed > 0 else 0.0
        ),
        "sock": sock,
        "peer": peer,
    }
