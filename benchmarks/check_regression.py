#!/usr/bin/env python3
"""Benchmark regression gate: fresh BENCH_*.json vs committed baselines.

Compares the machine-readable results the C-series benchmarks emit
(``benchmarks/results/BENCH_<name>.json``) against the committed
baselines in ``benchmarks/baselines/`` and fails (exit 1) when a
watched metric regresses past the tolerance.

Only *dimensionless* metrics are gated — overhead ratios like
``full_over_off_x`` (C7: full-tier hop cost over off-tier hop cost) and
``overhead_untuned_x`` (C3: sublayered wall clock over monolithic).
Absolute wall/ns numbers differ across runner hardware, so they are
reported but never gated.  The gate is one-sided: a metric *improving*
past the tolerance is reported as such and passes; call with
``--update`` to refresh the baselines after a deliberate change.

Usage:
    python benchmarks/check_regression.py [--tolerance 0.25] [--update]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

HERE = Path(__file__).parent
RESULTS = HERE / "results"
BASELINES = HERE / "baselines"

#: Watched dimensionless metrics per benchmark.  Direction "up" means a
#: larger value is a regression (these are all overhead ratios).
WATCHED: dict[str, dict[str, str]] = {
    "c3_tune": {
        "overhead_untuned_x": "up",
        "overhead_tuned_x": "up",
        "overhead_traced_x": "up",
    },
    "c7_hopcost": {
        "full_over_off_x": "up",
        "metrics_over_off_x": "up",
    },
    "c8_faultcost": {
        "noop_over_plain_hop_x": "up",
    },
    # warm_over_cold_x: fraction of a cold proof run a warm-cache run
    # still costs (up = regression).  speedup_jobs4_x: 4-worker speedup
    # over serial (down = regression; the committed baseline comes from
    # a 1-CPU container, so CI's multi-core runs only ever improve it —
    # the hard >=2x bound lives inside the benchmark itself).
    "c9_parallel": {
        "warm_over_cold_x": "up",
        "speedup_jobs4_x": "down",
    },
    # C10: cost of a warm-cache symbolic flow verification of the
    # 64-node grid, as a fraction of the cold proof (up = regression;
    # the hard <25% bound lives inside the benchmark itself).
    "c10_flowscale": {
        "warm_over_cold_x": "up",
    },
    # C11: what the codegen + batch fast path buys at tier=off.
    # batch_speedup_x: send_batch(64) through the fused push_batch over
    # the scalar chain walk; scalar_fused_speedup_x: one send() through
    # the fused function over the chain walk.  Both are down = regression
    # (the hard >=5x bound lives inside the benchmark itself).
    "c11_batch": {
        "batch_speedup_x": "down",
        "scalar_fused_speedup_x": "down",
    },
    # C12: the cost of watching.  sampled001_over_untraced_x: a
    # campaign-style trial with sampled tracing at rate 0.01 over the
    # same trial untraced (the hard <=1.05 bound lives inside the
    # benchmark).  hist_observe_over_inc_x: observe_hist hot path over
    # a counter inc (hard <=1.5 inside).  hist_hop_over_plain_x: a
    # metrics-tier chain with the per-traversal latency histogram over
    # the same chain without it.
    # The batched metrics-tier ratios (batch64_over_scalar_x,
    # batch64_hist_over_scalar_x) are reported below, not watched: their
    # hard <=1.05 bounds live inside the benchmark and sit tighter than
    # any tolerance band around a sub-microsecond measurement.
    "c12_obscost": {
        "sampled001_over_untraced_x": "up",
        "hist_observe_over_inc_x": "up",
        "hist_hop_over_plain_x": "up",
    },
    # C13: sharded-fleet speedup over the serial conductor at 1024
    # nodes (down = regression).  The committed baseline comes from a
    # 1-CPU container where forked workers time-slice one core, so CI's
    # multi-core runs only ever improve it — the hard >=2x bound on
    # >= 4 CPUs lives inside the benchmark itself.
    "c13_toposcale": {
        "speedup_sharded_1024_x": "down",
    },
    # C14: the live-runtime delivery contract.  echo_ratio_x is bytes
    # echoed back over bytes sent through real localhost UDP sockets —
    # 1.0 by construction (the benchmark asserts losslessness inline),
    # gated with direction "down" so any loss is a hard failure while
    # throughput/latency stay informational (hardware-dependent).
    "c14_netload": {
        "echo_ratio_x": "down",
    },
}

#: Context shown alongside the gate (never gated: hardware-dependent).
REPORTED: dict[str, list[str]] = {
    "c3_tune": ["wall_s", "span_overhead_disabled"],
    "c7_hopcost": ["ns_per_hop_full", "ns_per_hop_off"],
    "c8_faultcost": ["ns_per_send_plain", "ns_per_send_noop"],
    "c9_parallel": ["serial_ms", "parallel_ms", "warm_ms", "cpus"],
    "c10_flowscale": ["nodes", "wall_s"],
    "c11_batch": [
        "ns_per_unit_scalar_chain",
        "ns_per_unit_scalar_fused",
        "ns_per_unit_batch_fused",
    ],
    "c12_obscost": [
        "batch64_over_scalar_x",
        "batch64_hist_over_scalar_x",
        "ns_per_send_untraced",
        "ns_per_send_sample001",
        "ns_per_inc",
        "ns_per_observe",
        "ns_per_flush_sample",
    ],
    "c13_toposcale": [
        "pps_serial_64",
        "pps_sharded_64",
        "pps_serial_256",
        "pps_sharded_256",
        "pps_serial_1024",
        "pps_sharded_1024",
        "windows_1024",
        "cpus",
    ],
    "c14_netload": [
        "throughput_mbps",
        "msgs_per_sec",
        "rtt_p50_ms",
        "rtt_p99_ms",
    ],
}


def load(path: Path) -> dict:
    with path.open() as fh:
        return json.load(fh)


def check(bench: str, tolerance: float) -> list[str]:
    """Return a list of regression messages for one benchmark."""
    result_path = RESULTS / f"BENCH_{bench}.json"
    baseline_path = BASELINES / f"BENCH_{bench}.json"
    if not result_path.exists():
        return [f"{bench}: no fresh result at {result_path} (run the benchmark first)"]
    if not baseline_path.exists():
        return [f"{bench}: no committed baseline at {baseline_path}"]
    result = load(result_path)
    baseline = load(baseline_path)
    failures: list[str] = []
    for metric, direction in WATCHED[bench].items():
        if metric not in baseline:
            failures.append(f"{bench}.{metric}: missing from baseline")
            continue
        if metric not in result:
            failures.append(f"{bench}.{metric}: missing from fresh result")
            continue
        base, new = float(baseline[metric]), float(result[metric])
        if base <= 0:
            failures.append(f"{bench}.{metric}: non-positive baseline {base}")
            continue
        change = new / base - 1.0
        regressed = change > tolerance if direction == "up" else change < -tolerance
        status = "REGRESSED" if regressed else (
            "improved" if abs(change) > tolerance else "ok"
        )
        print(
            f"  {bench}.{metric}: baseline {base:g}, now {new:g} "
            f"({change:+.1%}) [{status}]"
        )
        if regressed:
            failures.append(
                f"{bench}.{metric}: {base:g} -> {new:g} "
                f"({change:+.1%} > {tolerance:.0%} tolerance)"
            )
    for metric in REPORTED.get(bench, []):
        if metric in result:
            base = baseline.get(metric, "-")
            print(f"  {bench}.{metric}: baseline {base}, now {result[metric]} "
                  "[informational]")
    return failures


def update_baselines() -> int:
    BASELINES.mkdir(exist_ok=True)
    copied = 0
    for bench in WATCHED:
        src = RESULTS / f"BENCH_{bench}.json"
        if not src.exists():
            print(f"skip {bench}: no fresh result to promote")
            continue
        shutil.copy(src, BASELINES / src.name)
        print(f"promoted {src} -> {BASELINES / src.name}")
        copied += 1
    return 0 if copied else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative worsening per metric (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="copy fresh results over the committed baselines and exit",
    )
    args = parser.parse_args(argv)
    if args.update:
        return update_baselines()
    failures: list[str] = []
    for bench in WATCHED:
        print(f"checking {bench} (tolerance {args.tolerance:.0%}):")
        failures.extend(check(bench, args.tolerance))
    if failures:
        print("\nbenchmark regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
