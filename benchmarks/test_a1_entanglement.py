"""A1 — Section 2.3's motivating claim, measured.

Paper: "the state maintained by the transport layer (e.g., sequence
numbers, window sizes, etc.) is shared by all of these subfunctions,
which leads to non-modular code", citing the TCP/IP Illustrated input
routine that "intersperse[s] calls to several different functions ...
all of which share and mutate the same state (encapsulated in the PCB
block)".

Reproduced: both TCPs run the identical workload; every state access
is attributed to the executing subfunction/sublayer.  The tables show
per-subfunction footprints, the shared-field lists, and the pairwise
coupling — monolithic PCB vs sublayered stacks."""

from _util import make_pair, run_transfer, table, write_result

from repro.analysis import coupling_matrix, entanglement_rows, entanglement_score
from repro.sim import LinkConfig
from repro.verify import analyze_ownership

LINK = LinkConfig(delay=0.02, rate_bps=8_000_000, loss=0.05)


def run_both():
    sim, a, b = make_pair("mono", "mono", link=LINK, seed=2)
    run_transfer(sim, a, b, nbytes=60_000)
    sim2, c, d = make_pair("sub", "sub", link=LINK, seed=2)
    run_transfer(sim2, c, d, nbytes=60_000)
    return a.access_log, c.access_log


def test_a1_entanglement(benchmark):
    mono_log, sub_log = benchmark.pedantic(run_both, rounds=1, iterations=1)
    mono_targets = {"pcb"}
    sub_targets = {"osr", "rd", "cm", "dm"}

    lines = ["monolithic TCP: per-subfunction PCB footprint"]
    lines.extend(table(entanglement_rows(mono_log, mono_targets)))
    lines.append("")
    lines.append("sublayered TCP: per-sublayer state footprint")
    lines.extend(table(entanglement_rows(sub_log, sub_targets)))
    lines.append("")

    mono_coupling = coupling_matrix(mono_log, mono_targets)
    coupled_pairs = {pair: n for pair, n in mono_coupling.items() if n > 0}
    lines.append(f"monolithic coupling matrix (fields shared per pair): "
                 f"{coupled_pairs}")
    sub_coupling = coupling_matrix(sub_log, sub_targets)
    lines.append(f"sublayered coupling matrix: "
                 f"{ {p: n for p, n in sub_coupling.items() if n > 0} or '{} (empty)'}")
    lines.append("")

    mono_score = entanglement_score(mono_log, mono_targets)
    sub_score = entanglement_score(sub_log, sub_targets)
    lines.append(
        f"entanglement score (mean pairwise Jaccard of footprints): "
        f"monolithic {mono_score:.3f}, sublayered {sub_score:.3f}"
    )

    mono_own = analyze_ownership(mono_log, mono_targets)
    lines.append("")
    lines.append("the shared PCB fields and who touches them:")
    for (target, name), actors in sorted(mono_own.shared_fields.items()):
        lines.append(f"  {target}.{name}: {', '.join(actors)}")
    lines.append("")
    lines.append(
        '"the window is crucial for ensuring reliable delivery, but ... '
        'congestion/flow control can also alter the window" — visible '
        "above as cwnd/snd_wnd shared between rd and cc/flow."
    )
    write_result("a1_entanglement", lines)

    assert mono_score > 0.05
    assert sub_score == 0.0
    assert any(n > 0 for n in mono_coupling.values())
    assert all(n == 0 for n in sub_coupling.values())
