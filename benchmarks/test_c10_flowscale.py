"""C10 — symbolic flow analysis: scaling and the warm proof cache.

The static data-plane gate only earns its place in CI if (a) analysis
time grows gracefully with topology size and (b) re-verifying an
unchanged forwarding plane is nearly free.  This benchmark analyzes
square grids at 16, 36, and 64 nodes (the largest comfortably past the
50-node mark), cold and then warm from the content-hash proof cache
keyed by the FIB+topology fingerprint.

Gated metric: ``warm_over_cold_x`` on the 64-node grid — a warm
re-verification must cost under 25% of a cold proof (in practice it is
one fingerprint plus one cache read, i.e. a few percent).  The cached
report must also be byte-identical to the computed one.
"""

import json
import time

from _util import table, write_bench_json, write_result

from repro.flow.examples import grid
from repro.flow.properties import analyze
from repro.par import ProofCache

SIDES = [4, 6, 8]  # 16, 36, 64 nodes
GATED_SIDE = 8


def run_all(tmp_path):
    """Analyze each grid cold then warm; returns per-size measurements."""
    cache = ProofCache(root=tmp_path / "c10-cache", domain="flow")
    sizes = []
    for side in SIDES:
        spec = grid(side)

        start = time.perf_counter()
        cold = analyze(spec, cache=cache)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = analyze(spec, cache=cache)
        warm_s = time.perf_counter() - start

        assert cold.passed, f"grid{side}x{side} refuted a property"
        assert json.dumps(cold.as_dict(), sort_keys=True) == json.dumps(
            warm.as_dict(), sort_keys=True
        ), "cached report diverged from the computed one"
        sizes.append(
            {
                "side": side,
                "nodes": len(spec.nodes),
                "iterations": cold.stats["iterations"],
                "cold_s": cold_s,
                "warm_s": warm_s,
                "warm_over_cold": warm_s / cold_s,
            }
        )
    stats = cache.stats()
    assert stats["misses"] == len(SIDES) and stats["hits"] == len(SIDES)
    return sizes


def test_c10_flowscale(benchmark, tmp_path):
    sizes = benchmark.pedantic(
        lambda: run_all(tmp_path), rounds=1, iterations=1
    )

    rows = [
        {
            "topology": f"grid{m['side']}x{m['side']}",
            "nodes": m["nodes"],
            "fixpoint steps": m["iterations"],
            "cold_ms": round(m["cold_s"] * 1e3, 1),
            "warm_ms": round(m["warm_s"] * 1e3, 1),
            "warm/cold": f"{m['warm_over_cold']:.1%}",
        }
        for m in sizes
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        "four properties (no-escape, blackhole-freedom, loop-freedom, "
        "isolation) proved per topology; warm runs replay the cached "
        "verdict keyed by the FIB+topology fingerprint"
    )
    write_result("c10_flowscale", lines)

    gated = next(m for m in sizes if m["side"] == GATED_SIDE)
    write_bench_json(
        "c10_flowscale",
        wall_s=gated["cold_s"],
        extra={
            "nodes": gated["nodes"],
            "cold_ms_by_nodes": {
                str(m["nodes"]): round(m["cold_s"] * 1e3, 1) for m in sizes
            },
            "warm_ms_by_nodes": {
                str(m["nodes"]): round(m["warm_s"] * 1e3, 1) for m in sizes
            },
            "warm_over_cold_x": round(gated["warm_over_cold"], 4),
        },
    )

    # A warm re-verification of an unchanged 64-node forwarding plane
    # must cost well under a cold proof.
    assert gated["warm_over_cold"] < 0.25, (
        f"warm cache run cost {gated['warm_over_cold']:.1%} of cold "
        f"(bound: 25%) on {gated['nodes']} nodes"
    )
