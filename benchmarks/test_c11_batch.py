"""C11 — batched + fused traversal cost vs the scalar chain walk.

C7 prices one *hop*; C11 prices one *unit* through the whole stack,
four ways, on the same 8-deep passthrough geometry:

* ``scalar/chain``   — today's tier=off baseline: one ``send()`` per
  unit, per-hop bound-method chain (codegen disabled, exactly what C7
  times);
* ``scalar/fused``   — one ``send()`` per unit through the
  exec-compiled fused function (no per-hop dispatch);
* ``batch/chain``    — ``send_batch(64)`` decaying to the default
  per-unit loop (codegen disabled);
* ``batch/fused``    — ``send_batch(64)`` through the generated
  ``push_batch``: for a pure passthrough stack with a batch-aware
  endpoint, the entire traversal of 64 units is one Python call.

The acceptance gate for the tentpole: ``batch/fused`` must move units
at least 5x faster than ``scalar/chain`` — otherwise the codegen +
vector machinery does not pay for its complexity.
"""

import time

from _util import table, write_bench_json, write_result

from repro.compose import SlotSpec, StackBuilder, StackProfile
from repro.core import PassthroughSublayer

DEPTH = 8
HOPS_PER_SEND = DEPTH + 1
BATCH = 64
SCALAR_SENDS = 2_000
BATCHES = 100  # 6_400 units per timed round
ROUNDS = 5
SPEEDUP_GATE = 5.0

CHAIN_PROFILE = StackProfile(
    name="c11-chain",
    slots=tuple(
        SlotSpec(f"p{i}", lambda params, i=i: PassthroughSublayer(f"p{i}"))
        for i in range(DEPTH)
    ),
    doc=f"{DEPTH} passthrough sublayers; every traversal is pure overhead.",
)

PAYLOAD = b"x" * 64


def build(codegen: bool):
    stack = StackBuilder(CHAIN_PROFILE, name="c11", tier="off").build()
    stack.codegen_enabled = codegen
    stack.on_transmit = lambda sdu, **meta: None
    stack.on_transmit_batch = lambda units, metas=None: None
    return stack


def time_scalar(stack) -> float:
    """Median wall seconds per *unit* over ROUNDS timed rounds."""
    send = stack.send
    for _ in range(100):
        send(PAYLOAD)
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(SCALAR_SENDS):
            send(PAYLOAD)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2] / SCALAR_SENDS


def time_batch(stack, batches: int = BATCHES) -> float:
    """Median wall seconds per *unit*, sent as ``BATCH``-unit batches."""
    batch = [PAYLOAD] * BATCH
    send_batch = stack.send_batch
    for _ in range(10):
        send_batch(batch)
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(batches):
            send_batch(batch)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2] / (batches * BATCH)


def test_c11_batch(benchmark):
    chain = build(codegen=False)
    fused = build(codegen=True)

    # the configurations really are what they claim
    assert chain.wiring_plan.fused == {"down": False, "up": False}
    assert fused.wiring_plan.fused == {"down": True, "up": True}
    counted = []
    fused.on_transmit_batch = lambda units, metas=None: counted.append(len(units))
    fused.send_batch([PAYLOAD] * BATCH)
    assert counted == [BATCH]
    fused.on_transmit_batch = lambda units, metas=None: None

    per_unit = {}
    per_unit["scalar/chain"] = benchmark.pedantic(
        lambda: time_scalar(chain), rounds=1, iterations=1
    )
    per_unit["scalar/fused"] = time_scalar(fused)
    per_unit["batch/chain"] = time_batch(chain)
    # the fused batch path is so cheap that a 100-batch round is only a
    # few microseconds of wall — time 50x more of them for a stable read
    per_unit["batch/fused"] = time_batch(fused, batches=BATCHES * 50)

    baseline = per_unit["scalar/chain"]
    speedup = baseline / per_unit["batch/fused"]
    rows = [
        {
            "path": path,
            "ns_per_unit": round(cost * 1e9, 1),
            "ns_per_hop": round(cost * 1e9 / HOPS_PER_SEND, 1),
            "vs_scalar_chain": f"{baseline / cost:.2f}x",
        }
        for path, cost in per_unit.items()
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        f"{DEPTH}-sublayer passthrough chain at tier=off, batch={BATCH}, "
        f"median of {ROUNDS} rounds"
    )
    lines.append(
        f"fused batch moves a unit {speedup:.1f}x faster than the scalar "
        f"chain walk (gate: >= {SPEEDUP_GATE:.0f}x) — the per-crossing "
        "overhead amortizes to one generated call per batch"
    )
    write_result("c11_batch", lines)
    write_bench_json(
        "c11_batch",
        wall_s=per_unit["scalar/chain"] * SCALAR_SENDS,
        extra={
            "ns_per_unit_scalar_chain": round(baseline * 1e9, 1),
            "ns_per_unit_scalar_fused": round(
                per_unit["scalar/fused"] * 1e9, 1
            ),
            "ns_per_unit_batch_chain": round(per_unit["batch/chain"] * 1e9, 1),
            "ns_per_unit_batch_fused": round(per_unit["batch/fused"] * 1e9, 1),
            "batch_speedup_x": round(speedup, 3),
            "scalar_fused_speedup_x": round(
                baseline / per_unit["scalar/fused"], 3
            ),
            "batch": BATCH,
            "hops_per_send": HOPS_PER_SEND,
        },
    )

    # the tentpole acceptance gate
    assert speedup >= SPEEDUP_GATE, (
        f"batch/fused is only {speedup:.2f}x over the scalar chain walk"
    )
    # and the fused scalar path must itself beat the chain walk
    assert per_unit["scalar/fused"] < per_unit["scalar/chain"]
