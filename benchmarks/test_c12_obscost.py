"""C12 — the cost of watching: histograms and sampled tracing.

Three measurements, from microscope to workload:

1. **Hop microscope** — the C7 passthrough chain at ``tier=metrics``,
   with a per-traversal ``hop_latency`` histogram and with a
   :class:`~repro.obs.SpanTracer` at sample rates {0, 0.01, 1.0}.
   Nothing but hops, so these rows show the worst case: on a stack
   that does no protocol work, even the sampled-out fast path (skip
   gate + call-through) is a measurable multiple of a bare hop.

2. **Trial workload** — a campaign-style HDLC transfer over a lossy
   link, the shape of a `repro.faults` trial.  Here protocol work
   dominates and the ISSUE's fleet-scale claim is gated hard:
   sampled tracing at rate 0.01 must cost ≤5% over untraced.

3. **Feed micro** — ``MetricsRegistry.observe_hist`` vs a plain
   counter ``inc``, gated at ≤1.5x.  The histogram's deferred
   bucketing keeps the hot path to an append; the batch flush that
   pays the ``frexp`` bill at snapshot time is reported separately
   (informational — it is scrape-path cost, not data-plane cost).

``check_regression.py`` watches the three dimensionless ratios.
"""

import random
import time

from _util import table, write_bench_json, write_result

from repro.compose import SlotSpec, StackBuilder, StackProfile
from repro.core import PassthroughSublayer
from repro.datalink.stacks import build_hdlc_stack, collect_bytes, send_bytes
from repro.obs import Histogram, MetricsRegistry, SpanTracer
from repro.obs.hist import _FLUSH_AT
from repro.sim import DuplexLink, LinkConfig, Simulator

DEPTH = 8
HOPS_PER_SEND = DEPTH + 1
SENDS = 2_000
ROUNDS = 5

CHAIN_PROFILE = StackProfile(
    name="c12-chain",
    slots=tuple(
        SlotSpec(f"p{i}", lambda params, i=i: PassthroughSublayer(f"p{i}"))
        for i in range(DEPTH)
    ),
    doc=f"{DEPTH} passthrough sublayers; every hop is pure overhead.",
)


def build_chain():
    stack = StackBuilder(CHAIN_PROFILE, name="c12", tier="metrics").build()
    stack.on_transmit = lambda sdu, **meta: None
    return stack


def time_chain(stack, sends: int = SENDS) -> float:
    """Min wall seconds per send over ROUNDS timed batches."""
    payload = b"x" * 64
    send = stack.send
    for _ in range(100):  # warm-up
        send(payload)
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(sends):
            send(payload)
        samples.append(time.perf_counter() - start)
    return min(samples) / sends


BATCH = 64


def time_chain_batch(stack, sends: int = SENDS) -> float:
    """Min wall seconds per *unit*, sent as ``BATCH``-unit batches."""
    payload = b"x" * 64
    batch = [payload] * BATCH
    send_batch = stack.send_batch
    for _ in range(10):  # warm-up
        send_batch(batch)
    batches = max(1, sends // BATCH)
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(batches):
            send_batch(batch)
        samples.append(time.perf_counter() - start)
    return min(samples) / (batches * BATCH)


def hdlc_trial(sample=None, messages=20, loss=0.1) -> float:
    """One campaign-shaped trial; returns its wall seconds."""
    sim = Simulator()
    stacks = [
        build_hdlc_stack(f"dl-{end}", sim.clock(), retransmit_timeout=0.1)
        for end in ("a", "b")
    ]
    link = DuplexLink(
        sim,
        LinkConfig(delay=0.01, loss=loss),
        rng_forward=random.Random(1),
        rng_reverse=random.Random(2),
    )
    link.attach(stacks[0], stacks[1])
    if sample is not None:
        tracer = SpanTracer(sample=sample, rng=random.Random(7), tail="root")
        tracer.attach(stacks[0]).attach(stacks[1])
    inbox = collect_bytes(stacks[1])
    start = time.perf_counter()
    for index in range(messages):
        send_bytes(stacks[0], (b"payload-%03d" % index) * 12)
    sim.run(until=120.0)
    elapsed = time.perf_counter() - start
    assert len(inbox) == messages, "trial must complete or the timing lies"
    return elapsed


def time_trials(sample=None, rounds=5) -> float:
    hdlc_trial(sample)  # warm-up
    return min(hdlc_trial(sample) for _ in range(rounds))


FEED_N = 32_000  # < _FLUSH_AT, so the timed loop never pays the flush
assert FEED_N < _FLUSH_AT


def time_feed(rounds=7):
    """(ns/inc, ns/observe_hist feed, ns/sample flush) minima."""
    registry = MetricsRegistry()
    values = [0.001 * (i % 97 + 1) for i in range(FEED_N)]

    def one_inc():
        start = time.perf_counter()
        for _ in range(FEED_N):
            registry.inc("c")
        return time.perf_counter() - start

    def one_feed():
        start = time.perf_counter()
        for value in values:
            registry.observe_hist("h", value)
        elapsed = time.perf_counter() - start
        registry.hist("h")._flush()  # untimed: scrape-path work
        return elapsed

    def one_flush():
        hist = Histogram()
        for value in values:
            hist.observe(value)
        start = time.perf_counter()
        hist._flush()
        return time.perf_counter() - start

    inc = min(one_inc() for _ in range(rounds)) / FEED_N
    feed = min(one_feed() for _ in range(rounds)) / FEED_N
    flush = min(one_flush() for _ in range(rounds)) / FEED_N
    return inc, feed, flush


def test_c12_obscost(benchmark):
    # --- 1. hop microscope (tier=metrics chain) -----------------------
    per_send = {}
    per_send["untraced"] = benchmark.pedantic(
        lambda: time_chain(build_chain()), rounds=1, iterations=1
    )

    hist_chain = build_chain()
    hist_chain.hop_latency = Histogram()
    per_send["hop_hist"] = time_chain(hist_chain)
    assert hist_chain.hop_latency.count > 0, "the clock pair must observe"

    # batched hops on the metrics tier: one counter bump and one
    # count-weighted histogram observation per batch, so a unit in a
    # batch must never cost more than a scalar send of the same unit
    per_send["batch64"] = time_chain_batch(build_chain())
    bhist_chain = build_chain()
    bhist_chain.hop_latency = Histogram()
    per_send["batch64_hist"] = time_chain_batch(bhist_chain)
    before = bhist_chain.hop_latency.count
    bhist_chain.send_batch([b"y"] * BATCH)
    assert bhist_chain.hop_latency.count == before + BATCH, (
        "a batched traversal must weight the latency histogram by count"
    )
    batch_over_scalar = per_send["batch64"] / per_send["untraced"]
    batch_hist_over_scalar = per_send["batch64_hist"] / per_send["hop_hist"]

    for rate, key in ((0.0, "sample0"), (0.01, "sample001"), (1.0, "sample1")):
        chain = build_chain()
        SpanTracer(
            sample=rate, rng=random.Random(7), tail="root"
        ).attach(chain)
        per_send[key] = time_chain(chain)

    hist_hop_over_plain = per_send["hop_hist"] / per_send["untraced"]

    # --- 2. trial workload (the fleet-scale claim) --------------------
    trial_untraced = time_trials()
    trial_s001 = time_trials(0.01)
    trial_s1 = time_trials(1.0)
    sampled001_over_untraced = trial_s001 / trial_untraced
    traced_over_untraced = trial_s1 / trial_untraced

    # --- 3. feed micro ------------------------------------------------
    inc_s, feed_s, flush_s = time_feed()
    hist_observe_over_inc = feed_s / inc_s

    rows = [
        {
            "row": key,
            "ns_per_send": round(cost * 1e9, 1),
            "vs_untraced": f"{cost / per_send['untraced']:.2f}x",
        }
        for key, cost in per_send.items()
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        f"chain: {DEPTH} passthrough sublayers at tier=metrics, "
        f"{HOPS_PER_SEND} hops/send, min of {ROUNDS}x{SENDS} sends"
    )
    lines.append(
        f"hdlc trial: untraced {trial_untraced * 1e3:.1f}ms, "
        f"sampled@0.01 {sampled001_over_untraced:.3f}x, "
        f"traced@1.0 {traced_over_untraced:.3f}x"
    )
    lines.append(
        f"feed: inc {inc_s * 1e9:.0f}ns, observe_hist {feed_s * 1e9:.0f}ns "
        f"({hist_observe_over_inc:.2f}x), deferred flush "
        f"{flush_s * 1e9:.0f}ns/sample at snapshot time"
    )
    write_result("c12_obscost", lines)
    write_bench_json(
        "c12_obscost",
        wall_s=trial_untraced,
        extra={
            "ns_per_send_untraced": round(per_send["untraced"] * 1e9, 1),
            "ns_per_send_hop_hist": round(per_send["hop_hist"] * 1e9, 1),
            "ns_per_send_sample0": round(per_send["sample0"] * 1e9, 1),
            "ns_per_send_sample001": round(per_send["sample001"] * 1e9, 1),
            "ns_per_send_sample1": round(per_send["sample1"] * 1e9, 1),
            "ns_per_unit_batch64": round(per_send["batch64"] * 1e9, 1),
            "ns_per_unit_batch64_hist": round(
                per_send["batch64_hist"] * 1e9, 1
            ),
            "batch64_over_scalar_x": round(batch_over_scalar, 3),
            "batch64_hist_over_scalar_x": round(batch_hist_over_scalar, 3),
            "hist_hop_over_plain_x": round(hist_hop_over_plain, 3),
            "sampled001_over_untraced_x": round(sampled001_over_untraced, 3),
            "traced_over_untraced_x": round(traced_over_untraced, 3),
            "hist_observe_over_inc_x": round(hist_observe_over_inc, 3),
            "ns_per_inc": round(inc_s * 1e9, 1),
            "ns_per_observe": round(feed_s * 1e9, 1),
            "ns_per_flush_sample": round(flush_s * 1e9, 1),
            "hops_per_send": HOPS_PER_SEND,
        },
    )

    # a batched unit must stay within the scalar metrics-tier budget —
    # the count-weighted bump cannot cost more than per-unit bumps did
    assert batch_over_scalar <= 1.05, (
        f"batched metrics-tier unit costs {batch_over_scalar:.3f}x a "
        "scalar send (budget: 1.05x)"
    )
    assert batch_hist_over_scalar <= 1.05, (
        f"batched unit under hop_latency costs {batch_hist_over_scalar:.3f}x "
        "its scalar counterpart (budget: 1.05x)"
    )

    # the ISSUE's acceptance bounds
    assert sampled001_over_untraced <= 1.05, (
        f"sampled tracing at 0.01 costs {sampled001_over_untraced:.3f}x "
        "over untraced on the trial workload (budget: 1.05x)"
    )
    assert hist_observe_over_inc <= 1.5, (
        f"observe_hist feed costs {hist_observe_over_inc:.2f}x a counter "
        "inc (budget: 1.5x)"
    )
    # sampling must actually be cheaper than full tracing, in order
    assert (
        per_send["untraced"]
        < per_send["sample0"]
        <= per_send["sample1"] * 1.05
    )
    assert trial_s001 < trial_s1 * 1.10
