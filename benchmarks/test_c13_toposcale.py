"""C13 — fleet-scale topology simulation: serial vs sharded throughput.

If sublayering composes at every scale (the paper's claim), the
simulation harness has to scale with it: this benchmark instantiates
grid fleets of 64, 256, and 1024 router stacks, pushes the same
seeded traffic plan through each, and measures delivered packets per
wall-second two ways — the serial conductor (one simulator, ground
truth) and the sharded conductor (4 regions, one forked worker each,
conservative-lookahead windows).

The determinism contract is asserted inline: at every size the
sharded run's delivery order and merged metrics are byte-identical to
the serial run's.  The speedup only means something with real cores,
so the hard >=2x bound at 1024 nodes applies on hosts with >= 4 CPUs;
the committed baseline comes from a 1-CPU container, so the gated
``speedup_sharded_1024_x`` metric (direction: down) only ever
improves on CI hardware.
"""

import os
import time

from _util import table, write_bench_json, write_result

from repro.topo import make_spec, run_fleet, static_fibs

SIZES = [64, 256, 1024]
SHARDS = 4
FLOWS = {64: 16, 256: 32, 1024: 64}
PACKETS = 25


def run_size(nodes: int) -> dict:
    spec = make_spec("grid", nodes, shards=SHARDS, seed=7)
    static_fibs(spec)  # oracle FIBs are shared setup, not throughput
    kwargs = dict(routing="static", flows=FLOWS[nodes], packets=PACKETS)

    start = time.perf_counter()
    serial = run_fleet(spec, mode="serial", **kwargs)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = run_fleet(spec, mode="sharded", jobs=SHARDS, **kwargs)
    sharded_s = time.perf_counter() - start

    assert serial.deliveries == sharded.deliveries, (
        f"sharded delivery order diverged from serial at {nodes} nodes"
    )
    assert serial.merged_snapshot() == sharded.merged_snapshot(), (
        f"sharded metrics diverged from serial at {nodes} nodes"
    )
    delivered = len(serial.deliveries)
    assert delivered == FLOWS[nodes] * PACKETS
    return {
        "nodes": nodes,
        "delivered": delivered,
        "events": serial.events,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "pps_serial": delivered / serial_s,
        "pps_sharded": delivered / sharded_s,
        "speedup": serial_s / sharded_s,
        "windows": sharded.extras.get("windows", 0),
    }


def test_c13_toposcale(benchmark):
    results = benchmark.pedantic(
        lambda: [run_size(nodes) for nodes in SIZES], rounds=1, iterations=1
    )

    rows = [
        {
            "nodes": m["nodes"],
            "packets": m["delivered"],
            "serial pkts/s": round(m["pps_serial"], 1),
            "sharded pkts/s": round(m["pps_sharded"], 1),
            "speedup": f"{m['speedup']:.2f}x",
            "windows": m["windows"],
        }
        for m in results
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        f"grid fleets, {SHARDS} regions, forked workers; "
        f"{os.cpu_count()} CPUs on this host"
    )
    lines.append(
        "delivery order and merged metrics byte-identical serial vs "
        "sharded at every size (asserted inline)"
    )
    write_result("c13_toposcale", lines)

    big = results[-1]
    extra = {"cpus": os.cpu_count(), "shards": SHARDS}
    for m in results:
        extra[f"pps_serial_{m['nodes']}"] = round(m["pps_serial"], 1)
        extra[f"pps_sharded_{m['nodes']}"] = round(m["pps_sharded"], 1)
    extra["speedup_sharded_1024_x"] = round(big["speedup"], 3)
    extra["windows_1024"] = big["windows"]
    write_bench_json(
        "c13_toposcale",
        wall_s=big["serial_s"],
        events=big["events"],
        extra=extra,
    )

    # The >=2x sharded bound only means something with real cores.
    if (os.cpu_count() or 1) >= SHARDS:
        assert big["speedup"] >= 2.0, (
            f"sharded speedup {big['speedup']:.2f}x < 2x at 1024 nodes "
            f"on {os.cpu_count()} CPUs"
        )
