"""C14 — live-runtime load: real UDP sockets, real clocks, zero loss.

The C-series so far measures the sublayered stacks inside the
deterministic simulator.  This benchmark measures the *other* runtime:
an in-process :class:`repro.net.server.NetServer` (echo mode) and a
:class:`repro.net.load.LoadGenerator` driving concurrent client stacks
at it over localhost UDP, timers on the asyncio wall clock, every unit
encoded to datagram bytes and back by the wire codec.

Throughput and round-trip latency are hardware- and kernel-dependent,
so they are reported, never gated.  What *is* gated is the delivery
contract the two-runtime story rests on (docs/RUNTIME.md): the echoed
byte ratio must stay 1.0 — every byte every client sent comes back
intact through real sockets — and the RTT histogram must hold exactly
one sample per message.
"""

import asyncio
import time

from _util import table, write_bench_json, write_result

from repro.net import LoadGenerator, NetServer

CLIENTS = 4
MESSAGES = 16
SIZE = 2048


def run_loopback() -> dict:
    """One server + load run on a single loop; returns measurements."""
    server = NetServer(tcp_port=80, mode="echo")

    async def scenario():
        endpoint = await server.start()
        generator = LoadGenerator(
            endpoint.local_address,
            clients=CLIENTS,
            messages=MESSAGES,
            size=SIZE,
            timeout=120.0,
            include_metrics=False,
        )
        try:
            return await generator.run()
        finally:
            server.close()

    start = time.perf_counter()
    report = asyncio.run(scenario())
    wall_s = time.perf_counter() - start

    assert report.ok, report.errors
    assert report.lossless
    assert report.latency["count"] == CLIENTS * MESSAGES
    return {
        "wall_s": wall_s,
        "report": report,
        "echo_ratio": report.bytes_echoed / report.bytes_sent,
    }


def test_c14_netload(benchmark):
    result = benchmark.pedantic(run_loopback, rounds=1, iterations=1)
    report = result["report"]

    rows = [
        {
            "clients": CLIENTS,
            "msgs/client": MESSAGES,
            "msg bytes": SIZE,
            "echoed": report.bytes_echoed,
            "Mbit/s": round(report.throughput_bps / 1e6, 2),
            "msgs/s": round(report.msgs_per_sec, 1),
            "rtt p50 ms": round(report.latency["p50"] * 1000, 3),
            "rtt p99 ms": round(report.latency["p99"] * 1000, 3),
        }
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        "localhost UDP, asyncio loop, wall clock; every byte verified "
        "against the sent pattern (asserted inline)"
    )
    write_result("c14_netload", lines)

    write_bench_json(
        "c14_netload",
        wall_s=result["wall_s"],
        extra={
            "clients": CLIENTS,
            "messages": MESSAGES,
            "size": SIZE,
            "bytes_echoed": report.bytes_echoed,
            "throughput_mbps": round(report.throughput_bps / 1e6, 3),
            "msgs_per_sec": round(report.msgs_per_sec, 1),
            "rtt_p50_ms": round(report.latency["p50"] * 1000, 3),
            "rtt_p99_ms": round(report.latency["p99"] * 1000, 3),
            "echo_ratio_x": round(result["echo_ratio"], 6),
        },
    )

    assert result["echo_ratio"] == 1.0
