"""C1 — Challenge 1 (Refactor): "Refactor monolithic implementations
to be sublayered ... and test for basic functionality (e.g., reliable
delivery for TCP) with a sublayered implementation at all nodes."

Reproduced: sublayered TCP at both nodes, swept over loss rates and
flow counts; every byte stream arrives intact, matching the monolithic
baseline's behaviour on the identical links and seeds."""

from _util import make_pair, run_transfer, table, write_result

from repro.sim import LinkConfig


def one_case(kind: str, loss: float, seed: int):
    sim, a, b = make_pair(
        kind, kind,
        link=LinkConfig(delay=0.02, rate_bps=8_000_000, loss=loss),
        seed=seed,
    )
    outcome = run_transfer(sim, a, b, nbytes=80_000)
    return outcome


def multi_flow(kind: str, flows: int = 3, loss: float = 0.05, seed: int = 2):
    sim, a, b = make_pair(
        kind, kind,
        link=LinkConfig(delay=0.02, rate_bps=8_000_000, loss=loss),
        seed=seed,
    )
    payloads = {}
    socks = {}
    for i in range(flows):
        port = 80 + i
        b.listen(port)
        payloads[port] = bytes((i + j) % 251 for j in range(25_000))
        sock = a.connect(2000 + i, port)
        socks[port] = sock
        sock.on_connect = (
            lambda s=sock, p=port: (s.send(payloads[p]), s.close())
        )
    sim.run(until=300)
    intact = all(
        b.socket_for(port, 2000 + (port - 80)).bytes_received()
        == payloads[port]
        for port in payloads
    )
    return intact


def test_c1_refactor(benchmark):
    first = benchmark.pedantic(
        lambda: one_case("sub", 0.05, 4), rounds=1, iterations=1
    )
    rows = []
    for loss in (0.0, 0.02, 0.05, 0.10):
        for kind in ("sub", "mono"):
            outcome = (
                first if (kind == "sub" and loss == 0.05)
                else one_case(kind, loss, 4)
            )
            rows.append({
                "stack": "sublayered" if kind == "sub" else "monolithic",
                "loss": f"{loss:.0%}",
                "intact": outcome["intact"],
                "virtual_s": outcome["virtual_seconds"],
                "goodput_mbps": outcome["goodput_mbps"],
            })
    multi = multi_flow("sub")
    lines = table(rows)
    lines.append("")
    lines.append(f"3 concurrent flows, 5% loss, sublayered both ends: "
                 f"all intact = {multi}")
    lines.append("basic TCP functionality holds with the sublayered "
                 "implementation at all nodes (challenge 1 discharged).")
    write_result("c1_refactor", lines)

    assert multi
    for row in rows:
        assert row["intact"], row
