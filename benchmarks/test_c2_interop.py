"""C2 — Challenge 2 (Interoperate): "Show that the refactored
implementation can interoperate with a standard (monolithic)
implementation, possibly adding a shim layer to translate from the
sublayered header to the standard header."

Reproduced: the full stack-pair matrix over the same impaired link —
both directions of sublayered+shim <-> monolithic, plus both
homogeneous pairs as controls, and sub+shim <-> sub+shim (native
internals, standard wire format end to end)."""

from _util import make_pair, run_transfer, table, write_result

from repro.sim import LinkConfig

PAIRS = [
    ("mono", "mono", "control: standard <-> standard"),
    ("sub", "sub", "control: native sublayered both ends"),
    ("sub+shim", "mono", "sublayered client -> standard server"),
    ("mono", "sub+shim", "standard client -> sublayered server"),
    ("sub+shim", "sub+shim", "sublayered both ends over standard wire"),
]


def run_pair(kind_a, kind_b, loss):
    sim, a, b = make_pair(
        kind_a, kind_b,
        link=LinkConfig(delay=0.02, rate_bps=8_000_000, loss=loss),
        seed=9,
    )
    return run_transfer(sim, a, b, nbytes=50_000)


def test_c2_interop(benchmark):
    first = benchmark.pedantic(
        lambda: run_pair("sub+shim", "mono", 0.05), rounds=1, iterations=1
    )
    rows = []
    for loss in (0.0, 0.05, 0.10):
        for kind_a, kind_b, label in PAIRS:
            outcome = (
                first
                if (kind_a, kind_b, loss) == ("sub+shim", "mono", 0.05)
                else run_pair(kind_a, kind_b, loss)
            )
            rows.append({
                "pair": label,
                "loss": f"{loss:.0%}",
                "intact": outcome["intact"],
                "virtual_s": outcome["virtual_seconds"],
            })
    lines = table(rows)
    lines.append("")
    lines.append(
        "every mixed pair completes the transfer intact under every loss "
        "level: the shim sublayer alone buys wire compatibility "
        "(challenge 2 discharged).  No sublayer other than the shim "
        "differs between the native and interop configurations."
    )
    write_result("c2_interop", lines)
    for row in rows:
        assert row["intact"], row
