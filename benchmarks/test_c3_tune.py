"""C3 — Challenge 3 (Tune): "Use standard tricks to make the
sublayered implementation perform close to the best monolithic one."

Section 3.1 frames the objection: "Most performance issues in
networking are due to protection, control overhead, and copying.  We
have already learned to finesse those for layer crossings, so why not
for sublayer crossings?"

Reproduced, in this substrate's terms: the *protocol* behaviour is
identical (same virtual-time completion on the same seeded link), so
the entire sublayering cost is per-crossing host work.  We measure
wall-clock per transfer for the monolithic TCP, the untuned sublayered
TCP (every crossing logged and instrumented), the tuned sublayered TCP
(crossing/state bookkeeping disabled — the "finesse the crossings"
trick available to this implementation), and the fully observed
sublayered TCP (span tracing + callback profiling on), plus the
crossings-per-segment count that any tuning must amortize.

The observability contract is also checked here: with tracing
*disabled* every hop pays exactly one ``span_hook is None`` test, and
the benchmark verifies that this costs under 10% of the event loop
(measured per-check cost x hop count vs. the untraced run's wall
time)."""

import time

from _util import make_pair, run_transfer, table, write_bench_json, write_result

from repro.obs import CallbackProfiler, SpanTracer
from repro.sim import LinkConfig

NBYTES = 200_000
LINK = dict(delay=0.02, rate_bps=16_000_000, loss=0.02)

#: Ring-buffer bound for the traced run: long transfers must not grow
#: the flight recorder without limit (sim.trace.Trace ring mode).
MAX_SPANS = 50_000


def run_config(kind: str, tuned: bool = False, traced: bool = False):
    sim, a, b = make_pair(kind, kind, link=LinkConfig(**LINK), seed=6)
    if tuned:
        for host in (a, b):
            host.access_log.enabled = False
            host.interface_log.enabled = False
    tracer = profiler = None
    if traced:
        tracer = SpanTracer(max_spans=MAX_SPANS)
        tracer.attach(a.stack)
        tracer.attach(b.stack)
        profiler = CallbackProfiler().install(sim)
    start = time.perf_counter()
    outcome = run_transfer(sim, a, b, nbytes=NBYTES)
    wall = time.perf_counter() - start
    assert outcome["intact"]
    crossings = None
    if kind == "sub" and not tuned and not traced:
        data_segments = a.stack.sublayer("osr").state.snapshot()[
            "segments_released"
        ]
        crossings = round(a.interface_log.crossings() / max(1, data_segments), 1)
    label = "sublayered" if kind == "sub" else "monolithic"
    if tuned:
        label += " (tuned)"
    if traced:
        label += " (traced)"
    return {
        "implementation": label,
        "virtual_s": outcome["virtual_seconds"],
        "wall_ms": round(wall * 1e3, 1),
        "crossings_per_segment": crossings if crossings is not None else "-",
        "_events": sim.events_processed,
        "_tracer": tracer,
        "_profiler": profiler,
    }


def median_of(fn, runs: int = 5):
    samples = [fn() for _ in range(runs)]
    samples.sort(key=lambda r: r["wall_ms"])
    return samples[len(samples) // 2]


def disabled_check_cost(iterations: int = 1_000_000) -> float:
    """Wall seconds per ``hook is None`` test (with loop overhead —
    a deliberate overestimate, so the <10% bound is conservative)."""
    hook = None
    start = time.perf_counter()
    for _ in range(iterations):
        if hook is not None:  # pragma: no cover - never taken
            raise AssertionError
    return (time.perf_counter() - start) / iterations


def test_c3_tune(benchmark):
    mono = benchmark.pedantic(
        lambda: median_of(lambda: run_config("mono")), rounds=1, iterations=1
    )
    untuned = median_of(lambda: run_config("sub"))
    tuned = median_of(lambda: run_config("sub", tuned=True))
    traced = median_of(lambda: run_config("sub", traced=True))

    rows = [mono, untuned, tuned, traced]
    lines = table(
        [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    )
    lines.append("")
    overhead_untuned = untuned["wall_ms"] / mono["wall_ms"]
    overhead_tuned = tuned["wall_ms"] / mono["wall_ms"]
    overhead_traced = traced["wall_ms"] / untuned["wall_ms"]
    lines.append(
        f"wall-clock vs monolithic: untuned {overhead_untuned:.2f}x, "
        f"tuned {overhead_tuned:.2f}x"
    )

    # Span overhead with tracing DISABLED: one None check per hop.  The
    # hop count equals the span count of the traced run (same seed,
    # same protocol behaviour).
    tracer = traced["_tracer"]
    hops = len(tracer) + tracer.dropped_spans
    per_check = disabled_check_cost()
    span_overhead_disabled = (hops * per_check) / (untuned["wall_ms"] / 1e3)
    lines.append(
        f"span tracing: {hops} hops; enabled costs {overhead_traced:.2f}x "
        f"the untraced run ({tracer.dropped_spans} spans dropped by the "
        f"{MAX_SPANS}-span ring buffer); disabled costs one None check "
        f"per hop = {span_overhead_disabled * 100:.3f}% of the event loop"
    )
    profiler = traced["_profiler"]
    hottest = profiler.hottest(3)
    lines.append(
        "hottest actors (callback wall time): "
        + ", ".join(f"{actor} {spent * 1e3:.1f} ms" for actor, spent in hottest)
    )
    lines.append(
        "tuning does not change the protocol: untuned, tuned, and traced "
        "sublayered runs complete at the same virtual time; only "
        "per-crossing host work changes (challenge 3's shape).  The "
        "virtual-time difference vs the monolithic run reflects "
        "algorithmic differences (RD's SACK-assisted recovery vs the "
        "baseline's dupack-only Reno), not the architecture."
    )
    write_result("c3_tune", lines)
    write_bench_json(
        "c3_tune",
        wall_s=untuned["wall_ms"] / 1e3,
        events=untuned["_events"],
        extra={
            "wall_ms_monolithic": mono["wall_ms"],
            "wall_ms_tuned": tuned["wall_ms"],
            "wall_ms_traced": traced["wall_ms"],
            "overhead_untuned_x": round(overhead_untuned, 3),
            "overhead_tuned_x": round(overhead_tuned, 3),
            "overhead_traced_x": round(overhead_traced, 3),
            "span_hops": hops,
            "span_overhead_disabled": round(span_overhead_disabled, 6),
        },
    )

    # same protocol behaviour on the same seeded link
    assert untuned["virtual_s"] == tuned["virtual_s"] == traced["virtual_s"]
    # tuning must close a real part of the gap
    assert tuned["wall_ms"] <= untuned["wall_ms"]
    # the observability acceptance bound: tracing off must stay cheap
    assert span_overhead_disabled < 0.10
