"""C3 — Challenge 3 (Tune): "Use standard tricks to make the
sublayered implementation perform close to the best monolithic one."

Section 3.1 frames the objection: "Most performance issues in
networking are due to protection, control overhead, and copying.  We
have already learned to finesse those for layer crossings, so why not
for sublayer crossings?"

Reproduced, in this substrate's terms: the *protocol* behaviour is
identical (same virtual-time completion on the same seeded link), so
the entire sublayering cost is per-crossing host work.  We measure
wall-clock per transfer for the monolithic TCP, the untuned sublayered
TCP (every crossing logged and instrumented), and the tuned sublayered
TCP (crossing/state bookkeeping disabled — the "finesse the crossings"
trick available to this implementation), plus the crossings-per-
segment count that any tuning must amortize."""

import time

from _util import make_pair, run_transfer, table, write_result

from repro.sim import LinkConfig

NBYTES = 200_000
LINK = dict(delay=0.02, rate_bps=16_000_000, loss=0.02)


def run_config(kind: str, tuned: bool = False):
    sim, a, b = make_pair(kind, kind, link=LinkConfig(**LINK), seed=6)
    if tuned:
        for host in (a, b):
            host.access_log.enabled = False
            host.interface_log.enabled = False
    start = time.perf_counter()
    outcome = run_transfer(sim, a, b, nbytes=NBYTES)
    wall = time.perf_counter() - start
    assert outcome["intact"]
    crossings = None
    if kind == "sub" and not tuned:
        data_segments = a.stack.sublayer("osr").state.snapshot()[
            "segments_released"
        ]
        crossings = round(a.interface_log.crossings() / max(1, data_segments), 1)
    return {
        "implementation": (
            f"{'sublayered' if kind == 'sub' else 'monolithic'}"
            f"{' (tuned)' if tuned else ''}"
        ),
        "virtual_s": outcome["virtual_seconds"],
        "wall_ms": round(wall * 1e3, 1),
        "crossings_per_segment": crossings if crossings is not None else "-",
    }


def median_of(fn, runs: int = 5):
    samples = [fn() for _ in range(runs)]
    samples.sort(key=lambda r: r["wall_ms"])
    return samples[len(samples) // 2]


def test_c3_tune(benchmark):
    mono = benchmark.pedantic(
        lambda: median_of(lambda: run_config("mono")), rounds=1, iterations=1
    )
    untuned = median_of(lambda: run_config("sub"))
    tuned = median_of(lambda: run_config("sub", tuned=True))

    rows = [mono, untuned, tuned]
    lines = table(rows)
    lines.append("")
    overhead_untuned = untuned["wall_ms"] / mono["wall_ms"]
    overhead_tuned = tuned["wall_ms"] / mono["wall_ms"]
    lines.append(
        f"wall-clock vs monolithic: untuned {overhead_untuned:.2f}x, "
        f"tuned {overhead_tuned:.2f}x"
    )
    lines.append(
        "tuning does not change the protocol: untuned and tuned sublayered "
        "runs complete at the same virtual time; only per-crossing host "
        "work shrinks (challenge 3's shape).  The virtual-time difference "
        "vs the monolithic run reflects algorithmic differences (RD's "
        "SACK-assisted recovery vs the baseline's dupack-only Reno), not "
        "the architecture."
    )
    write_result("c3_tune", lines)

    # same protocol behaviour on the same seeded link
    assert untuned["virtual_s"] == tuned["virtual_s"]
    # tuning must close a real part of the gap
    assert tuned["wall_ms"] <= untuned["wall_ms"]
