"""C5 — Challenge 5 (Replace): "Replace some sublayers with
alternatives and investigate the difficulty of doing so."

Reproduced as the full swap matrix: three congestion controllers
(inside OSR) x three ISN schemes (inside CM), nine configurations of
the same transfer over the same impaired link.  Every configuration
delivers intact, and the isolation is verified mechanically: swapping
OSR's controller or CM's ISN scheme leaves every *other* sublayer's
state-field vocabulary byte-for-byte identical."""

from _util import make_pair, run_transfer, table, write_result

from repro.sim import LinkConfig
from repro.transport import TcpConfig
from repro.transport.isn import ClockIsn, CryptoIsn, TimerIsn
from repro.transport.sublayered import AimdCc, FixedWindowCc, RateBasedCc

CC_CHOICES = {
    "aimd": lambda mss: AimdCc(mss),
    "rate-based": lambda mss: RateBasedCc(mss),
    "fixed-window": lambda mss: FixedWindowCc(mss, segments=12),
}
ISN_CHOICES = {
    "clock (RFC793)": ClockIsn(),
    "crypto (RFC1948)": CryptoIsn(),
    "timer (Watson)": TimerIsn(),
}


def run_config(cc_name: str, isn_name: str):
    config = TcpConfig(mss=1000, isn_scheme=ISN_CHOICES[isn_name])
    sim, a, b = make_pair(
        "sub", "sub",
        config=config,
        cc_factory=CC_CHOICES[cc_name],
        link=LinkConfig(delay=0.02, rate_bps=8_000_000, loss=0.04),
        seed=8,
    )
    outcome = run_transfer(sim, a, b, nbytes=60_000)
    vocab = {
        name: frozenset(a.stack.sublayer(name).state.field_names())
        for name in ("rd", "dm")  # the sublayers neither swap touches
    }
    return outcome, vocab


def test_c5_replace_matrix(benchmark):
    first, first_vocab = benchmark.pedantic(
        lambda: run_config("aimd", "clock (RFC793)"), rounds=1, iterations=1
    )
    rows = []
    vocabularies = []
    for cc_name in CC_CHOICES:
        for isn_name in ISN_CHOICES:
            if (cc_name, isn_name) == ("aimd", "clock (RFC793)"):
                outcome, vocab = first, first_vocab
            else:
                outcome, vocab = run_config(cc_name, isn_name)
            vocabularies.append(vocab)
            rows.append({
                "congestion control (OSR)": cc_name,
                "isn scheme (CM)": isn_name,
                "intact": outcome["intact"],
                "virtual_s": outcome["virtual_seconds"],
                "goodput_mbps": outcome["goodput_mbps"],
            })

    # the whole-CM replacement: Watson timer-based connection management
    # (0-RTT, no handshake packets) in place of the SYN/FIN machine
    from repro.transport import TimerCmSublayer

    def timer_cm(params):
        cfg = params["config"]
        return TimerCmSublayer("cm", handshake_timeout=cfg.rto_initial)

    sim, a, b = make_pair(
        "sub", "sub",
        replacements={"cm": timer_cm},
        link=LinkConfig(delay=0.02, rate_bps=8_000_000, loss=0.04),
        seed=8,
    )
    # timer CM is 0-RTT: established synchronously inside connect(), so
    # data is sent directly rather than from an on_connect callback
    b.listen(80)
    data = bytes(i % 251 for i in range(60_000))
    done: dict[str, float] = {}

    def accept(peer_sock):
        peer_sock.on_data = lambda _c: (
            done.setdefault("t", sim.now)
            if len(peer_sock.bytes_received()) >= len(data) else None
        )

    b.on_accept = accept
    sock = a.connect(12345, 80)
    sock.send(data)
    sock.close()
    sim.run(until=300)
    peer = b.socket_for(80, 12345)
    elapsed = done.get("t", sim.now)
    vocabularies.append({
        name: frozenset(a.stack.sublayer(name).state.field_names())
        for name in ("rd", "dm")
    })
    rows.append({
        "congestion control (OSR)": "aimd",
        "isn scheme (CM)": "whole-CM swap: timer-based (Watson), 0-RTT",
        "intact": peer is not None and peer.bytes_received() == data,
        "virtual_s": round(elapsed, 3),
        "goodput_mbps": round(8 * len(data) / elapsed / 1e6, 3) if elapsed else 0,
    })

    untouched_identical = all(v == vocabularies[0] for v in vocabularies)
    lines = table(rows)
    lines.append("")
    lines.append(
        f"RD and DM state vocabularies identical across all "
        f"{len(vocabularies)} configurations (including the whole-CM "
        f"swap): {untouched_identical} — the swaps are sublayer-local "
        f"(T3), so 'replacing a sublayer' is a constructor argument."
    )
    write_result("c5_replace", lines)

    assert untouched_identical
    for row in rows:
        assert row["intact"], row
