"""C6 — Challenge 6 (Hardware assist) + the Section 3.1 offload claim.

Paper: "Figure 5 offers a principled way to offload parts of TCP
processing to hardware ...  A simple decomposition places RD, CM, and
DM in hardware; with more finagling and a modest duplication of state,
only RD can be placed in hardware", vs the functional-modularity
offloads of AccelTCP (CM to the NIC) and TAS (fast path / slow path).

Reproduced with the cost model over real instrumented runs: for each
candidate hardware/software cut, the boundary-crossing count and —
decisive — the state that must be *duplicated* across the boundary.
Sublayer cuts are clean by construction (T3); every functional cut of
the monolithic PCB drags shared fields across."""

from _util import make_pair, run_transfer, table, write_result

from repro.analysis import (
    MONOLITHIC_PARTITIONS,
    SUBLAYER_PARTITIONS,
    evaluate_partitions,
)
from repro.sim import LinkConfig

LINK = LinkConfig(delay=0.02, rate_bps=8_000_000, loss=0.05)


def collect_logs():
    sim, a, b = make_pair("sub", "sub", link=LINK, seed=12)
    run_transfer(sim, a, b, nbytes=60_000)
    sim2, c, d = make_pair("mono", "mono", link=LINK, seed=12)
    run_transfer(sim2, c, d, nbytes=60_000)
    return a.access_log, c.access_log


def test_c6_offload_partitions(benchmark):
    sub_log, mono_log = benchmark.pedantic(collect_logs, rounds=1, iterations=1)

    sub_reports = evaluate_partitions(
        sub_log, SUBLAYER_PARTITIONS, {"osr", "rd", "cm", "dm"}
    )
    mono_reports = evaluate_partitions(mono_log, MONOLITHIC_PARTITIONS, {"pcb"})

    rows = []
    for kind, reports in (("sublayered", sub_reports), ("monolithic", mono_reports)):
        for report in reports:
            row = report.row()
            row = {"decomposition": kind, **row,
                   "what": report.partition.description[:58]}
            rows.append(row)

    lines = table(rows)
    lines.append("")
    lines.append(
        "every sublayer-boundary cut needs ZERO duplicated state (T3 made "
        "the seams clean); every functional cut of the monolithic PCB "
        "must mirror shared fields across the hw/sw boundary and keep "
        "them coherent — the paper's 'principled way to offload' claim, "
        "quantified."
    )
    write_result("c6_offload", lines)

    offloading_sub = [r for r in sub_reports if r.partition.hardware]
    offloading_mono = [r for r in mono_reports if r.partition.hardware]
    assert all(r.duplicated_state == 0 for r in offloading_sub)
    assert all(r.duplicated_state > 0 for r in offloading_mono)
    # the paper's preferred cut offloads the majority of per-packet work
    preferred = next(
        r for r in sub_reports if r.partition.name == "rd-cm-dm-in-hw"
    )
    assert preferred.offload_fraction > 0.4
