"""C7 — hop cost by instrumentation tier.

Quantifies what the compiled wiring plans buy: the same 8-deep
passthrough chain is built from one profile at each tier and timed on
nothing but hops — no protocol work, no simulator — so the measured
ns/hop is purely the per-crossing host cost each tier compiles in.

* ``full``  — InterfaceCall record + acting_as per hop (litmus-ready);
* ``metrics`` — one integer counter bump per hop;
* ``off``   — direct bound-method chains.

The acceptance bound for the refactor is that ``off`` is at least 3x
faster per hop than ``full``: if it is not, the "compiled" plans are
still paying for instrumentation nobody attached.  A fourth timed row
(``full`` + span hook) shows that attaching an observer raises the
cost again — pay-only-when-watching, in both directions.
"""

import contextlib
import time

from _util import table, write_bench_json, write_result

from repro.compose import SlotSpec, StackBuilder, StackProfile
from repro.core import PassthroughSublayer, TIERS

DEPTH = 8
#: app->top plus one hop per inter-sublayer boundary plus bottom->wire.
HOPS_PER_SEND = DEPTH + 1
SENDS = 2_000
ROUNDS = 5

CHAIN_PROFILE = StackProfile(
    name="c7-chain",
    slots=tuple(
        SlotSpec(f"p{i}", lambda params, i=i: PassthroughSublayer(f"p{i}"))
        for i in range(DEPTH)
    ),
    doc=f"{DEPTH} passthrough sublayers; every hop is pure overhead.",
)


def build_chain(tier: str):
    stack = StackBuilder(CHAIN_PROFILE, name=f"c7-{tier}", tier=tier).build()
    # C7 measures the *chain walk* at every tier; the fused codegen
    # fast path (which would replace the off-tier walk entirely) is
    # benchmarked separately by C11 against these numbers.
    stack.codegen_enabled = False
    stack.on_transmit = lambda sdu, **meta: None
    return stack


@contextlib.contextmanager
def null_span(direction, caller, provider, sdu, meta):
    yield


def time_chain(stack, sends: int = SENDS) -> float:
    """Median wall seconds per hop over ROUNDS timed batches."""
    payload = b"x" * 64
    send = stack.send
    for _ in range(100):  # warm-up
        send(payload)
    samples = []
    for _ in range(ROUNDS):
        stack.interface_log.clear()
        stack.access_log.clear()
        start = time.perf_counter()
        for _ in range(sends):
            send(payload)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2] / (sends * HOPS_PER_SEND)


def test_c7_hopcost(benchmark):
    stacks = {tier: build_chain(tier) for tier in TIERS}
    per_hop = {}
    per_hop["full"] = benchmark.pedantic(
        lambda: time_chain(stacks["full"]), rounds=1, iterations=1
    )
    per_hop["metrics"] = time_chain(stacks["metrics"])
    per_hop["off"] = time_chain(stacks["off"])

    spanned = build_chain("off")
    spanned.span_hook = null_span
    per_hop["off+span"] = time_chain(spanned)

    # Each tier really did what it claims on the books.
    full = stacks["full"]
    full.interface_log.clear()
    full.send(b"y")
    assert full.interface_log.crossings() == HOPS_PER_SEND
    metrics = stacks["metrics"]
    metrics.hop_counters.reset()
    metrics.send(b"y")
    assert metrics.hop_counters.down == HOPS_PER_SEND
    assert metrics.interface_log.crossings() == 0
    off = stacks["off"]
    off.send(b"y")
    assert off.interface_log.crossings() == 0
    assert len(off.access_log.records) == 0
    # off-tier hops with no observers are the bound methods themselves
    assert off.sublayer("p0")._send_down == off.sublayer("p1").from_above

    full_over_off = per_hop["full"] / per_hop["off"]
    metrics_over_off = per_hop["metrics"] / per_hop["off"]
    span_over_off = per_hop["off+span"] / per_hop["off"]

    rows = [
        {
            "tier": tier,
            "ns_per_hop": round(cost * 1e9, 1),
            "vs_off": f"{cost / per_hop['off']:.2f}x",
        }
        for tier, cost in per_hop.items()
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        f"{DEPTH}-sublayer passthrough chain, {HOPS_PER_SEND} hops/send, "
        f"{SENDS} sends/round, median of {ROUNDS} rounds"
    )
    lines.append(
        f"full tier pays {full_over_off:.1f}x the bare-chain hop cost "
        f"(metrics tier {metrics_over_off:.1f}x); attaching a span hook "
        f"to the off tier recompiles the cost back in ({span_over_off:.1f}x) "
        "— observability is a compilation choice, not a per-hop branch"
    )
    write_result("c7_hopcost", lines)
    write_bench_json(
        "c7_hopcost",
        wall_s=per_hop["full"] * SENDS * HOPS_PER_SEND,
        extra={
            "ns_per_hop_full": round(per_hop["full"] * 1e9, 1),
            "ns_per_hop_metrics": round(per_hop["metrics"] * 1e9, 1),
            "ns_per_hop_off": round(per_hop["off"] * 1e9, 1),
            "ns_per_hop_off_span": round(per_hop["off+span"] * 1e9, 1),
            "full_over_off_x": round(full_over_off, 3),
            "metrics_over_off_x": round(metrics_over_off, 3),
            "span_over_off_x": round(span_over_off, 3),
            "hops_per_send": HOPS_PER_SEND,
        },
    )

    # the tentpole acceptance bound
    assert full_over_off >= 3.0, (
        f"off tier is only {full_over_off:.2f}x faster per hop than full"
    )
    # the metrics tier must sit strictly between the extremes
    assert per_hop["off"] < per_hop["metrics"] < per_hop["full"]
