"""C8 — the cost of a fault position.

Fault injection as sublayering is only honest if *having* a fault slot
is cheap: a transparent :class:`~repro.faults.sublayers.NoOpFault`
spliced mid-chain must cost no more than an ordinary passthrough hop,
because that is exactly what it compiles to at ``tier=off`` — no
schedule check, no rng draw, no branch left on the hot path.

The same 8-deep passthrough chain from C7 is timed with and without a
NoOpFault inserted at mid-depth; the gated metric is the *extra* cost
per send expressed in plain-hop units.  The acceptance bound is 1.5
plain hops: the fault position may pay for its own crossing (1 hop)
plus headroom, but any scheduling logic leaking into the transparent
no-op would push it past that.
"""

import time

from _util import table, write_bench_json, write_result

from repro.compose import SlotSpec, StackBuilder, StackProfile
from repro.core import PassthroughSublayer
from repro.faults import NoOpFault

DEPTH = 8
#: app->top plus one hop per inter-sublayer boundary plus bottom->wire.
HOPS_PER_SEND = DEPTH + 1
SENDS = 3_000
ROUNDS = 25

CHAIN_PROFILE = StackProfile(
    name="c8-chain",
    slots=tuple(
        SlotSpec(f"p{i}", lambda params, i=i: PassthroughSublayer(f"p{i}"))
        for i in range(DEPTH)
    ),
    doc=f"{DEPTH} passthrough sublayers; every hop is pure overhead.",
)


def build_chain(with_fault: bool):
    builder = StackBuilder(
        CHAIN_PROFILE,
        name=f"c8-{'noop' if with_fault else 'plain'}",
        tier="off",
    )
    if with_fault:
        builder.with_fault(NoOpFault("noop"), after=f"p{DEPTH // 2}")
    stack = builder.build()
    stack.on_transmit = lambda sdu, **meta: None
    return stack


def _batch(send, payload, sends: int) -> float:
    start = time.perf_counter()
    for _ in range(sends):
        send(payload)
    return time.perf_counter() - start


def time_pair(plain, faulted, sends: int = SENDS) -> tuple[float, float]:
    """Best wall seconds per send for each chain, rounds interleaved.

    Interleaving keeps both chains exposed to the same cpu-frequency
    and scheduler drift; the minimum is the least noise-contaminated
    estimate of the true cost, which is what a ratio gate needs.
    """
    payload = b"x" * 64
    for stack in (plain, faulted):
        for _ in range(200):  # warm-up
            stack.send(payload)
    plain_samples, faulted_samples = [], []
    for _ in range(ROUNDS):
        plain_samples.append(_batch(plain.send, payload, sends))
        faulted_samples.append(_batch(faulted.send, payload, sends))
    return min(plain_samples) / sends, min(faulted_samples) / sends


def test_c8_faultcost(benchmark):
    plain = build_chain(with_fault=False)
    faulted = build_chain(with_fault=True)
    assert faulted.order().count("noop") == 1

    per_send_plain, per_send_faulted = benchmark.pedantic(
        lambda: time_pair(plain, faulted), rounds=1, iterations=1
    )

    per_hop_plain = per_send_plain / HOPS_PER_SEND
    extra_per_send = per_send_faulted - per_send_plain
    noop_over_plain_hop = extra_per_send / per_hop_plain

    rows = [
        {
            "chain": "plain",
            "hops": HOPS_PER_SEND,
            "ns_per_send": round(per_send_plain * 1e9, 1),
        },
        {
            "chain": "with noop fault",
            "hops": HOPS_PER_SEND + 1,
            "ns_per_send": round(per_send_faulted * 1e9, 1),
        },
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        f"{DEPTH}-sublayer passthrough chain at tier=off, {SENDS} "
        f"sends/round, median of {ROUNDS} rounds"
    )
    lines.append(
        f"a transparent no-op fault position costs "
        f"{noop_over_plain_hop:.2f} plain hops per send (bound: 1.5) — "
        "fault injection compiles down to one more passthrough crossing"
    )
    write_result("c8_faultcost", lines)
    write_bench_json(
        "c8_faultcost",
        wall_s=per_send_faulted * SENDS,
        extra={
            "ns_per_send_plain": round(per_send_plain * 1e9, 1),
            "ns_per_send_noop": round(per_send_faulted * 1e9, 1),
            "ns_per_hop_plain": round(per_hop_plain * 1e9, 1),
            "noop_over_plain_hop_x": round(noop_over_plain_hop, 3),
            "hops_per_send": HOPS_PER_SEND,
        },
    )

    # the satellite acceptance bound: a transparent fault is (at most)
    # one ordinary hop plus headroom, never a toll booth
    assert noop_over_plain_hop < 1.5, (
        f"no-op fault position costs {noop_over_plain_hop:.2f} plain hops "
        "per send (bound 1.5): fault logic is leaking onto the hot path"
    )
