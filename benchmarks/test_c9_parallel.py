"""C9 — parallel proving and the warm proof cache.

The paper's modularity claim (lesson 1: per-sublayer lemmas are
independent) is what makes verification parallelizable and cacheable.
This benchmark proves four framing lemma libraries — four stuffing
rules, 14 lemmas each — three ways:

* cold and serial (the baseline a single core pays),
* cold on 4 forked workers (`prove_libraries(jobs=4)` pools dependency
  waves *across* libraries, so independent lemmas from different rules
  share the same wave),
* warm from the content-hash proof cache (every lemma unchanged, so
  nothing is re-proved).

Gated metrics: ``speedup_jobs4_x`` (serial/parallel wall) and
``warm_over_cold_x`` (warm/serial wall — the fraction of a cold run a
cached re-verification still costs).  The determinism contract is
asserted alongside: all three reports are JSON-identical.
"""

import json
import os
import time

from _util import table, write_bench_json, write_result

from repro.core.bits import Bits
from repro.datalink.framing.lemmas import build_framing_library
from repro.datalink.framing.rules import (
    HDLC_RULE,
    LOW_OVERHEAD_RULE,
    prefix_rule,
)
from repro.par import ProofCache
from repro.verify import prove_libraries

MAX_LEN = 9
JOBS = 4
RULES = [
    HDLC_RULE,
    LOW_OVERHEAD_RULE,
    prefix_rule(Bits.from_string("10000001"), 7),
    prefix_rule(Bits.from_string("01000001"), 6),
]


def build_libraries():
    return [build_framing_library(rule, max_len=MAX_LEN) for rule in RULES]


def report_json(reports):
    return json.dumps(
        {name: report.as_dict() for name, report in reports.items()},
        sort_keys=True,
    )


def run_all(tmp_path):
    """Time the three strategies; returns (rows, metrics)."""
    libraries = build_libraries()

    start = time.perf_counter()
    serial = prove_libraries(libraries)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = prove_libraries(build_libraries(), jobs=JOBS)
    parallel_s = time.perf_counter() - start

    cache = ProofCache(root=tmp_path / "c9-cache")
    prove_libraries(build_libraries(), cache=cache)  # populate
    misses_cold = cache.stats()["misses"]
    start = time.perf_counter()
    warm = prove_libraries(build_libraries(), cache=cache)
    warm_s = time.perf_counter() - start

    assert all(report.proved for report in serial.values())
    assert report_json(serial) == report_json(parallel) == report_json(warm)
    misses_warm = cache.stats()["misses"] - misses_cold
    assert misses_warm == 0, f"warm run re-proved {misses_warm} lemmas"

    lemmas = sum(len(report.results) for report in serial.values())
    cases = sum(report.total_cases for report in serial.values())
    return {
        "lemmas": lemmas,
        "cases": cases,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "warm_s": warm_s,
        "speedup": serial_s / parallel_s,
        "warm_over_cold": warm_s / serial_s,
    }


def test_c9_parallel(benchmark, tmp_path):
    m = benchmark.pedantic(lambda: run_all(tmp_path), rounds=1, iterations=1)

    rows = [
        {
            "strategy": "cold, serial",
            "wall_ms": round(m["serial_s"] * 1e3, 1),
            "vs serial": "1.00x",
        },
        {
            "strategy": f"cold, {JOBS} workers",
            "wall_ms": round(m["parallel_s"] * 1e3, 1),
            "vs serial": f"{m['speedup']:.2f}x faster",
        },
        {
            "strategy": "warm cache",
            "wall_ms": round(m["warm_s"] * 1e3, 1),
            "vs serial": f"{m['warm_over_cold']:.1%} of cold",
        },
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        f"{len(RULES)} framing libraries, {m['lemmas']} lemmas, "
        f"{m['cases']} cases at max_len={MAX_LEN}; "
        f"{os.cpu_count()} CPUs on this host"
    )
    lines.append(
        "reports from all three strategies are JSON-identical "
        "(the determinism contract CI also checks byte-for-byte)"
    )
    write_result("c9_parallel", lines)
    write_bench_json(
        "c9_parallel",
        wall_s=m["serial_s"],
        extra={
            "lemmas": m["lemmas"],
            "cases": m["cases"],
            "serial_ms": round(m["serial_s"] * 1e3, 1),
            "parallel_ms": round(m["parallel_s"] * 1e3, 1),
            "warm_ms": round(m["warm_s"] * 1e3, 1),
            "speedup_jobs4_x": round(m["speedup"], 3),
            "warm_over_cold_x": round(m["warm_over_cold"], 4),
            "cpus": os.cpu_count(),
        },
    )

    # Warm cache must make re-verification nearly free everywhere.
    assert m["warm_over_cold"] < 0.10, (
        f"warm cache run cost {m['warm_over_cold']:.1%} of cold (bound: 10%)"
    )
    # The >=2x parallel bound only means something with real cores.
    if (os.cpu_count() or 1) >= JOBS:
        assert m["speedup"] >= 2.0, (
            f"4-worker speedup {m['speedup']:.2f}x < 2x on "
            f"{os.cpu_count()} CPUs"
        )
