"""E1 — Section 4.1: the verified bit-stuffing artifact.

Paper: "Our proof had 57 lemmas and 1800 lines of code", per-sublayer
lemma structure, main specification
Unstuff(RemoveFlags(AddFlags(Stuff(D)))) = D.

Reproduced: the lemma library proves the same specification with the
same modular structure (bounded-exhaustive tactic + exact automaton
product decision); the table reports lemma counts per sublayer and the
case volumes, next to the paper's Coq figures.
"""

from _util import table, write_result

from repro.datalink.framing import (
    HDLC_RULE,
    LOW_OVERHEAD_RULE,
    build_framing_library,
)

MAX_LEN = 10


def prove(rule):
    library = build_framing_library(rule, max_len=MAX_LEN)
    report = library.prove_all()
    return library, report


def test_e1_bitstuff_verification(benchmark):
    library, report = benchmark.pedantic(
        lambda: prove(HDLC_RULE), rounds=1, iterations=1
    )
    assert report.proved, report.summary()

    _, low_report = prove(LOW_OVERHEAD_RULE)
    assert low_report.proved

    modularity = library.modularity_report()
    rows = [
        {
            "lemma": r.lemma,
            "sublayer": library.lemma(r.lemma).sublayer,
            "cases": r.cases_checked,
            "proved": r.proved,
        }
        for r in report.results
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        f"lemmas: {modularity['lemmas']} "
        f"(paper's Coq proof: 57 lemmas / 1800 LoC)"
    )
    lines.append(f"per-sublayer: {modularity['per_sublayer']}")
    lines.append(
        f"modular fraction (lemmas local to one sublayer): "
        f"{modularity['modular_fraction']:.0%} — the paper's lesson 1"
    )
    lines.append(f"total cases checked (bound {MAX_LEN} bits): {report.total_cases}")
    lines.append(
        "low-overhead rule library also fully proved: "
        f"{low_report.proved}"
    )
    write_result("e1_bitstuff_verify", lines)

    # shape assertions
    assert modularity["modular_fraction"] > 0.5
    assert modularity["per_sublayer"]["stuffing"] >= 4
