"""E2 — Section 4.1: the library of valid alternate stuffing rules.

Paper: "it found 66 alternate stuffing rules, some of which had less
overhead than HDLC", and "the flag 00000010 and the stuffing rule that
stuffs a 1 after seeing the string 0000001 has an overhead (using a
random model) of 1 in 128 compared to 1 in 32 for the HDLC rule".

Reproduced: the exact automaton-product decision procedure classifies
every rule in the prefix family (trigger = flag prefix, stuff =
complement) under both receiver semantics; rules are ranked by exact
Markov overhead.  EXPERIMENTS.md discusses the count difference
(the paper's search space is unpublished; the closest family —
full-length prefixes under stream semantics — yields 72 vs their 66).
"""

from _util import table, write_result

from repro.datalink.framing import (
    HDLC_RULE,
    LOW_OVERHEAD_RULE,
    approx_overhead,
    decide_valid,
    empirical_overhead,
    exact_overhead,
    find_valid_rules,
    prefix_rule_space,
)


def test_e2_stuffing_rule_search(benchmark):
    frame = benchmark.pedantic(
        lambda: find_valid_rules(prefix_rule_space(flag_bits=8), "frame"),
        rounds=1, iterations=1,
    )
    stream = find_valid_rules(prefix_rule_space(flag_bits=8), "stream")

    by_k_frame: dict[int, int] = {}
    for rule in frame.valid:
        by_k_frame[len(rule.trigger)] = by_k_frame.get(len(rule.trigger), 0) + 1
    by_k_stream: dict[int, int] = {}
    for rule in stream.valid:
        by_k_stream[len(rule.trigger)] = by_k_stream.get(len(rule.trigger), 0) + 1

    rows = [
        {
            "trigger_len": k,
            "candidates": 256,
            "valid(frame-mode)": by_k_frame.get(k, 0),
            "valid(stream-mode)": by_k_stream.get(k, 0),
        }
        for k in range(1, 8)
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        f"totals: {frame.candidates} candidates; "
        f"{frame.valid_count} frame-valid, {stream.valid_count} stream-valid"
    )
    lines.append(
        f"full-prefix (k=7) stream-valid: {by_k_stream.get(7, 0)} "
        f"— the paper's library had 66"
    )
    lines.append(
        f"rules with lower exact overhead than HDLC: "
        f"{len(stream.better_than(HDLC_RULE))} (stream-mode)"
    )
    lines.append("")

    overhead_rows = []
    for label, rule in (("HDLC", HDLC_RULE), ("paper's low-overhead", LOW_OVERHEAD_RULE)):
        overhead_rows.append({
            "rule": f"{label}: {rule.label()}",
            "paper (2^-k)": f"1/{round(1 / approx_overhead(rule))}",
            "exact (Markov)": f"1/{round(1 / exact_overhead(rule))}",
            "empirical": f"1/{round(1 / empirical_overhead(rule, 60_000))}",
        })
    best, best_cost = stream.ranked_by_overhead()[0]
    overhead_rows.append({
        "rule": f"best stream-valid: {best.label()}",
        "paper (2^-k)": f"1/{round(1 / approx_overhead(best))}",
        "exact (Markov)": f"1/{round(1 / best_cost)}",
        "empirical": f"1/{round(1 / empirical_overhead(best, 60_000))}",
    })
    lines.extend(table(overhead_rows))
    lines.append("")
    lines.append(
        "note: the paper's 1/32 vs 1/128 are the 2^-k approximations; the\n"
        "exact stationary rates are 1/62 vs 1/128 (ranking unchanged).\n"
        "The paper's own low-overhead rule is frame-mode valid but NOT\n"
        "stream-mode valid (its flag has a 1-bit self-border): "
        f"{bool(decide_valid(LOW_OVERHEAD_RULE))} vs "
        f"{any(r.flag == LOW_OVERHEAD_RULE.flag and r.trigger == LOW_OVERHEAD_RULE.trigger for r in stream.valid)}"
    )
    write_result("e2_stuffing_rules", lines)

    # shape assertions: a library of tens of valid rules exists, many
    # beat HDLC, and the paper's rule wins by ~4x in the approx model
    assert stream.valid_count > 30
    assert by_k_stream.get(7, 0) >= 50  # same order as the paper's 66
    assert exact_overhead(LOW_OVERHEAD_RULE) < exact_overhead(HDLC_RULE)
    assert len(stream.better_than(HDLC_RULE)) > 10
