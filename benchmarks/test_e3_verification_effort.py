"""E3 — Section 4.2: verifying monolithic vs sublayered TCP.

Paper: the Dafny proof of lwIP TCP's in-order delivery took "30 lemmas
and ~3500 lines", hit timeouts on large functions, needed ad hoc
partitioning, and drowned in ownership annotations for the shared PCB.
The conjecture: sublayering modularizes the reasoning.

Reproduced with the model-checking substitute: the same in-order
reliable-delivery property is verified (a) compositionally — one
obligation per sublayer model, each assuming only the service below —
and (b) monolithically — the glued machine.  State counts are the
effort proxy; interference metrics from the *real* implementations
quantify the ownership-annotation burden.
"""

from _util import make_pair, run_transfer, table, write_result

from repro.sim import LinkConfig
from repro.verify import (
    CmModel,
    EffortComparison,
    MonolithicModel,
    Obligation,
    OsrModel,
    RdModel,
    analyze_ownership,
    check,
)

SEGMENTS, WINDOW, SEQ_MOD = 3, 2, 4


def build_comparison() -> EffortComparison:
    comparison = EffortComparison()
    cm = CmModel()
    rd = RdModel(segments=SEGMENTS, window=WINDOW, seq_mod=SEQ_MOD)
    osr = OsrModel(segments=SEGMENTS + 1)
    mono = MonolithicModel(segments=SEGMENTS, window=WINDOW, seq_mod=SEQ_MOD)
    comparison.compositional = [
        Obligation("cm-isns-agree", "cm", check(cm, CmModel.invariants())),
        Obligation("rd-exactly-once", "rd", check(rd, rd.invariants())),
        Obligation("osr-in-order", "osr", check(osr, osr.invariants())),
    ]
    comparison.monolithic = [
        Obligation(
            "whole-machine-in-order", "whole-system",
            check(mono, mono.invariants()),
        ),
    ]
    return comparison


def test_e3_verification_effort(benchmark):
    comparison = benchmark.pedantic(build_comparison, rounds=1, iterations=1)
    assert comparison.all_discharged

    # ownership burden from the real implementations
    sim, a, b = make_pair("mono", "mono", link=LinkConfig(delay=0.02, loss=0.05))
    run_transfer(sim, a, b, nbytes=40_000)
    comparison.monolithic_ownership = analyze_ownership(
        a.access_log, targets={"pcb"}
    )
    sim2, c, d = make_pair("sub", "sub", link=LinkConfig(delay=0.02, loss=0.05))
    run_transfer(sim2, c, d, nbytes=40_000)
    comparison.sublayered_ownership = analyze_ownership(
        c.access_log, targets={"osr", "rd", "cm", "dm"}
    )

    lines = [comparison.summary(), ""]
    lines.extend(table(comparison.rows()))
    lines.append("")
    lines.append("the paper's effort: 30 lemmas / ~3500 LoC of Dafny, with")
    lines.append("timeouts forcing ad hoc function partitioning and heavy")
    lines.append("ownership annotation of the shared PCB.")
    lines.append("")
    mono_own = comparison.monolithic_ownership
    sub_own = comparison.sublayered_ownership
    lines.append(
        f"ownership (real implementations): monolithic PCB has "
        f"{mono_own.shared_field_count} fields shared across subfunctions "
        f"({mono_own.exclusively_owned_fraction:.0%} exclusively owned), "
        f"{mono_own.frame_annotations} frame annotations implied; "
        f"sublayered stack: {sub_own.shared_field_count} shared "
        f"({sub_own.exclusively_owned_fraction:.0%} owned), "
        f"{sub_own.frame_annotations} annotations."
    )
    write_result("e3_verification_effort", lines)

    # shape assertions: compositional wins by a wide margin
    assert comparison.state_ratio > 3.0
    assert (
        comparison.largest_single_obligation["monolithic"]
        > 4 * comparison.largest_single_obligation["compositional"]
    )
    assert mono_own.shared_field_count > 0
    assert sub_own.shared_field_count == 0


def test_e3_counterexamples_for_classic_bugs(benchmark):
    """The checker's negative results: the classic hazards each produce
    a machine-found trace — the debugging payoff of the approach."""

    def run_all():
        stale = RdModel(segments=3, window=1, seq_mod=2, stale_traffic=True)
        wrap = RdModel(segments=5, window=3, seq_mod=4)
        fresh = CmModel(stale_syns=True)
        return (
            check(stale, stale.invariants()),
            check(wrap, wrap.invariants()),
            check(fresh, CmModel.freshness_invariants()),
        )

    stale_r, wrap_r, fresh_r = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {
            "hazard": "delayed duplicates without CM's fresh-ISN guarantee",
            "model": "RdModel(stale_traffic)",
            "violated": stale_r.violated,
            "trace_len": len(stale_r.counterexample),
        },
        {
            "hazard": "window exceeding half the sequence space",
            "model": "RdModel(W=3, M=4)",
            "violated": wrap_r.violated,
            "trace_len": len(wrap_r.counterexample),
        },
        {
            "hazard": "stale SYNs from an old incarnation",
            "model": "CmModel(stale_syns)",
            "violated": fresh_r.violated,
            "trace_len": len(fresh_r.counterexample),
        },
    ]
    write_result("e3_counterexamples", table(rows))
    assert not stale_r.holds and not wrap_r.holds and not fresh_r.holds
