"""F1 — Fig 1: functional vs sublayered modularity.

The figure's claim: with sublayering, the pieces SA/SB of a protocol
peer *only* with their counterparts RA/RB, so reasoning about S<->R
decomposes; with functional modularity the decomposition is internal
and the wire carries one undifferentiated conversation.

Reproduced: the same two-transform protocol is built both ways.  The
sublayered build shows per-piece peering on the wire (each header
consumed by its same-named peer, litmus T1/T3 pass); the functional
build performs identical processing but exposes a single monolithic
peer relationship — nothing on the wire or in the state separates the
two functions.
"""

from _util import table, write_result

from repro.core import (
    Field,
    HeaderFormat,
    Stack,
    Sublayer,
    WireTap,
    run_litmus,
    unwrap,
)


class PieceA(Sublayer):
    """Adds a length header (function A)."""

    HEADER = HeaderFormat("a", [Field("length", 16)], owner="a")

    def from_above(self, sdu, **meta):
        self.state.sent = self.state.snapshot().get("sent", 0) + 1
        self.send_down(self.wrap({"length": len(sdu)}, sdu))

    def from_below(self, pdu, **meta):
        values, inner = unwrap(pdu, "a")
        self.deliver_up(inner[: values["length"]])


class PieceB(Sublayer):
    """Adds a sequence header (function B)."""

    HEADER = HeaderFormat("b", [Field("seq", 16)], owner="b")

    def on_attach(self):
        self.state.seq = 0

    def from_above(self, sdu, **meta):
        self.state.seq = self.state.seq + 1
        self.send_down(self.wrap({"seq": self.state.seq}, sdu))

    def from_below(self, pdu, **meta):
        _, inner = unwrap(pdu, "b")
        self.deliver_up(inner)


class FunctionalMonolith(Sublayer):
    """Both functions fused: one header, one peer, shared state."""

    HEADER = HeaderFormat(
        "mono", [Field("length", 16), Field("seq", 16)], owner="mono"
    )

    def on_attach(self):
        self.state.seq = 0

    def from_above(self, sdu, **meta):
        self.state.seq = self.state.seq + 1
        self.send_down(
            self.wrap({"length": len(sdu), "seq": self.state.seq}, sdu)
        )

    def from_below(self, pdu, **meta):
        values, inner = unwrap(pdu, "mono")
        self.deliver_up(inner[: values["length"]])


def run_sublayered():
    tx = Stack("tx", [PieceA("a"), PieceB("b")])
    rx = Stack("rx", [PieceA("a"), PieceB("b")])
    wire = WireTap(tx, rx)
    delivered = []
    rx.on_deliver = lambda d, **m: delivered.append(d)
    tx.on_transmit = lambda p, **m: rx.receive(p)
    for i in range(20):
        tx.send(bytes([i]) * (i + 1))
    return tx, rx, wire, delivered


def test_f1_modularity(benchmark):
    tx, rx, wire, delivered = benchmark.pedantic(
        run_sublayered, rounds=1, iterations=1
    )
    assert len(delivered) == 20
    report = run_litmus(tx, rx, wire)
    assert report.passed

    # peering structure visible on the wire
    chains = {tuple(p.owners()) for p in wire.pdus}
    rows = [
        {
            "build": "sublayered (SA/SB ~ RA/RB)",
            "wire header chains": sorted(chains),
            "litmus": "T1/T2/T3 pass",
            "peer structure": "a<->a and b<->b, separately checkable",
        },
        {
            "build": "functional (monolith)",
            "wire header chains": "[('mono',)]",
            "litmus": "trivially single-piece",
            "peer structure": "one S<->R relationship, no decomposition",
        },
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        "both builds compute the same function; only the sublayered one "
        "exposes per-piece peer protocols that can be replaced and "
        "verified independently (Fig 1's right side)."
    )
    write_result("f1_modularity", lines)

    # the functional build works too, but with one fused header
    tx2 = Stack("tx2", [FunctionalMonolith("mono")])
    rx2 = Stack("rx2", [FunctionalMonolith("mono")])
    got = []
    rx2.on_deliver = lambda d, **m: got.append(d)
    tx2.on_transmit = lambda p, **m: rx2.receive(p)
    tx2.send(b"same behaviour")
    assert got == [b"same behaviour"]
    assert chains == {("b", "a")}
