"""F2 — Fig 2: the four data-link sublayers compose and swap freely.

The figure's claims: encoding/decoding at the bottom, framing above
it, error detection above that, and error recovery (or MAC) on top;
"the sublayer can be changed (to go from say CRC-32 to CRC-64) without
changing other sublayers".

Reproduced: a 5-sublayer HDLC-style stack runs over a link with bit
errors, loss and duplication; then every sublayer is swapped in turn —
line code, stuffing rule, detection code, ARQ scheme — and the same
workload still arrives intact, with litmus T1/T2/T3 passing each time.
"""

from _util import table, write_result

from repro.core.litmus import WireTap, run_litmus
from repro.datalink import (
    CRC16_CCITT,
    CRC64_ECMA,
    CrcCode,
    collect_bytes,
    connect_hdlc_pair,
    send_bytes,
)
from repro.datalink.framing import LOW_OVERHEAD_RULE
from repro.phys import FourBFiveB, Manchester
from repro.sim import LinkConfig, Simulator

LINK = dict(delay=0.01, loss=0.08, bit_error_rate=0.0008, duplicate=0.04)
FRAMES = [f"frame-{i:02d}-payload".encode() for i in range(25)]


def run_variant(**kwargs):
    sim = Simulator()
    a, b, _ = connect_hdlc_pair(
        sim, LinkConfig(**LINK), retransmit_timeout=0.1, **kwargs
    )
    wire = WireTap(a, b)
    received = collect_bytes(b)
    for frame in FRAMES:
        send_bytes(a, frame)
    sim.run(until=120)
    litmus = run_litmus(a, b, wire)
    return {
        "delivered": len(received),
        "intact": received == FRAMES,
        "crc_catches": b.sublayer("errordetect").state.snapshot()[
            "detected_errors"
        ],
        "retransmits": a.sublayer("recovery").state.snapshot()[
            "data_retransmitted"
        ],
        "litmus": "pass" if litmus.passed else "FAIL",
    }


VARIANTS = [
    ("baseline (GBN, CRC-32, HDLC rule, NRZ)", {}),
    ("swap recovery -> selective repeat", {"arq": "selective-repeat"}),
    ("swap recovery -> stop-and-wait", {"arq": "stop-and-wait"}),
    ("swap detection -> CRC-64", {"code": CrcCode(CRC64_ECMA)}),
    ("swap detection -> CRC-16", {"code": CrcCode(CRC16_CCITT)}),
    ("swap framing rule -> paper's low-overhead", {"rule": LOW_OVERHEAD_RULE}),
    ("swap encoding -> Manchester", {"line_code": Manchester()}),
    ("swap encoding -> 4B/5B", {"line_code": FourBFiveB()}),
]


def test_f2_datalink_sublayer_swaps(benchmark):
    baseline = benchmark.pedantic(run_variant, rounds=1, iterations=1)
    rows = [{"variant": VARIANTS[0][0], **baseline}]
    for name, kwargs in VARIANTS[1:]:
        rows.append({"variant": name, **run_variant(**kwargs)})

    lines = table(rows)
    lines.append("")
    lines.append(
        "every swap touches exactly one sublayer's constructor argument; "
        "all eight variants deliver the full workload in order over the "
        "same impaired link and pass T1/T2/T3."
    )
    write_result("f2_datalink", lines)

    for row in rows:
        assert row["intact"], row
        assert row["litmus"] == "pass", row
    # error detection earns its keep under bit errors
    assert sum(row["crc_catches"] for row in rows) > 0
