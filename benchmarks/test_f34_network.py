"""F3/F4 — Figs 3 and 4: the network-layer sublayers.

Claims: neighbor determination feeds route computation, which builds
the forwarding database; "one can change say route computation from
distance vector to Link State without changing forwarding"; control
and data planes use completely different packets (T3).

Reproduced: both algorithms converge the same topologies to identical
FIBs (checked against a shortest-path oracle), survive a link failure,
and the swap leaves the forwarding sublayer untouched.  Reconvergence
times are the figure's quantitative counterpart.
"""

from _util import table, write_result

from repro.network import DistanceVector, LinkState, Topology
from repro.sim import Simulator

TOPOLOGIES = {
    "ring-6": [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 1)],
    "mesh-8": [(1, 2), (2, 3), (3, 4), (4, 1), (1, 3), (2, 5), (5, 6),
               (6, 3), (5, 7), (7, 8), (8, 6)],
    "line-6": [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)],
}


def run_case(name, edges, routing_cls):
    sim = Simulator()
    topo = Topology.build(sim, edges, routing_cls=routing_cls)
    topo.start()
    converged = topo.converge(timeout=90)
    assert converged is not None, (name, routing_cls.name)
    # break the first edge and measure reconvergence
    fail_edge = edges[0]
    topo.fail_link(*fail_edge)
    before = sim.now
    reconverged = topo.converge(timeout=240)
    assert reconverged is not None, (name, routing_cls.name, "reconvergence")
    fibs = {addr: router.forwarding.fib() for addr, router in topo.routers.items()}
    updates = sum(
        r.routing.state.snapshot()["updates_received"]
        for r in topo.routers.values()
    )
    return {
        "topology": name,
        "routing": routing_cls.name,
        "initial_convergence_s": round(converged, 2),
        "reconvergence_s": round(reconverged - before, 2),
        "control_pkts": updates,
    }, fibs


def test_f34_network_sublayers(benchmark):
    first, _ = benchmark.pedantic(
        lambda: run_case("mesh-8", TOPOLOGIES["mesh-8"], LinkState),
        rounds=1, iterations=1,
    )
    rows = [first]
    fib_snapshots = {}
    for name, edges in TOPOLOGIES.items():
        for cls in (LinkState, DistanceVector):
            if name == "mesh-8" and cls is LinkState:
                fib_snapshots[(name, cls.name)] = None
                continue
            row, fibs = run_case(name, edges, cls)
            rows.append(row)
            fib_snapshots[(name, cls.name)] = fibs

    # the swap claim: fresh runs of both algorithms produce identical
    # pre-failure FIBs on a unique-shortest-path topology
    def fibs_for(cls):
        sim = Simulator()
        topo = Topology.build(sim, TOPOLOGIES["line-6"], routing_cls=cls)
        topo.start()
        assert topo.converge(timeout=60) is not None
        return {a: r.forwarding.fib() for a, r in topo.routers.items()}

    identical = fibs_for(LinkState) == fibs_for(DistanceVector)

    lines = table(rows)
    lines.append("")
    lines.append(
        f"DV <-> LS swap leaves the forwarding sublayer's FIBs identical "
        f"on line-6: {identical}"
    )
    lines.append(
        "control packets (hellos, LSPs, DV updates) never reach the "
        "forwarding sublayer: each packet kind belongs to one sublayer (T3)."
    )
    write_result("f34_network", lines)

    assert identical
    for row in rows:
        assert row["reconvergence_s"] < 60
