"""F5 — Fig 5: the sublayered TCP delivers TCP's service, and bugs
localize to the sublayer whose contract fails.

Two parts:

1. Functionality under adversity (loss sweep 0-15%, plus duplication
   and reordering): the byte stream always arrives intact.
2. Bug localization (the paper's debugging claim): a bug injected into
   RD breaks the RD-boundary exactly-once contract; a bug injected
   into OSR leaves RD's contract intact and breaks only the
   application-boundary byte-stream contract — so the failing
   contract names the faulty sublayer.
"""

from _util import make_pair, run_transfer, table, write_result

from repro.core.contracts import (
    ByteStreamIntegrity,
    ContractMonitor,
    ExactlyOnceDelivery,
    Observation,
)
from repro.core.pdu import Pdu

from repro.sim import LinkConfig
from repro.transport import TcpConfig
from repro.transport.sublayered import OsrSublayer, RdSublayer


def test_f5_functionality_sweep(benchmark):
    def run(loss):
        sim, a, b = make_pair(
            "sub", "sub",
            link=LinkConfig(delay=0.02, rate_bps=8_000_000, loss=loss,
                            duplicate=0.03, reorder_jitter=0.008),
            seed=11,
        )
        outcome = run_transfer(sim, a, b, nbytes=60_000)
        rd = a.stack.sublayer("rd").state.snapshot()
        return {
            "loss": f"{loss:.0%}",
            "intact": outcome["intact"],
            "virtual_s": outcome["virtual_seconds"],
            "goodput_mbps": outcome["goodput_mbps"],
            "rd_retransmits": rd["retransmitted"],
        }

    first = benchmark.pedantic(lambda: run(0.02), rounds=1, iterations=1)
    rows = [run(0.0), first, run(0.05), run(0.10), run(0.15)]
    lines = table(rows)
    lines.append("")
    lines.append("the byte stream survives every impairment level; "
                 "retransmissions scale with loss (challenge 1, Refactor).")
    write_result("f5_tcp_functionality", lines)
    for row in rows:
        assert row["intact"], row


# ----------------------------------------------------------------------
# Injected bugs
# ----------------------------------------------------------------------
class BuggyRd(RdSublayer):
    """RD bug: silently swallows every 7th in-order data segment — it
    advances its bookkeeping and acks the segment but never delivers it
    upward.  Exactly-once delivery is broken *inside RD*."""

    def _process_segment(self, conn, values, inner):
        from repro.transport.seqspace import unfold
        from repro.transport.sublayered.rd import segment_length

        count = self.state.snapshot().get("bug_counter", 0) + 1
        self.state.bug_counter = count
        length = segment_length(inner)
        record = self._get(conn)
        if (
            values["has_data"] and length > 0 and count % 7 == 0
            and record is not None
        ):
            base = record["remote_isn"] + 1
            offset = unfold(base + record["rcv_nxt"], values["seq"]) - base
            if offset == record["rcv_nxt"]:
                record = dict(record)
                record["rcv_nxt"] = offset + length
                self._put(conn, record)
                self._send_pure_ack(conn)
                return  # swallowed!
        super()._process_segment(conn, values, inner)


class BuggyOsr(OsrSublayer):
    """OSR bug: hands segments to the application in arrival order,
    skipping reassembly — ordering broken *inside OSR*, RD untouched."""

    def _reassemble(self, conn, offset, data):
        # deliver immediately, ignore offsets (the reordering bug)
        self._deliver(conn, data)
        self._maybe_notify_peer_closed(conn)


def _filtered_segments(observation: Observation) -> Observation:
    """Keep only data-bearing RD-boundary units, keyed by payload."""

    def data_of(unit):
        if isinstance(unit, Pdu):
            payload = unit.payload()
            if isinstance(payload, (bytes, bytearray)) and payload:
                return bytes(payload)
        return None

    sent = [d for d in map(data_of, observation.sent) if d is not None]
    delivered = [d for d in map(data_of, observation.delivered) if d is not None]
    return Observation(sent=sent, delivered=delivered)


def run_with_bug(rd_factory=None, osr_factory=None):
    sim, a, b = make_pair(
        "sub", "sub",
        link=LinkConfig(delay=0.02, rate_bps=8_000_000, loss=0.05,
                        reorder_jitter=0.01),
        seed=5,
    )
    # rebuild b with the buggy sublayer(s)
    from repro.transport import SublayeredTcpHost

    b = SublayeredTcpHost(
        "b", sim.clock(), TcpConfig(mss=1000),
        rd_factory=rd_factory, osr_factory=osr_factory,
    )
    # rewire the link to the new b
    import random as _random

    from repro.sim import DuplexLink

    duplex = DuplexLink(
        sim, LinkConfig(delay=0.02, rate_bps=8_000_000, loss=0.05,
                        reorder_jitter=0.01),
        rng_forward=_random.Random(5), rng_reverse=_random.Random(6),
    )
    duplex.attach(a, b)

    # RD-boundary observation.  OSR hands segments to RD through the
    # service port ("deciding when a segment is ready"), which taps
    # don't see; the equivalent observable is RD's own downward output
    # (which includes retransmissions — exactly-once dedups them) vs
    # RD's upward deliveries at the receiver.
    rd_obs = Observation()
    a.stack.taps.append(
        lambda d, caller, provider, sdu, meta: (
            rd_obs.sent.append(sdu) if d == "down" and caller == "rd" else None
        )
    )
    b.stack.taps.append(
        lambda d, caller, provider, sdu, meta: (
            rd_obs.delivered.append(sdu) if d == "up" and caller == "rd" else None
        )
    )
    outcome = run_transfer(sim, a, b, nbytes=40_000, until=120)

    rd_contract = ExactlyOnceDelivery("rd")
    rd_violations = rd_contract.evaluate(_filtered_segments(rd_obs))

    sent_stream = bytes(i % 251 for i in range(40_000))  # run_transfer's data
    peer = outcome["peer"]
    delivered_stream = peer.bytes_received() if peer else b""
    app_contract = ByteStreamIntegrity("osr", require_complete=False)
    app_violations = app_contract.evaluate(
        Observation(sent=[sent_stream], delivered=[delivered_stream])
    )
    return rd_violations, app_violations


def test_f5_bug_localization(benchmark):
    def all_three():
        clean = run_with_bug()
        rd_bug = run_with_bug(
            rd_factory=lambda cfg: BuggyRd(
                "rd", rto_initial=cfg.rto_initial, rto_min=cfg.rto_min,
                rto_max=cfg.rto_max, dupack_threshold=cfg.dupack_threshold,
            )
        )
        osr_bug = run_with_bug(
            osr_factory=lambda cfg: BuggyOsr(
                "osr", mss=cfg.mss, recv_buffer=cfg.recv_buffer,
            )
        )
        return clean, rd_bug, osr_bug

    clean, rd_bug, osr_bug = benchmark.pedantic(all_three, rounds=1, iterations=1)

    def verdict(violations):
        return "violated" if violations else "holds"

    rows = [
        {
            "injected bug": "none (control)",
            "RD contract (exactly-once)": verdict(clean[0]),
            "OSR contract (byte stream)": verdict(clean[1]),
            "localized to": "-",
        },
        {
            "injected bug": "RD swallows segments",
            "RD contract (exactly-once)": verdict(rd_bug[0]),
            "OSR contract (byte stream)": verdict(rd_bug[1]),
            "localized to": "rd (lowest failing contract)",
        },
        {
            "injected bug": "OSR skips reassembly",
            "RD contract (exactly-once)": verdict(osr_bug[0]),
            "OSR contract (byte stream)": verdict(osr_bug[1]),
            "localized to": "osr (RD's contract still holds)",
        },
    ]
    lines = table(rows)
    lines.append("")
    lines.append(
        '"we can localize bugs to sublayers (by examining which sublayer '
        'fails its contract)" — Section 1, demonstrated.'
    )
    write_result("f5_bug_localization", lines)

    assert not clean[0] and not clean[1]
    assert rd_bug[0], "RD bug must break RD's contract"
    assert not osr_bug[0], "OSR bug must not implicate RD"
    assert osr_bug[1], "OSR bug must break the byte-stream contract"
