"""F6 — Fig 6: the sublayered header is isomorphic to RFC 793.

Paper: "we claim that the two headers are isomorphic.  Our intent is
that all information in the standard TCP header appear in Figure 6 and
vice versa."

Reproduced: (a) a complete field-correspondence audit — every field of
both formats classified; (b) behavioural round trips through the shim
across randomized header populations; (c) the size accounting of the
native header (the ISN redundancy the paper concedes)."""

import random

from _util import table, write_result

from repro.analysis.headers import (
    ISOMORPHISM_TABLE,
    check_data_segment_roundtrip,
    native_fields_covered,
    rfc793_fields_covered,
)
from repro.transport.rfc793 import TCP_HEADER
from repro.transport.sublayered.headers import (
    CM_HEADER,
    DM_HEADER,
    NATIVE_HEADER_BITS,
    OSR_HEADER,
    RD_HEADER,
)


def randomized_roundtrips(count: int = 200, seed: int = 0) -> int:
    rng = random.Random(seed)
    failures = 0
    for _ in range(count):
        outcome = check_data_segment_roundtrip(
            sport=rng.randrange(1, 65536),
            dport=rng.randrange(1, 65536),
            isn=rng.randrange(2**32),
            ack_isn=rng.randrange(2**32),
            offset=rng.randrange(2**20),
            ack=rng.randrange(2**20),
            wnd=rng.randrange(2**16),
            payload=bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64))),
        )
        if not all(outcome.values()):
            failures += 1
    return failures


def test_f6_header_isomorphism(benchmark):
    failures = benchmark.pedantic(randomized_roundtrips, rounds=1, iterations=1)
    assert failures == 0

    rows = [
        {
            "native field": m.native,
            "rfc793 field": m.rfc793 or "-",
            "relation": m.relation,
            "note": m.note[:54],
        }
        for m in ISOMORPHISM_TABLE
    ]
    lines = table(rows)
    lines.append("")
    native_cover = native_fields_covered()
    rfc_cover = rfc793_fields_covered()
    lines.append(
        f"audit: {sum(native_cover.values())}/{len(native_cover)} native "
        f"fields and {sum(rfc_cover.values())}/{len(rfc_cover)} RFC 793 "
        f"fields accounted for"
    )
    lines.append(
        f"behavioural: 200 randomized data-segment round trips through the "
        f"shim, {failures} failures"
    )
    subheaders = {
        "dm": DM_HEADER.bit_width,
        "cm": CM_HEADER.bit_width,
        "rd": RD_HEADER.bit_width,
        "osr": OSR_HEADER.bit_width,
    }
    lines.append(
        f"native header: {subheaders} = {NATIVE_HEADER_BITS} bits vs "
        f"RFC 793's {TCP_HEADER.bit_width}; the difference is dominated by "
        f"the static CM echo ('the ISN header is redundant [but] static "
        f"after the initial handshake' — Section 3.1) and the always-"
        f"present SACK range"
    )
    write_result("f6_header_iso", lines)

    assert all(native_cover.values())
    assert all(rfc_cover.values())
