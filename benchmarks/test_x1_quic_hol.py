"""X1 (extension) — Section 5's QUIC sublayering, and the HOL ablation.

The paper: "Of particular interest to us is QUIC which has a clean
sub-layering between networking (the transport layer) and security
(the record layer).  The transport layer can likely be further
sublayered into a stream layer and a connection layer" — and, on SST/
Minion: "they seek to answer the question: 'How do I sublayer TCP to
avoid HOL blocking?'".

This extension builds that stack (stream > connection > record > DM)
and runs the ablation the related-work discussion implies: N logical
messages multiplexed over (a) one sublayered-TCP byte stream with
length-prefix framing (head-of-line coupled) and (b) N mini-QUIC
streams (head-of-line free), over identical lossy links.  The measure
is per-message completion time; the claim is that under loss the
streamed transport's *mean* completion beats the serialized one's
because a lost packet stalls only its own stream."""

import random
import struct

from _util import table, write_result

from repro.sim import DuplexLink, LinkConfig, Simulator
from repro.transport import SublayeredTcpHost, TcpConfig
from repro.transport.quic import QuicHost

MESSAGES = 8
MESSAGE_BYTES = 8_000


def payload(i: int) -> bytes:
    return bytes((j * (i + 3)) % 251 for j in range(MESSAGE_BYTES))


def link_for(sim, loss, seed):
    return DuplexLink(
        sim,
        LinkConfig(delay=0.02, rate_bps=6_000_000, loss=loss),
        rng_forward=random.Random(seed),
        rng_reverse=random.Random(seed + 1),
    )


def run_tcp(loss: float, seed: int) -> dict[int, float] | None:
    """All messages serialized over one TCP byte stream."""
    sim = Simulator()
    cfg = TcpConfig(mss=1000)
    a = SublayeredTcpHost("a", sim.clock(), cfg)
    b = SublayeredTcpHost("b", sim.clock(), cfg)
    link_for(sim, loss, seed).attach(a, b)
    b.listen(80)
    sock = a.connect(5000, 80)

    def go():
        for i in range(MESSAGES):
            body = payload(i)
            sock.send(struct.pack("!I", len(body)) + body)

    sock.on_connect = go
    completion: dict[int, float] = {}
    state = {"buf": b"", "idx": 0}

    def on_accept(peer):
        def on_data(chunk):
            state["buf"] += chunk
            while len(state["buf"]) >= 4:
                (length,) = struct.unpack_from("!I", state["buf"])
                if len(state["buf"]) < 4 + length:
                    break
                state["buf"] = state["buf"][4 + length :]
                completion[state["idx"]] = sim.now
                state["idx"] += 1

        peer.on_data = on_data

    b.on_accept = on_accept
    sim.run(until=120)
    return completion if len(completion) == MESSAGES else None


def run_quic(loss: float, seed: int) -> dict[int, float] | None:
    """One mini-QUIC stream per message."""
    sim = Simulator()
    a = QuicHost("a", sim.clock())
    b = QuicHost("b", sim.clock())
    link_for(sim, loss, seed).attach(a, b)
    b.listen(443)
    conn = a.connect(5000, 443)
    conn.on_connect = lambda: [
        conn.send(i + 1, payload(i), fin=True) for i in range(MESSAGES)
    ]
    completion: dict[int, float] = {}

    def on_accept(peer):
        peer.on_stream_fin = lambda sid: completion.setdefault(sid - 1, sim.now)

    b.on_accept = on_accept
    sim.run(until=120)
    return completion if len(completion) == MESSAGES else None


def summarize(times: dict[int, float]) -> tuple[float, float]:
    values = sorted(times.values())
    mean = sum(values) / len(values)
    p95 = values[min(len(values) - 1, int(0.95 * len(values)))]
    return mean, p95


def test_x1_quic_hol_ablation(benchmark):
    seeds = (3, 11, 27, 41)

    def sweep():
        rows = []
        for loss in (0.0, 0.03, 0.06):
            tcp_means, quic_means = [], []
            for seed in seeds:
                tcp = run_tcp(loss, seed)
                quic = run_quic(loss, seed)
                assert tcp is not None and quic is not None, (loss, seed)
                tcp_means.append(summarize(tcp)[0])
                quic_means.append(summarize(quic)[0])
            tcp_mean = sum(tcp_means) / len(tcp_means)
            quic_mean = sum(quic_means) / len(quic_means)
            rows.append({
                "loss": f"{loss:.0%}",
                "tcp mean completion (s)": round(tcp_mean, 3),
                "quic mean completion (s)": round(quic_mean, 3),
                "quic advantage": f"{tcp_mean / quic_mean:.2f}x",
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = table(rows)
    lines.append("")
    lines.append(
        f"{MESSAGES} messages x {MESSAGE_BYTES} B, averaged over "
        f"{len(seeds)} seeds.  Serialized on one TCP byte stream, a lost "
        "segment stalls every message behind it; on per-message QUIC "
        "streams only the afflicted stream waits — the SST/Minion "
        "head-of-line argument the paper frames as a sublayering use "
        "case, measured."
    )
    write_result("x1_quic_hol", lines)

    # shape: with loss, streams beat the serialized byte stream on mean
    lossy = [r for r in rows if r["loss"] != "0%"]
    for row in lossy:
        assert (
            row["quic mean completion (s)"] < row["tcp mean completion (s)"]
        ), row
