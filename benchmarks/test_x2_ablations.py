"""X2 (extension) — ablations of the design choices DESIGN.md calls out.

Three sublayer-internal mechanism choices, each toggled in isolation
on identical seeded links:

* **RD's SACK** ("if Selective Acknowledgement is used, the SACK
  options are also processed by this sublayer") — with vs without,
  under loss: SACK removes delivered-but-unacked segments from the
  flight, so fewer spurious retransmissions;
* **framing decomposition** — the paper's nested bit-stuffed pair vs a
  single COBS sublayer, same service, different overhead profile;
* **ARQ scheme inside error recovery** — go-back-N vs selective
  repeat retransmission volume under loss (the Fig 2 swap, measured
  rather than merely passing).
"""

from _util import make_pair, run_transfer, table, write_result

from repro.datalink import collect_bytes, connect_hdlc_pair, send_bytes
from repro.sim import LinkConfig, Simulator
from repro.transport import TcpConfig
from repro.transport.sublayered import RdSublayer


def run_sack(enabled: bool, seed: int):
    def rd_variant(params):
        cfg = params["config"]
        return RdSublayer(
            "rd", rto_initial=cfg.rto_initial, rto_min=cfg.rto_min,
            rto_max=cfg.rto_max, dupack_threshold=cfg.dupack_threshold,
            sack_enabled=enabled,
        )

    sim, a, b = make_pair(
        "sub", "sub",
        replacements={"rd": rd_variant},
        link=LinkConfig(delay=0.03, rate_bps=8_000_000, loss=0.08,
                        reorder_jitter=0.01),
        seed=seed,
    )
    outcome = run_transfer(sim, a, b, nbytes=80_000)
    assert outcome["intact"]
    rd = a.stack.sublayer("rd").state.snapshot()
    return outcome["virtual_seconds"], rd["retransmitted"]


def test_x2_sack_ablation(benchmark):
    seeds = (3, 11, 27)

    def sweep():
        rows = []
        for enabled in (True, False):
            times, retx = [], []
            for seed in seeds:
                t, r = run_sack(enabled, seed)
                times.append(t)
                retx.append(r)
            rows.append({
                "rd variant": "with SACK" if enabled else "cumulative-only",
                "mean completion (s)": round(sum(times) / len(times), 3),
                "mean retransmissions": round(sum(retx) / len(retx), 1),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = table(rows)
    lines.append("")
    lines.append(
        "8% loss + reordering, 80 kB, 3 seeds.  SACK is internal to RD: "
        "toggling it touches no other sublayer.  With SACK, holes are "
        "repaired by partial-ack retransmissions (one per RTT) instead "
        "of RTO waits, trading a few extra retransmissions for "
        "materially faster completion; without SACK the sender cannot "
        "see past the first hole and recovery is timeout-paced."
    )
    write_result("x2_sack_ablation", lines)
    with_sack, without = rows[0], rows[1]
    assert with_sack["mean completion (s)"] <= without["mean completion (s)"]


def run_framing(framing: str, seed: int):
    sim = Simulator()
    a, b, duplex = connect_hdlc_pair(
        sim,
        LinkConfig(delay=0.01, loss=0.05, bit_error_rate=0.0005),
        retransmit_timeout=0.1,
        framing=framing,
        rng_seed=seed,
    )
    received = collect_bytes(b)
    frames = [bytes([i]) * 40 for i in range(20)]
    for frame in frames:
        send_bytes(a, frame)
    sim.run(until=60)
    assert received == frames, framing
    return duplex.forward.stats.bits_sent


def test_x2_framing_repartition(benchmark):
    def sweep():
        rows = []
        for framing in ("bitstuff", "cobs"):
            bits = sum(run_framing(framing, seed) for seed in (1, 2, 3)) / 3
            rows.append({
                "framing decomposition": (
                    "stuffing + flags (2 sublayers)" if framing == "bitstuff"
                    else "COBS (1 sublayer)"
                ),
                "mean wire bits": round(bits),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = table(rows)
    lines.append("")
    lines.append(
        "the same 20-frame workload over the same impaired link: the "
        "framing *decomposition itself* is swappable — two sublayers vs "
        "one — with everything above and below unchanged.  Wire volume "
        "differs only by the framings' own overhead profiles."
    )
    write_result("x2_framing_repartition", lines)
    assert len(rows) == 2


def test_x2_arq_retransmission_volume(benchmark):
    def sweep():
        rows = []
        for arq in ("go-back-n", "selective-repeat"):
            retx = []
            for seed in (5, 6, 7):
                sim = Simulator()
                a, b, _ = connect_hdlc_pair(
                    sim,
                    LinkConfig(delay=0.02, loss=0.2),
                    arq=arq,
                    retransmit_timeout=0.15,
                    window=8,
                    rng_seed=seed,
                )
                received = collect_bytes(b)
                frames = [bytes([i]) * 20 for i in range(30)]
                for frame in frames:
                    send_bytes(a, frame)
                sim.run(until=180)
                assert received == frames, (arq, seed)
                retx.append(
                    a.sublayer("recovery").state.snapshot()["data_retransmitted"]
                )
            rows.append({
                "error recovery": arq,
                "mean retransmissions": round(sum(retx) / len(retx), 1),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = table(rows)
    lines.append("")
    lines.append(
        "20% loss, 30 frames, 3 seeds: selective repeat repeats only "
        "what was lost; go-back-N repeats the whole window — the classic "
        "trade, obtained by swapping one sublayer."
    )
    write_result("x2_arq_ablation", lines)
    gbn, sr = rows[0], rows[1]
    assert sr["mean retransmissions"] < gbn["mean retransmissions"]


def test_x2_ecn_ablation(benchmark):
    """ECN vs loss-only congestion signaling on a drop-free bottleneck:
    'explicit congestion control notifications like ECN are in the OSR
    subheader' (Section 3) — with marking, the queue is tamed without a
    single retransmission."""
    import random

    from repro.sim import DuplexLink, Simulator
    from repro.transport import SublayeredTcpHost, TcpConfig

    def run(ecn: bool, seed: int):
        sim = Simulator()
        cfg = TcpConfig(mss=1000)
        a = SublayeredTcpHost("a", sim.clock(), cfg)
        b = SublayeredTcpHost("b", sim.clock(), cfg)
        link = DuplexLink(
            sim,
            LinkConfig(
                delay=0.02, rate_bps=1_500_000,
                ecn_threshold=0.02 if ecn else None,
                drop_tail_delay=0.06,  # a finite router buffer
            ),
            rng_forward=random.Random(seed),
            rng_reverse=random.Random(seed + 1),
        )
        link.attach(a, b)
        outcome = run_transfer(sim, a, b, nbytes=150_000)
        assert outcome["intact"]
        osr = a.stack.sublayer("osr").state.snapshot()
        return {
            "marks": link.forward.stats.ecn_marked,
            "cuts": osr["ecn_cuts"],
            "drops": link.forward.stats.queue_dropped,
            "retx": a.stack.sublayer("rd").state.snapshot()["retransmitted"],
            "completion": outcome["virtual_seconds"],
        }

    def sweep():
        rows = []
        for ecn in (True, False):
            samples = [run(ecn, seed) for seed in (1, 2, 3)]
            rows.append({
                "congestion signal": "ECN marking" if ecn else "none (loss only)",
                "mean marks": round(sum(s["marks"] for s in samples) / 3, 1),
                "mean rate cuts": round(sum(s["cuts"] for s in samples) / 3, 1),
                "mean queue drops": round(sum(s["drops"] for s in samples) / 3, 1),
                "mean retransmissions": round(sum(s["retx"] for s in samples) / 3, 1),
                "mean completion (s)": round(
                    sum(s["completion"] for s in samples) / 3, 3
                ),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = table(rows)
    lines.append("")
    lines.append(
        "a 1.5 Mbit/s bottleneck with a finite (60 ms) buffer: with ECN "
        "the sender backs off before the buffer overflows (fewer drops "
        "and retransmissions); without it, loss is the only signal.  The "
        "entire signal path lives in the OSR subheader pair (CE from the "
        "link, echo from the receiver, rate cut at the sender) — no "
        "other sublayer is aware ECN exists (T3)."
    )
    write_result("x2_ecn_ablation", lines)
    assert rows[0]["mean rate cuts"] > 0
    assert rows[1]["mean rate cuts"] == 0
    assert rows[0]["mean retransmissions"] <= rows[1]["mean retransmissions"]
