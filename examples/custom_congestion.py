#!/usr/bin/env python3
"""Fungibility (challenge 5): plug a custom congestion controller into
OSR without touching any other sublayer.

Defines a brand-new controller *in this file* — a conservative
"halve-on-any-loss, linear-increase" scheme — and runs the same
transfer under AIMD, rate-based, and the custom scheme.  Afterwards it
verifies the replace-claim mechanically: the state-field vocabulary of
RD, CM, and DM is identical across all three runs; only OSR's
behaviour changed.

Run:  python examples/custom_congestion.py
"""

import random

from repro.sim import DuplexLink, LinkConfig, Simulator
from repro.transport import SublayeredTcpHost, TcpConfig
from repro.transport.sublayered import AimdCc, CongestionControl, RateBasedCc


class CautiousCc(CongestionControl):
    """A user-defined controller: linear growth, halve on any loss."""

    name = "cautious"

    def __init__(self, mss: int):
        super().__init__(mss)
        self.budget = 2 * mss

    def window(self) -> int:
        return self.budget

    def on_ack(self, acked_bytes: int, rtt: float | None = None) -> None:
        self.budget += self.mss // 4

    def on_loss(self, kind: str) -> None:
        self.budget = max(self.mss, self.budget // 2)


def run_with(cc_factory, label: str, seed: int = 3):
    sim = Simulator()
    config = TcpConfig(mss=1000)
    a = SublayeredTcpHost("a", sim.clock(), config, cc_factory=cc_factory)
    b = SublayeredTcpHost("b", sim.clock(), config, cc_factory=cc_factory)
    link = DuplexLink(
        sim,
        LinkConfig(delay=0.02, rate_bps=4_000_000, loss=0.03),
        rng_forward=random.Random(seed),
        rng_reverse=random.Random(seed + 1),
    )
    link.attach(a, b)
    b.listen(80)
    payload = bytes(i % 256 for i in range(150_000))
    start = {}
    done = {}
    sock = a.connect(1000, 80)

    def finished():
        done["t"] = sim.now

    sock.on_connect = lambda: (start.setdefault("t", sim.now),
                               sock.send(payload), sock.close())
    sock.on_close = finished
    sim.run(until=300)
    peer = b.socket_for(80, 1000)
    ok = peer.bytes_received() == payload
    elapsed = done.get("t", sim.now) - start.get("t", 0.0)
    goodput = 8 * len(payload) / elapsed / 1e6 if elapsed else 0.0
    print(f"  {label:<12} intact={ok}  completed in {elapsed:6.2f} s "
          f"({goodput:.2f} Mbit/s goodput)")
    return {
        name: a.stack.sublayer(name).state.field_names()
        for name in ("rd", "cm", "dm")
    }


def main() -> None:
    print("same 150 kB transfer, same 3%-loss link, three controllers:")
    vocabularies = {
        "aimd": run_with(lambda mss: AimdCc(mss), "aimd (Reno)"),
        "rate": run_with(lambda mss: RateBasedCc(mss), "rate-based"),
        "cautious": run_with(lambda mss: CautiousCc(mss), "cautious*"),
    }
    print("\n  (* defined in this example file, ~15 lines)")

    identical = (
        vocabularies["aimd"] == vocabularies["rate"] == vocabularies["cautious"]
    )
    print(
        "\nreplace-claim check: RD/CM/DM state vocabularies "
        + ("IDENTICAL across all three runs — only OSR changed."
           if identical else "DIFFER (unexpected!)")
    )


if __name__ == "__main__":
    main()
