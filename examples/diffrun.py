#!/usr/bin/env python3
"""Diffrun: dump the complete observable books of a seeded tier=off run.

Runs a fixed, seeded workload — an HDLC transfer with deterministic
fault sublayers inserted, plus a three-station wireless cell — at
``tier="off"``, the tier where the codegen fast path replaces the hop
chain, and writes every observable output (delivered bytes, metrics
snapshot, per-sublayer state, hop counters) as canonical JSON.

The point is the diff: run it twice, once with ``REPRO_CODEGEN=1`` and
once with ``REPRO_CODEGEN=0``, and ``cmp`` the files.  The fused
generated code and the plain chain walk must be byte-identical in
everything they produce — CI does exactly that.

Run:  python examples/diffrun.py --out books.json
"""

import argparse
import json
import random

from repro.datalink import (
    NullArq,
    build_hdlc_stack,
    build_wireless_station,
    collect_bytes,
    send_bytes_batch,
)
from repro.faults import DropFault, DuplicateFault, FaultSchedule
from repro.obs import MetricsRegistry
from repro.sim import BroadcastMedium, DuplexLink, LinkConfig, Simulator

PAYLOADS = [
    bytes([i % 251, (i * 7) % 251, (i * 13) % 251]) * 5 for i in range(32)
]


def books(stacks, delivered, metrics):
    """Everything the run observably produced, JSON-serialisable."""
    return {
        "delivered": {
            name: [unit.hex() for unit in inbox]
            for name, inbox in delivered.items()
        },
        "metrics": metrics.snapshot(),
        "state": {
            stack.name: {
                sublayer.name: sublayer.state.snapshot()
                for sublayer in stack.sublayers
            }
            for stack in stacks
        },
        "hops": {
            stack.name: [stack.hop_counters.down, stack.hop_counters.up]
            for stack in stacks
        },
    }


def run_hdlc(metrics) -> dict:
    sim = Simulator()
    a = build_hdlc_stack(
        "dl-a", sim.clock(), tier="off", metrics=metrics,
        retransmit_timeout=0.23,
    )
    b = build_hdlc_stack(
        "dl-b", sim.clock(), tier="off", metrics=metrics,
        retransmit_timeout=0.23,
    )
    a.insert(
        "errordetect",
        DropFault(
            "drop", schedule=FaultSchedule(every=5),
            rng=random.Random(11), direction="down",
        ),
        where="after",
    )
    b.insert(
        "errordetect",
        DuplicateFault(
            "dup", schedule=FaultSchedule(every=7),
            rng=random.Random(12), direction="up",
        ),
        where="before",
    )
    duplex = DuplexLink(
        sim,
        LinkConfig(delay=0.013, rate_bps=2_000_000),
        rng_forward=random.Random(3),
        rng_reverse=random.Random(4),
        name="hdlc",
    )
    duplex.attach(a, b)
    inbox_a, inbox_b = collect_bytes(a), collect_bytes(b)
    send_bytes_batch(a, PAYLOADS)
    send_bytes_batch(b, PAYLOADS[:12])
    sim.run(until=60)
    assert inbox_b == PAYLOADS, "ARQ must recover every faulted payload"
    return books([a, b], {"a": inbox_a, "b": inbox_b}, metrics)


def run_hdlc_fused(metrics) -> dict:
    """The fully-fuseable stack: ARQ swapped for a passthrough.

    With every sublayer fuse-willing, ``REPRO_CODEGEN=1`` really does
    route this run through exec-generated code — asserted below — so
    the CI ``cmp`` against the ``REPRO_CODEGEN=0`` chain walk is a
    genuine differential, not two spellings of the same path.
    """
    sim = Simulator()
    replacements = {"arq": lambda params: NullArq("recovery")}
    a = build_hdlc_stack(
        "fz-a", sim.clock(), tier="off", metrics=metrics,
        replacements=replacements,
    )
    b = build_hdlc_stack(
        "fz-b", sim.clock(), tier="off", metrics=metrics,
        replacements=replacements,
    )
    duplex = DuplexLink(
        sim,
        LinkConfig(delay=0.009, rate_bps=1_000_000),
        rng_forward=random.Random(5),
        rng_reverse=random.Random(6),
        name="fz",
    )
    duplex.attach(a, b)
    if a.codegen_enabled:
        assert a.wiring_plan.fused == {"down": True, "up": True}
        assert b.wiring_plan.fused == {"down": True, "up": True}
    inbox_a, inbox_b = collect_bytes(a), collect_bytes(b)
    send_bytes_batch(a, PAYLOADS)
    sim.run(until=60)
    assert inbox_b == PAYLOADS
    return books([a, b], {"a": inbox_a, "b": inbox_b}, metrics)


def run_wireless(metrics) -> dict:
    sim = Simulator()
    medium = BroadcastMedium(sim, rate_bps=200_000.0)
    stacks = [
        build_wireless_station(
            sim, medium, address=i, rng=random.Random(40 + i),
            tier="off", metrics=metrics,
        )
        for i in range(3)
    ]
    inboxes = [collect_bytes(stack) for stack in stacks]
    send_bytes_batch(stacks[0], PAYLOADS[:10])
    send_bytes_batch(stacks[1], PAYLOADS[10:16])
    sim.run(until=60)
    return books(
        stacks, {str(i): inbox for i, inbox in enumerate(inboxes)}, metrics
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", metavar="FILE.json", default="diffrun.json",
        help="write the canonical books here (default: diffrun.json)",
    )
    args, _unknown = parser.parse_known_args()

    report = {
        "hdlc": run_hdlc(MetricsRegistry()),
        "hdlc_fused": run_hdlc_fused(MetricsRegistry()),
        "wireless": run_wireless(MetricsRegistry()),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    delivered = sum(
        len(inbox)
        for profile in report.values()
        for inbox in profile["delivered"].values()
    )
    print(f"wrote {args.out}: {delivered} deliveries across "
          f"{len(report)} profiles")


if __name__ == "__main__":
    main()
