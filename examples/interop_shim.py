#!/usr/bin/env python3
"""Interoperability (challenge 2): a sublayered TCP talks to a
standard monolithic TCP through the RFC 793 shim.

The client runs the Fig 5 stack with the shim at the bottom; the
server is the lwIP-style monolithic TCP.  Every unit on the wire is a
standard 20-byte-header TCP segment — printed below so you can watch
the handshake, data, and FIN exchange — yet the client's internals are
four cleanly separated sublayers.

Run:  python examples/interop_shim.py
"""

import random

from repro.sim import DuplexLink, LinkConfig, Simulator
from repro.transport import (
    MonolithicTcpHost,
    Rfc793Shim,
    SublayeredTcpHost,
    TcpConfig,
)


def main() -> None:
    sim = Simulator()
    config = TcpConfig(mss=400)

    sub = SublayeredTcpHost("sub", sim.clock(), config, shim=Rfc793Shim())
    mono = MonolithicTcpHost("mono", sim.clock(), config)

    link = DuplexLink(
        sim,
        LinkConfig(delay=0.01, loss=0.05),
        rng_forward=random.Random(7),
        rng_reverse=random.Random(8),
    )
    link.attach(sub, mono)

    # Tap the wire to display the conversation.
    transcript = []
    sub_tx, mono_tx = sub.on_transmit, mono.on_transmit

    def tap(direction, forward):
        def handler(segment, **meta):
            transcript.append((sim.now, direction, segment))
            forward(segment, **meta)
        return handler

    sub.on_transmit = tap("sub->mono", sub_tx)
    mono.on_transmit = tap("mono->sub", mono_tx)

    mono.listen(80)
    request = b"GET /sublayering HTTP/1.0\r\n\r\n"
    response = b"HTTP/1.0 200 OK\r\n\r\nIf layering is useful, why not sublayering?"

    sock = sub.connect(4242, 80)
    sock.on_connect = lambda: sock.send(request)

    def accept(peer):
        def on_data(_chunk):
            if peer.bytes_received() == request:
                peer.send(response)
                peer.close()
        peer.on_data = on_data

    mono.on_accept = accept
    sim.run(until=30)

    print("wire transcript (standard TCP segments only):")
    for when, direction, seg in transcript[:24]:
        print(f"  {when:7.3f}s {direction}: {seg.flag_names():<11} "
              f"seq={seg.seq % 100000:>5} ack={seg.ack % 100000:>5} "
              f"win={seg.window:>5} len={len(seg.payload)}")
    if len(transcript) > 24:
        print(f"  ... {len(transcript) - 24} more segments")

    print(f"\nclient received: {sock.bytes_received().decode()!r}")
    print(f"server received: {mono.socket_for(80, 4242).bytes_received().decode()!r}")
    print("\nboth byte streams intact across the shim, under 5% loss.")


if __name__ == "__main__":
    main()
