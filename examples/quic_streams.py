#!/usr/bin/env python3
"""Mini-QUIC: the paper's Section 5 sublayering, running.

Stream > connection > record > DM.  The demo fetches three "resources"
on three independent streams over a lossy link, shows that everything
on the wire is sealed ciphertext, and that a loss stalls only the
stream it hit (no head-of-line blocking across streams).

Run:  python examples/quic_streams.py
"""

import random

from repro.sim import DuplexLink, LinkConfig, Simulator
from repro.transport.quic import QuicHost

RESOURCES = {
    1: b"<html>the index page</html>" * 40,
    2: b"body { color: teal }" * 60,
    3: b"\x89PNG fake image bytes" * 80,
}


def main() -> None:
    sim = Simulator()
    client = QuicHost("client", sim.clock())
    server = QuicHost("server", sim.clock())
    link = DuplexLink(
        sim,
        LinkConfig(delay=0.025, rate_bps=4_000_000, loss=0.08),
        rng_forward=random.Random(5),
        rng_reverse=random.Random(6),
    )
    link.attach(client, server)

    # watch the wire for plaintext leaks
    leaks = []
    forward = client.on_transmit

    def tap(unit, **meta):
        record = unit.find("record")
        if record is not None:
            sealed = bytes(record.payload())
            if any(body[:16] in sealed for body in RESOURCES.values()):
                leaks.append(unit)
        forward(unit, **meta)

    client.on_transmit = tap

    server.listen(443)

    def accept(conn):
        def on_data(stream_id, _chunk):
            # serve the request on the same stream
            if conn.stream_bytes(stream_id) == b"GET":
                conn.send(stream_id, RESOURCES[stream_id], fin=True)

        conn.on_stream_data = on_data

    server.on_accept = accept

    done_at = {}
    conn = client.connect(40000, 443)
    conn.on_stream_fin = lambda sid: done_at.setdefault(sid, sim.now)
    conn.on_connect = lambda: [
        conn.send(sid, b"GET", fin=False) for sid in RESOURCES
    ]
    sim.run(until=60)

    print("fetched over three independent streams (8% loss link):")
    for sid, body in RESOURCES.items():
        got = conn.stream_bytes(sid)
        print(f"  stream {sid}: {len(got):>5} bytes "
              f"({'intact' if got == body else 'CORRUPT'}), "
              f"finished at t={done_at.get(sid, float('nan')):.3f}s")
    stats = client.stack.sublayer("connection").state.snapshot()
    print(f"\nloss recovery: {stats['packets_declared_lost']} packets "
          f"declared lost, {stats['frames_retransmitted']} frames "
          f"retransmitted (in new packets, QUIC-style)")
    record = server.stack.sublayer("record").state.snapshot()
    print(f"record sublayer: {record['opened']} packets opened, "
          f"{record['auth_failures']} auth failures")
    print(f"plaintext leaks on the wire: {len(leaks)} "
          f"(the record sublayer seals everything above it)")


if __name__ == "__main__":
    main()
