#!/usr/bin/env python3
"""Quickstart: a sublayered TCP transfer over a hostile link.

Builds two endpoints running the paper's Fig 5 stack (OSR > RD > CM >
DM), joins them with a simulated link that loses, duplicates, and
reorders packets, transfers a payload, and then runs the paper's three
sublayering litmus tests (T1/T2/T3) over the instrumented execution.

Run:  python examples/quickstart.py

Pass ``--trace spans.jsonl`` to record a span for every sublayer
crossing; convert the result with ``python -m repro.obs convert``.
"""

import argparse
import random

from repro.core.litmus import WireTap, run_litmus
from repro.obs import MetricsRegistry, SpanTracer, summarize
from repro.sim import DuplexLink, LinkConfig, Simulator
from repro.transport import SublayeredTcpHost, TcpConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write per-crossing spans to FILE as JSON lines",
    )
    # tolerate foreign argv: the test suite executes this script via
    # runpy under pytest's own command line
    args, _unknown = parser.parse_known_args()
    return args


def main() -> None:
    args = parse_args()
    sim = Simulator()
    config = TcpConfig(mss=1000)

    metrics = MetricsRegistry()
    client = SublayeredTcpHost("client", sim.clock(), config, metrics=metrics)
    server = SublayeredTcpHost("server", sim.clock(), config, metrics=metrics)

    tracer = None
    if args.trace is not None:
        tracer = SpanTracer()
        tracer.attach(client.stack)
        tracer.attach(server.stack)

    link = DuplexLink(
        sim,
        LinkConfig(
            delay=0.02,            # 20 ms one way
            rate_bps=8_000_000,    # 8 Mbit/s
            loss=0.10,             # every tenth packet vanishes
            duplicate=0.05,
            reorder_jitter=0.01,
        ),
        rng_forward=random.Random(1),
        rng_reverse=random.Random(2),
    )
    link.attach(client, server)
    wire = WireTap(client.stack, server.stack)

    server.listen(80)
    payload = bytes(i % 251 for i in range(100_000))
    sock = client.connect(12345, 80)
    sock.on_connect = lambda: (sock.send(payload), sock.close())

    sim.run(until=120)

    peer = server.socket_for(80, 12345)
    received = peer.bytes_received()
    print(f"sent     : {len(payload):>7} bytes")
    print(f"received : {len(received):>7} bytes "
          f"({'intact' if received == payload else 'CORRUPTED'})")
    print(f"virtual time: {sim.now:.1f} s, events: {sim.events_processed}")

    rd = client.stack.sublayer("rd").state.snapshot()
    print(f"RD sent {rd['segments_sent']} segments, "
          f"retransmitted {rd['retransmitted']} "
          f"(the link really was hostile)")

    print("\nLitmus tests over the instrumented run:")
    report = run_litmus(client.stack, server.stack, wire)
    print(report.summary())

    if tracer is not None:
        count = tracer.write_jsonl(args.trace)
        print(f"\nwrote {count} spans to {args.trace} "
              f"({tracer.dropped_spans} dropped)")
        print(summarize(tracer.spans(), dropped=tracer.dropped_spans))
        print("counters seen by the metrics registry: "
              f"{len(metrics.counters)} "
              f"(e.g. tcp:client/rd/retransmitted = "
              f"{metrics.counter('tcp:client/rd/retransmitted')})")


if __name__ == "__main__":
    main()
