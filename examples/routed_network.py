#!/usr/bin/env python3
"""The network-layer sublayers of Figs 3/4: neighbor determination,
route computation, forwarding — with the routing algorithm swapped
live between runs and a link failure healed by reconvergence.

Run:  python examples/routed_network.py
"""

from repro.network import DistanceVector, LinkState, Topology
from repro.sim import Simulator

#          1 --- 2 --- 5
#          |     |     |
#          4 --- 3 --- 6
EDGES = [(1, 2), (2, 5), (5, 6), (6, 3), (3, 2), (3, 4), (4, 1)]


def run(routing_cls) -> None:
    print(f"--- route computation: {routing_cls.name} ---")
    sim = Simulator()
    topo = Topology.build(sim, EDGES, routing_cls=routing_cls)
    topo.start()
    when = topo.converge(timeout=60)
    print(f"converged at t={when:.2f}s "
          f"(all FIBs match the shortest-path oracle)")

    topo.send_data(1, 6, b"across the mesh")
    sim.run(until=sim.now + 1)
    print(f"1 -> 6 delivered: {topo.delivered[-1].payload!r} "
          f"via FIB next-hop {topo.routers[1].forwarding.fib()[6]}")

    print("failing link 2-5 ...")
    topo.fail_link(2, 5)
    before = sim.now
    when = topo.converge(timeout=120)
    print(f"reconverged {when - before:.2f}s after the failure "
          f"(hello dead-interval + recomputation)")
    topo.send_data(1, 5, b"rerouted")
    sim.run(until=sim.now + 1)
    print(f"1 -> 5 now travels via next-hop "
          f"{topo.routers[1].forwarding.fib()[5]} "
          f"(delivered: {topo.delivered[-1].payload!r})")

    control = topo.routers[1].routing.state.snapshot()["updates_received"]
    print(f"router 1 consumed {control} {routing_cls.CONTROL_KINDS[0]} "
          f"control packets; its forwarding sublayer never saw one (T3)\n")


def main() -> None:
    run(LinkState)
    run(DistanceVector)
    print("the forwarding sublayer code was identical in both runs —")
    print("route computation swapped without touching it (Fig 3's claim).")


if __name__ == "__main__":
    main()
