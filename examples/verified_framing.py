#!/usr/bin/env python3
"""Verified bit stuffing (the paper's Section 4.1 experiment).

1. Proves the per-sublayer lemma library for the HDLC rule — the
   Python analogue of the paper's 57-lemma Coq proof, with the same
   modular structure (stuffing lemmas, flag lemmas, interface lemmas).
2. Shows bug localization: a deliberately broken rule fails exactly
   the stuffing/flags *interface* lemma, with a machine-found
   counterexample, while both sublayers' local lemmas keep holding.
3. Searches the rule space for valid alternatives (the paper found 66)
   and ranks them by exact overhead — then actually *uses* the
   discovered low-overhead rule in a running HDLC-style data link over
   a noisy channel.

Run:  python examples/verified_framing.py
"""

from repro.core.bits import Bits
from repro.datalink import collect_bytes, connect_hdlc_pair, send_bytes
from repro.datalink.framing import (
    HDLC_RULE,
    LOW_OVERHEAD_RULE,
    StuffingRule,
    build_framing_library,
    exact_overhead,
    find_valid_rules,
    prefix_rule_space,
)
from repro.sim import LinkConfig, Simulator


def prove_hdlc() -> None:
    print("=== 1. proving the framing lemma library for HDLC ===")
    library = build_framing_library(HDLC_RULE, max_len=9)
    report = library.prove_all()
    print(report.summary())
    modularity = library.modularity_report()
    print(f"\nmodularity: {modularity['per_sublayer']} — "
          f"{modularity['modular_fraction']:.0%} of lemmas are local to "
          f"one sublayer (the paper's lesson 1)\n")


def localize_broken_rule() -> None:
    print("=== 2. bug localization on an invalid rule ===")
    bad = StuffingRule(
        flag=Bits.from_string("01111110"),
        trigger=Bits.from_string("1111110"),
        stuff_bit=1,
    )
    print(f"rule under test: {bad.label()}")
    library = build_framing_library(bad, max_len=8, include_stream=False)
    report = library.prove_all()
    for result in report.results:
        status = "proved" if result.proved else "FAILED"
        print(f"  {result.lemma:<32} {status}")
        if not result.proved and result.counterexample:
            (data,) = result.counterexample
            print(f"      counterexample: D = {data.to_string() or 'ε'}")
    print("the failures name the stuffing/flags interface — the bug is in\n"
          "the rule's relationship between the sublayers, not in either\n"
          "sublayer's mechanism\n")


def search_rules() -> StuffingRule:
    print("=== 3. searching for valid stuffing rules ===")
    result = find_valid_rules(prefix_rule_space(flag_bits=8), semantics="stream")
    print(f"candidates: {result.candidates}, valid: {result.valid_count} "
          f"(paper's Coq search found 66)")
    better = result.better_than(HDLC_RULE)
    print(f"rules with lower exact overhead than HDLC (1/62): {len(better)}")
    best, best_cost = result.ranked_by_overhead()[0]
    print(f"best discovered: {best.label()} — overhead "
          f"1/{round(1 / best_cost)} vs paper's 1/128 claim for "
          f"{LOW_OVERHEAD_RULE.label()}")
    return best


def use_rule(rule: StuffingRule) -> None:
    print(f"\n=== 4. running a data link with the discovered rule ===")
    sim = Simulator()
    a, b, _ = connect_hdlc_pair(
        sim,
        LinkConfig(delay=0.01, bit_error_rate=0.001, loss=0.05),
        rule=rule,
        retransmit_timeout=0.1,
    )
    received = collect_bytes(b)
    frames = [f"frame number {i}".encode() for i in range(20)]
    for frame in frames:
        send_bytes(a, frame)
    sim.run(until=60)
    ok = received == frames
    errors = b.sublayer("errordetect").state.snapshot()["detected_errors"]
    print(f"delivered {len(received)}/{len(frames)} frames "
          f"({'in order, intact' if ok else 'MISMATCH'}); "
          f"CRC caught {errors} corrupted frames on the way")


def main() -> None:
    prove_hdlc()
    localize_broken_rule()
    best = search_rules()
    use_rule(best)


if __name__ == "__main__":
    main()
