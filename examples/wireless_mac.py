#!/usr/bin/env python3
"""The broadcast branch of Fig 2: MAC replaces error recovery.

Four stations share one medium; each MAC scheme (pure ALOHA vs
1-persistent CSMA) arbitrates the same offered load.  Collisions are
physical events on the shared channel; carrier sensing visibly reduces
them.  Everything below the MAC — error detection, the verified
bit-stuffing framing, line coding — is byte-for-byte the same stack as
the wired HDLC example: only the top sublayer changed.

Run:  python examples/wireless_mac.py
"""

import random

from repro.datalink import build_wireless_station, collect_bytes, send_bytes
from repro.sim import BroadcastMedium, Simulator


def run(mac: str, stations: int = 4, frames_each: int = 5) -> None:
    sim = Simulator()
    medium = BroadcastMedium(sim, rate_bps=200_000.0)
    stacks = [
        build_wireless_station(
            sim, medium, address=i, mac=mac, rng=random.Random(100 + i)
        )
        for i in range(stations)
    ]
    inboxes = [collect_bytes(stack) for stack in stacks]

    # everyone talks at once: worst-case contention
    for i, stack in enumerate(stacks):
        for k in range(frames_each):
            send_bytes(stack, f"station-{i} frame-{k}".encode())
    sim.run(until=300)

    expected_per_station = (stations - 1) * frames_each
    received = [len(set(inbox)) for inbox in inboxes]
    print(f"--- {mac} ---")
    print(f"  transmissions: {medium.stats.transmissions}, "
          f"collisions: {medium.stats.collisions}")
    print(f"  frames heard per station: {received} "
          f"(expected {expected_per_station} each)")
    complete = all(r == expected_per_station for r in received)
    print(f"  everyone eventually heard everything: {complete}")


def main() -> None:
    run("aloha")
    run("csma")
    print("\ncarrier sensing (CSMA) resolves the same load with fewer")
    print("collisions — a MAC-sublayer-local improvement.")


if __name__ == "__main__":
    main()
