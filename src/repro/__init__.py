"""repro — a reproduction of "If Layering is useful, why not Sublayering?"

(Singha et al., HotNets 2024.)

The library implements the paper's *sublayering* proposal end to end:

* :mod:`repro.core` — the sublayering framework: sublayers, stacks,
  bit-owned headers, narrow interfaces, contracts, and the automated
  T1/T2/T3 litmus tests;
* :mod:`repro.sim` — a discrete-event network simulator substrate;
* :mod:`repro.phys` — physical-layer encodings;
* :mod:`repro.datalink` — the four data-link sublayers of Fig 2,
  including the verified bit-stuffing framing of Section 4.1;
* :mod:`repro.network` — the network-layer sublayers of Figs 3/4;
* :mod:`repro.transport` — the sublayered TCP of Fig 5 plus an
  lwIP-style monolithic TCP baseline and an interop shim;
* :mod:`repro.verify` — lemma framework, explicit-state model checker,
  and ownership/interference analysis (the Coq/Dafny substitute);
* :mod:`repro.analysis` — entanglement metrics, offload cost model,
  and the Fig 6 header-isomorphism checker.
"""

__version__ = "0.1.0"

from . import core

__all__ = ["core", "__version__"]
