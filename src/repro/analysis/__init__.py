"""Analyses over instrumented runs: entanglement (A1), hardware-offload
partitions (C6), and the Fig 6 header isomorphism (F6)."""

from .entanglement import (
    ActorFootprint,
    coupling_matrix,
    entanglement_rows,
    entanglement_score,
    footprints,
)
from .headers import (
    ISOMORPHISM_TABLE,
    FieldMapping,
    check_data_segment_roundtrip,
    isomorphism_report,
    native_fields_covered,
    rfc793_fields_covered,
    roundtrip_native,
)
from .offload import (
    MONOLITHIC_PARTITIONS,
    SUBLAYER_PARTITIONS,
    OffloadReport,
    Partition,
    evaluate_partition,
    evaluate_partitions,
)

__all__ = [
    "ActorFootprint",
    "FieldMapping",
    "ISOMORPHISM_TABLE",
    "MONOLITHIC_PARTITIONS",
    "OffloadReport",
    "Partition",
    "SUBLAYER_PARTITIONS",
    "check_data_segment_roundtrip",
    "coupling_matrix",
    "entanglement_rows",
    "entanglement_score",
    "evaluate_partition",
    "evaluate_partitions",
    "footprints",
    "isomorphism_report",
    "native_fields_covered",
    "rfc793_fields_covered",
    "roundtrip_native",
]
