"""Entanglement metrics — quantifying Section 2.3's diagnosis.

"Transports like TCP or QUIC have natural subfunctions ... [but] the
state maintained by the transport layer is shared by all of these
subfunctions, which leads to non-modular code that is challenging to
reason about."

Building on :mod:`repro.verify.ownership`, this module produces the A1
benchmark's tables: per-subfunction state footprints, the pairwise
coupling matrix (how much state two subfunctions share), and a single
entanglement score for comparing the monolithic PCB against the
sublayered stacks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instrument import AccessLog


@dataclass
class ActorFootprint:
    """One subfunction's view of the state."""

    actor: str
    reads: set[tuple[str, str]]
    writes: set[tuple[str, str]]

    @property
    def touched(self) -> set[tuple[str, str]]:
        return self.reads | self.writes


def footprints(
    log: AccessLog, targets: set[str] | None = None
) -> dict[str, ActorFootprint]:
    """Per-actor read/write field sets."""
    out: dict[str, ActorFootprint] = {}
    for record in log.records:
        if record.actor is None:
            continue
        if targets is not None and record.target not in targets:
            continue
        footprint = out.setdefault(
            record.actor, ActorFootprint(record.actor, set(), set())
        )
        key = (record.target, record.field)
        if record.kind == "read":
            footprint.reads.add(key)
        else:
            footprint.writes.add(key)
    return out


def coupling_matrix(
    log: AccessLog, targets: set[str] | None = None
) -> dict[tuple[str, str], int]:
    """For each actor pair: how many state fields both touch.

    A nonzero entry is a reasoning dependency — to verify one actor you
    must consider the other's writes.  The paper's O(N^2) worry is this
    matrix filling in.
    """
    prints = footprints(log, targets)
    actors = sorted(prints)
    matrix: dict[tuple[str, str], int] = {}
    for i, a in enumerate(actors):
        for b in actors[i + 1 :]:
            overlap = prints[a].touched & prints[b].touched
            matrix[(a, b)] = len(overlap)
    return matrix


def entanglement_score(
    log: AccessLog, targets: set[str] | None = None
) -> float:
    """Mean pairwise Jaccard overlap of actor state footprints.

    0.0 = perfectly disjoint (sublayered ideal); 1.0 = everyone touches
    everything (one big PCB).
    """
    prints = footprints(log, targets)
    actors = sorted(prints)
    if len(actors) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i, a in enumerate(actors):
        for b in actors[i + 1 :]:
            union = prints[a].touched | prints[b].touched
            if union:
                total += len(prints[a].touched & prints[b].touched) / len(union)
            pairs += 1
    return total / pairs if pairs else 0.0


def entanglement_rows(
    log: AccessLog, targets: set[str] | None = None
) -> list[dict[str, object]]:
    """The A1 table: one row per subfunction."""
    prints = footprints(log, targets)
    all_touched: dict[tuple[str, str], set[str]] = {}
    for footprint in prints.values():
        for key in footprint.touched:
            all_touched.setdefault(key, set()).add(footprint.actor)
    rows = []
    for actor in sorted(prints):
        footprint = prints[actor]
        shared = {
            key for key in footprint.touched if len(all_touched[key]) > 1
        }
        rows.append({
            "subfunction": actor,
            "fields_read": len(footprint.reads),
            "fields_written": len(footprint.writes),
            "fields_shared_with_others": len(shared),
            "shared_fraction": (
                len(shared) / len(footprint.touched) if footprint.touched else 0.0
            ),
        })
    return rows
