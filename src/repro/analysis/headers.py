"""Header isomorphism — checking the Fig 6 claim (experiment F6).

Section 3.1: "we claim that the two headers are isomorphic.  Our
intent is that all information in the standard TCP header appear in
Figure 6 and vice versa."

Two checks:

* **structural** — an explicit field-correspondence table between the
  native subheaders and RFC 793, with every field of both formats
  classified (mapped, static-after-handshake, constant, or
  simulator-unused), so "all information appears" is audited rather
  than asserted;
* **behavioural** — round-tripping through the actual shim: a native
  data segment encoded to RFC 793 and decoded back must preserve every
  semantic field, and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pdu import Pdu, unwrap
from ..transport.rfc793 import TCP_HEADER, TcpSegment
from ..transport.sublayered.headers import (
    CM_HEADER,
    CM_NONE,
    DM_HEADER,
    OSR_HEADER,
    RD_HEADER,
)
from ..transport.sublayered.shim import Rfc793Shim


@dataclass(frozen=True)
class FieldMapping:
    """One row of the isomorphism table."""

    native: str          # "dm.sport", "rd.seq", ...
    rfc793: str | None   # the TCP header field, or None
    relation: str        # "identity", "derived", "static", "constant", "unused"
    note: str = ""


#: The audited correspondence (see module docstring).
ISOMORPHISM_TABLE: list[FieldMapping] = [
    FieldMapping("dm.sport", "sport", "identity"),
    FieldMapping("dm.dport", "dport", "identity"),
    FieldMapping("cm.kind", "syn/fin/ack_flag", "derived",
                 "handshake kinds map to TCP flag combinations"),
    FieldMapping("cm.isn", "seq", "derived",
                 "the SYN's seq field; static echo afterwards (the "
                 "redundancy Section 3.1 concedes)"),
    FieldMapping("cm.ack_isn", "ack", "derived",
                 "the SYNACK/handshake-ack's ack field minus one"),
    FieldMapping("cm.offset", "seq", "derived",
                 "FIN position: TCP encodes it as the FIN's seq"),
    FieldMapping("cm.pad", None, "constant", "padding"),
    FieldMapping("rd.seq", "seq", "identity",
                 "same numbering: isn + 1 + byte offset"),
    FieldMapping("rd.ack", "ack", "identity"),
    FieldMapping("rd.has_data", "psh", "derived",
                 "TCP marks data segments with PSH / nonzero length"),
    FieldMapping("rd.is_ack", "ack_flag", "identity"),
    FieldMapping("rd.sack_left", None, "unused",
                 "SACK would map to the TCP SACK option (options not "
                 "modelled in the 20-byte header)"),
    FieldMapping("rd.sack_right", None, "unused", "as sack_left"),
    FieldMapping("rd.pad", None, "constant", "padding"),
    FieldMapping("osr.wnd", "window", "identity"),
    FieldMapping("osr.ecn", "ece/cwr", "derived", "two ECN bits"),
    FieldMapping("osr.ctl", None, "derived",
                 "window-update/probe distinction; TCP infers it from "
                 "zero-length + window"),
    FieldMapping("osr.pad", None, "constant", "padding"),
    # RFC 793 fields with no native counterpart:
    FieldMapping("(none)", "data_offset", "constant", "always 5 (no options)"),
    FieldMapping("(none)", "reserved", "constant"),
    FieldMapping("(none)", "urg", "unused", "urgent data not modelled"),
    FieldMapping("(none)", "urgent", "unused", "urgent pointer"),
    FieldMapping("(none)", "rst", "unused", "resets not modelled"),
    FieldMapping("(none)", "checksum", "constant",
                 "error detection is the data link's sublayer here"),
]


def native_fields_covered() -> dict[str, bool]:
    """Every native field name -> appears in the table?"""
    names = []
    for fmt in (DM_HEADER, CM_HEADER, RD_HEADER, OSR_HEADER):
        names.extend(f"{fmt.name}.{field.name}" for field in fmt.fields)
    table_natives = {m.native for m in ISOMORPHISM_TABLE}
    return {name: name in table_natives for name in names}


def rfc793_fields_covered() -> dict[str, bool]:
    """Every RFC 793 field name -> appears in the table?"""
    mapped: set[str] = set()
    for m in ISOMORPHISM_TABLE:
        if m.rfc793 is None:
            continue
        for part in m.rfc793.split("/"):
            mapped.add(part)
    return {name: name in mapped for name in TCP_HEADER.field_names()}


# ----------------------------------------------------------------------
# Behavioural check via the shim
# ----------------------------------------------------------------------
def _native_data_segment(
    sport: int, dport: int, isn: int, ack_isn: int,
    seq: int, ack: int, wnd: int, payload: bytes,
) -> Pdu:
    osr = Pdu("osr", OSR_HEADER, {"wnd": wnd, "ecn": 0, "ctl": 0}, payload)
    rd = Pdu("rd", RD_HEADER, {
        "seq": seq, "ack": ack, "has_data": 1, "is_ack": 1,
    }, osr)
    cm = Pdu("cm", CM_HEADER, {
        "kind": CM_NONE, "isn": isn, "ack_isn": ack_isn, "offset": 0,
    }, rd)
    return Pdu("dm", DM_HEADER, {"sport": sport, "dport": dport}, cm)


def roundtrip_native(pdu: Pdu) -> tuple[TcpSegment, Pdu]:
    """native -> RFC 793 -> native, via two independent shim instances
    (sender's and receiver's), returning both intermediate values.

    The receiver shim is seeded with the connection's ISNs, standing in
    for the handshake it would normally have translated.
    """
    from ..core.stack import Stack

    sender = Stack("iso-tx", [Rfc793Shim("shim")])
    receiver = Stack("iso-rx", [Rfc793Shim("shim")])
    dm_values, cm_inner = unwrap(pdu, "dm")
    cm_values, _rest = unwrap(cm_inner, "cm")
    receiver.sublayer("shim").seed_connection(
        (dm_values["dport"], dm_values["sport"]),
        local_isn=cm_values["ack_isn"],
        remote_isn=cm_values["isn"],
    )
    segments: list[TcpSegment] = []
    natives: list[Pdu] = []
    sender.on_transmit = lambda unit, **m: segments.append(unit)
    receiver.on_deliver = lambda unit, **m: natives.append(unit)
    sender.send(pdu)
    assert segments, "shim produced no segment"
    receiver.receive(segments[0])
    data_units = [
        n for n in natives
        if n.find("rd") is not None
    ]
    assert data_units, "shim reproduced no RD unit"
    return segments[0], data_units[-1]


def check_data_segment_roundtrip(
    sport: int = 1000, dport: int = 80, isn: int = 5000, ack_isn: int = 900,
    offset: int = 3000, ack: int = 72, wnd: int = 4321,
    payload: bytes = b"isomorph",
) -> dict[str, bool]:
    """Field-by-field comparison after a native->793->native round trip."""
    seq = isn + 1 + offset
    rd_ack = ack_isn + 1 + ack
    native = _native_data_segment(
        sport, dport, isn, ack_isn, seq, rd_ack, wnd, payload
    )
    segment, back = roundtrip_native(native)

    dm_out, inner = unwrap(back, "dm")
    cm_out, inner2 = unwrap(inner, "cm")
    rd_out, inner3 = unwrap(inner2, "rd")
    osr_out, payload_out = unwrap(inner3, "osr")

    return {
        "ports": (dm_out["sport"], dm_out["dport"]) == (sport, dport),
        "seq": rd_out["seq"] == seq,
        "ack": rd_out["ack"] == rd_ack,
        "window": osr_out["wnd"] == wnd,
        "payload": bytes(payload_out) == payload,
        "wire_seq_matches": segment.seq == seq,
        "wire_window_matches": segment.window == wnd,
    }


def isomorphism_report() -> dict[str, object]:
    """The F6 benchmark's aggregate: structural + behavioural."""
    native_cover = native_fields_covered()
    rfc_cover = rfc793_fields_covered()
    behaviour = check_data_segment_roundtrip()
    return {
        "native_fields": len(native_cover),
        "native_fields_audited": sum(native_cover.values()),
        "rfc793_fields": len(rfc_cover),
        "rfc793_fields_audited": sum(rfc_cover.values()),
        "behavioural_roundtrip": all(behaviour.values()),
        "behaviour_detail": behaviour,
        "table_rows": len(ISOMORPHISM_TABLE),
    }
