"""Hardware-offload cost model — experiment C6.

Section 3.1: "Figure 5 offers a principled way to offload parts of TCP
processing to hardware.  For example, OSR, which appears complex and
likely to evolve, is best relegated to software.  A simple
decomposition places RD, CM, and DM in hardware; with more finagling
and a modest duplication of state, only RD can be placed in hardware."
Section 6 contrasts this with functional-modularity offloads
(AccelTCP moves connection management to the NIC; TAS splits a fast
path from a slow path).

The model (DESIGN.md §1 substitution for an FPGA): given an executed,
instrumented run, a *partition* assigns each component (sublayer or
monolithic subfunction) to hardware or software, and costs out:

* **boundary crossings** — consecutive state accesses by components on
  opposite sides (each is a PCIe-round-trip-shaped event);
* **duplicated state** — fields touched from both sides, which an
  implementation must mirror and keep coherent (the paper's "modest
  duplication of state", measured);
* **software touches** — accesses remaining on the slow side.

Who wins is a property of where the decomposition's seams fall, which
is exactly what the sublayering argument is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.instrument import AccessLog


@dataclass(frozen=True)
class Partition:
    """A hardware/software assignment of components."""

    name: str
    hardware: frozenset[str]
    description: str = ""

    @classmethod
    def of(cls, name: str, hardware: set[str], description: str = "") -> "Partition":
        return cls(name, frozenset(hardware), description)

    def side(self, component: str) -> str:
        return "hw" if component in self.hardware else "sw"


#: The paper's sublayer cuts (Fig 5 components).
SUBLAYER_PARTITIONS = [
    Partition.of(
        "all-software", set(),
        "baseline: nothing offloaded",
    ),
    Partition.of(
        "rd-cm-dm-in-hw", {"rd", "cm", "dm"},
        'the paper\'s "simple decomposition": OSR stays in software',
    ),
    Partition.of(
        "rd-only-in-hw", {"rd"},
        'the paper\'s "more finagling" cut: only reliable delivery offloads',
    ),
    Partition.of(
        "dm-only-in-hw", {"dm"},
        "demux offload (RSS-style)",
    ),
]

#: Functional-modularity cuts over the monolithic subfunctions.
MONOLITHIC_PARTITIONS = [
    Partition.of(
        "all-software", set(),
        "baseline: nothing offloaded",
    ),
    Partition.of(
        "accel-tcp-style", {"cm", "demux"},
        "AccelTCP: connection management (and demux) on the NIC",
    ),
    Partition.of(
        "fast-path-style", {"demux", "rd", "cc", "flow"},
        "TAS: the established-connection fast path in hardware, "
        "connection management in software",
    ),
    Partition.of(
        "rd-subfunction-in-hw", {"rd", "demux"},
        "reliable delivery alone — the nearest analogue of the "
        "sublayered rd-only cut, to expose the state it drags along",
    ),
]


@dataclass
class OffloadReport:
    """The cost of one partition over one execution."""

    partition: Partition
    boundary_crossings: int
    duplicated_fields: list[tuple[str, str]]
    hw_touches: int
    sw_touches: int

    @property
    def duplicated_state(self) -> int:
        return len(self.duplicated_fields)

    @property
    def offload_fraction(self) -> float:
        total = self.hw_touches + self.sw_touches
        return self.hw_touches / total if total else 0.0

    def row(self) -> dict[str, object]:
        return {
            "partition": self.partition.name,
            "crossings": self.boundary_crossings,
            "duplicated_state_fields": self.duplicated_state,
            "offload_fraction": round(self.offload_fraction, 3),
        }


def evaluate_partition(
    log: AccessLog,
    partition: Partition,
    targets: set[str] | None = None,
) -> OffloadReport:
    """Cost a partition against an instrumented run's access log."""
    records = [
        r
        for r in log.records
        if r.actor is not None and (targets is None or r.target in targets)
    ]
    crossings = 0
    previous_side: str | None = None
    touched_by_side: dict[tuple[str, str], set[str]] = {}
    hw_touches = 0
    sw_touches = 0
    for r in records:
        side = partition.side(r.actor)
        if previous_side is not None and side != previous_side:
            crossings += 1
        previous_side = side
        touched_by_side.setdefault((r.target, r.field), set()).add(side)
        if side == "hw":
            hw_touches += 1
        else:
            sw_touches += 1
    duplicated = sorted(
        key for key, sides in touched_by_side.items() if len(sides) == 2
    )
    return OffloadReport(
        partition=partition,
        boundary_crossings=crossings,
        duplicated_fields=duplicated,
        hw_touches=hw_touches,
        sw_touches=sw_touches,
    )


def evaluate_partitions(
    log: AccessLog,
    partitions: list[Partition],
    targets: set[str] | None = None,
) -> list[OffloadReport]:
    return [evaluate_partition(log, p, targets) for p in partitions]
