"""Declarative stack construction: profiles, slots, and one builder.

Before this package existed the repository wired stacks by hand in
three places — the data-link assemblies, the sublayered TCP host, and
the mini-QUIC host — each with its own conventions for threading the
clock, logs, and metrics, and each duplicating the fungibility-swap
plumbing the paper's challenge 5 is about.  A
:class:`~repro.compose.builder.StackProfile` declares the sublayer
order once (as named *slots*, each a factory from shared parameters to
a sublayer); :class:`~repro.compose.builder.StackBuilder` instantiates
a profile with uniform observability threading (clock, access/interface
logs, metrics, instrumentation tier) and expresses swaps as
``with_replacement(slot, ...)`` instead of copy-pasted wiring.

Built stacks are validated against the static layer-order config
(:mod:`repro.staticcheck.config`): a profile that stacks a lower-tier
sublayer above a higher-tier one fails at build time, which is the T1
discipline applied to composition rather than to imports.
"""

from .backends import (
    Backend,
    TransferResult,
    TransferSpec,
    available_backends,
    get_backend,
    register_backend,
    run_transfer,
)
from .builder import (
    SlotSpec,
    StackBuilder,
    StackProfile,
    available_profiles,
    get_profile,
    register_profile,
    validate_layer_order,
)
from . import profiles  # noqa: F401  (registers the built-in profiles)

__all__ = [
    "Backend",
    "SlotSpec",
    "StackBuilder",
    "StackProfile",
    "TransferResult",
    "TransferSpec",
    "available_backends",
    "available_profiles",
    "get_backend",
    "get_profile",
    "register_backend",
    "register_profile",
    "run_transfer",
    "validate_layer_order",
]
