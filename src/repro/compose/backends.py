"""Runtime backend selection: the same stack, two host environments.

A *profile* declares what a stack is; a *backend* declares where it
runs.  The repository has exactly two: the deterministic discrete-event
simulator (``"sim"``, the twin every experiment is reproducible on)
and the live asyncio/UDP runtime (``"net"``, :mod:`repro.net`).  A
:class:`TransferSpec` describes one scenario — which profile, how many
payload bytes, which ports, how long it may take — independently of
the runtime, and :func:`run_transfer` executes it on whichever backend
is named, returning a :class:`TransferResult` with identical structure
either way.  The parity tests (``tests/net/test_scenario_twin.py``)
hold the two backends to matching delivery semantics: same payload in,
same bytes delivered, losslessly.

Backends self-register: ``"sim"`` is built in (the simulator sits at
the same tier as ``compose``), while ``"net"`` lives above this tier
and registers itself when :mod:`repro.net` is imported —
:func:`get_backend` lazily imports it by module name on first use, the
standard plugin seam that keeps the layer order acyclic.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class TransferSpec:
    """One runtime-agnostic transfer scenario: client sends, server gets.

    ``link_delay``/``link_rate_bps`` only shape the simulated wire (a
    real localhost socket has whatever latency the kernel gives it);
    ``time_limit`` bounds both runtimes — virtual seconds on ``sim``,
    wall seconds on ``net``.
    """

    profile: str = "tcp"
    payload_bytes: int = 30_000
    mss: int = 1000
    lport: int = 12345
    rport: int = 80
    link_delay: float = 0.005
    link_rate_bps: float = 8_000_000
    time_limit: float = 60.0


@dataclass(frozen=True)
class TransferResult:
    """What a backend reports back from one :class:`TransferSpec` run."""

    backend: str
    sent: bytes
    received: bytes
    duration_s: float
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the server received exactly what the client sent."""
        return self.received == self.sent

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary (byte payloads reduced to counts)."""
        return {
            "backend": self.backend,
            "ok": self.ok,
            "bytes_sent": len(self.sent),
            "bytes_received": len(self.received),
            "duration_s": self.duration_s,
            "details": self.details,
        }


@dataclass(frozen=True)
class Backend:
    """One registered runtime: a name, a blurb, and a transfer runner."""

    name: str
    description: str
    run_transfer: Callable[[TransferSpec], TransferResult]


_BACKENDS: dict[str, Backend] = {}

#: Backends that live above the compose tier register themselves on
#: import; this maps their names to the module that does so.
_LAZY_BACKENDS: dict[str, str] = {"net": "repro.net"}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Add a runtime backend to the registry (``replace=True`` overwrites)."""
    if backend.name in _BACKENDS and not replace:
        raise ConfigurationError(
            f"backend {backend.name!r} already registered "
            "(pass replace=True to overwrite)"
        )
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a backend, lazily importing self-registering ones."""
    if name not in _BACKENDS and name in _LAZY_BACKENDS:
        importlib.import_module(_LAZY_BACKENDS[name])
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown runtime backend {name!r}; "
            f"available: {available_backends()}"
        ) from None


def available_backends() -> list[str]:
    """Names of every known backend (registered or lazily importable)."""
    return sorted(set(_BACKENDS) | set(_LAZY_BACKENDS))


def run_transfer(spec: TransferSpec, backend: str = "sim") -> TransferResult:
    """Run one scenario spec on the named backend."""
    return get_backend(backend).run_transfer(spec)


# ----------------------------------------------------------------------
# The built-in deterministic backend
# ----------------------------------------------------------------------
def _run_sim_transfer(spec: TransferSpec) -> TransferResult:
    """The deterministic twin: the spec on a Simulator + DuplexLink."""
    # Deferred imports: the TCP host imports ``repro.compose`` back up
    # (an allowlisted construction-site exception), so importing it at
    # module level here would close an import cycle.
    from ..sim import DuplexLink, LinkConfig, Simulator
    from ..transport.config import TcpConfig
    from ..transport.sublayered.host import SublayeredTcpHost

    if spec.profile != "tcp":
        raise ConfigurationError(
            f"the transfer scenario runs the 'tcp' profile; "
            f"got {spec.profile!r}"
        )
    sim = Simulator()
    config = TcpConfig(mss=spec.mss)
    client = SublayeredTcpHost("client", sim.clock(), config)
    server = SublayeredTcpHost("server", sim.clock(), config)
    link = DuplexLink(
        sim,
        LinkConfig(delay=spec.link_delay, rate_bps=spec.link_rate_bps),
    )
    link.attach(client, server)

    server.listen(spec.rport)
    payload = bytes(i % 251 for i in range(spec.payload_bytes))
    sock = client.connect(spec.lport, spec.rport)

    def go() -> None:
        sock.send(payload)
        sock.close()

    sock.on_connect = go
    sim.run(until=spec.time_limit)
    peer = server.socket_for(spec.rport, spec.lport)
    received = peer.bytes_received() if peer is not None else b""
    return TransferResult(
        backend="sim",
        sent=payload,
        received=received,
        duration_s=sim.now,
        details={
            "events_processed": sim.events_processed,
            "link": link.forward.stats.as_dict(),
        },
    )


register_backend(
    Backend(
        name="sim",
        description="deterministic discrete-event simulator (virtual time)",
        run_transfer=_run_sim_transfer,
    )
)
