"""The stack builder and profile registry.

A *profile* is a declarative description of one stack shape: an ordered
tuple of :class:`SlotSpec` (top to bottom, the T1 order), each naming a
functional slot ("arq", "errordetect", "framing", ...) and providing a
factory from the profile's parameter dict to the sublayer(s) filling
that slot.  The builder turns a profile into a wired
:class:`~repro.core.stack.Stack`:

* parameters are overridden with :meth:`StackBuilder.with_params`;
* whole slots are swapped with :meth:`StackBuilder.with_replacement` —
  the paper's fungibility operation, expressed once here instead of in
  every benchmark that wants to compare two implementations of a slot;
* clock, access/interface logs, metrics, and the instrumentation tier
  are threaded uniformly into the stack;
* the result is validated against the static layer-order configuration
  before it is returned.

Factories may return a single :class:`~repro.core.sublayer.Sublayer`,
a list of them (a slot realised by a nested decomposition, e.g.
bit-stuffing over flags), or ``None`` (an optional slot left empty,
e.g. the RFC 793 shim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..core.errors import ConfigurationError
from ..core.instrument import AccessLog
from ..core.interface import InterfaceLog
from ..core.stack import Stack
from ..core.sublayer import Sublayer
from ..core.wiring import TIER_FULL, validate_tier
from ..staticcheck.config import StaticCheckConfig

#: What a slot factory (or a replacement factory) may produce.
SlotResult = "Sublayer | list[Sublayer] | tuple[Sublayer, ...] | None"


@dataclass(frozen=True)
class SlotSpec:
    """One named position in a profile's sublayer order."""

    name: str
    build: Callable[[dict[str, Any]], Any]
    doc: str = ""


@dataclass(frozen=True)
class StackProfile:
    """A declarative stack shape: ordered slots plus default parameters."""

    name: str
    slots: tuple[SlotSpec, ...]
    defaults: dict[str, Any] = field(default_factory=dict)
    doc: str = ""

    def __post_init__(self) -> None:
        names = [s.name for s in self.slots]
        if not names:
            raise ConfigurationError(f"profile {self.name!r} declares no slots")
        if len(names) != len(set(names)):
            raise ConfigurationError(
                f"duplicate slot names in profile {self.name!r}: {names}"
            )

    def slot_names(self) -> list[str]:
        """The profile's slot names, top to bottom."""
        return [s.name for s in self.slots]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_PROFILES: dict[str, StackProfile] = {}


def register_profile(profile: StackProfile, replace: bool = False) -> StackProfile:
    """Add a profile to the registry (``replace=True`` to overwrite)."""
    if profile.name in _PROFILES and not replace:
        raise ConfigurationError(
            f"profile {profile.name!r} already registered "
            "(pass replace=True to overwrite)"
        )
    _PROFILES[profile.name] = profile
    return profile


def get_profile(name: str) -> StackProfile:
    """Look up a registered profile by name (ConfigurationError if absent)."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown stack profile {name!r}; "
            f"available: {available_profiles()}"
        ) from None


def available_profiles() -> list[str]:
    """Names of every registered stack profile, sorted."""
    return sorted(_PROFILES)


# ----------------------------------------------------------------------
# Layer-order validation against the static-checker config
# ----------------------------------------------------------------------
def validate_layer_order(
    sublayers: Iterable[Sublayer],
    config: StaticCheckConfig | None = None,
    root: str = "repro",
    context: str = "stack",
) -> None:
    """Check a top→bottom sublayer list against the declared layer order.

    The same tier table that governs imports (T1 as a static property of
    the module graph) governs composition: reading the stack top to
    bottom, each sublayer's implementing package must sit at the same or
    a *lower* tier than the one above it — transport over datalink over
    phys, never the reverse.  Sublayers implemented outside the checked
    root package (test doubles, user extensions) are unconstrained.
    """
    config = config or StaticCheckConfig()
    previous_tier: int | None = None
    previous_name = ""
    for sublayer in sublayers:
        module = type(sublayer).__module__
        if not module.startswith(root + "."):
            continue
        if sublayer.TRANSPARENT:
            # Transparent sublayers (fault injectors) sit outside the
            # layering contract by definition: they may land anywhere
            # in the order without constraining their neighbours.
            continue
        tier = config.tier_of(module, root)
        if previous_tier is not None and tier > previous_tier:
            raise ConfigurationError(
                f"{context}: sublayer {sublayer.name!r} ({module}, tier {tier}) "
                f"may not sit below {previous_name!r} (tier {previous_tier}); "
                "the declared layer order runs top-down"
            )
        previous_tier = tier
        previous_name = sublayer.name


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
class StackBuilder:
    """Instantiate a :class:`StackProfile` as a wired stack."""

    def __init__(
        self,
        profile: StackProfile | str,
        name: str,
        clock: Any | None = None,
        access_log: AccessLog | None = None,
        interface_log: InterfaceLog | None = None,
        metrics: Any | None = None,
        tier: str = TIER_FULL,
        lossy_delivery: bool = False,
        check_config: StaticCheckConfig | None = None,
    ):
        """Prepare a builder for ``profile`` (a name or profile value).

        The keyword arguments are the :class:`~repro.core.stack.Stack`
        construction parameters, passed through at :meth:`build` time.
        """
        self.profile = get_profile(profile) if isinstance(profile, str) else profile
        self.name = name
        self.clock = clock
        self.access_log = access_log
        self.interface_log = interface_log
        self.metrics = metrics
        self.tier = validate_tier(tier)
        self.lossy_delivery = lossy_delivery
        self.check_config = check_config
        self._params: dict[str, Any] = dict(self.profile.defaults)
        self._replacements: dict[str, Any] = {}
        # (slot, where, value, require_transparent) in call order.
        self._insertions: list[tuple[str, str, Any, bool]] = []

    # ------------------------------------------------------------------
    def with_params(self, **params: Any) -> "StackBuilder":
        """Override profile parameters; unknown names are rejected."""
        unknown = set(params) - set(self.profile.defaults)
        if unknown:
            raise ConfigurationError(
                f"profile {self.profile.name!r} has no parameters "
                f"{sorted(unknown)}; known: {sorted(self.profile.defaults)}"
            )
        self._params.update(params)
        return self

    def with_replacement(self, slot: str, replacement: Any) -> "StackBuilder":
        """Swap a slot's implementation — the fungibility operation.

        ``replacement`` is either a ready :class:`Sublayer` (or list of
        them, or ``None`` to leave the slot empty), or a factory called
        with the parameter dict like the profile's own slot factory.
        """
        if slot not in self.profile.slot_names():
            raise ConfigurationError(
                f"profile {self.profile.name!r} has no slot {slot!r}; "
                f"slots: {self.profile.slot_names()}"
            )
        self._replacements[slot] = replacement
        return self

    def with_insertion(
        self, slot: str, extra: Any, where: str = "after"
    ) -> "StackBuilder":
        """Splice an *extra* sublayer next to a slot, replacing nothing.

        Where :meth:`with_replacement` swaps a slot's implementation,
        ``with_insertion`` adds a position: ``extra`` (a ready
        :class:`Sublayer`, a list of them, or a factory over the
        parameter dict) lands immediately ``"before"`` (above) or
        ``"after"`` (below) the named slot.  Repeated insertions at the
        same anchor stack in call order, top to bottom.  The result
        still passes layer-order validation, so an opaque insertion
        (e.g. an ARQ above a MAC) must respect the tier table;
        transparent sublayers may land anywhere.
        """
        if slot not in self.profile.slot_names():
            raise ConfigurationError(
                f"profile {self.profile.name!r} has no slot {slot!r}; "
                f"slots: {self.profile.slot_names()}"
            )
        if where not in ("before", "after"):
            raise ConfigurationError(
                f"insertion position must be 'before' or 'after', got {where!r}"
            )
        self._insertions.append((slot, where, extra, False))
        return self

    def with_fault(
        self, fault: Any, *, before: str | None = None, after: str | None = None
    ) -> "StackBuilder":
        """Insert a fault sublayer — injection as a sublayering operation.

        Sugar over :meth:`with_insertion` that additionally requires the
        inserted sublayer(s) to be :attr:`~Sublayer.TRANSPARENT`, i.e.
        invisible to the control plane and the litmus adjacency checks.
        Pass exactly one of ``before=``/``after=`` naming the anchor
        slot.
        """
        if (before is None) == (after is None):
            raise ConfigurationError(
                "with_fault() takes exactly one of before=/after="
            )
        slot = before if before is not None else after
        where = "before" if before is not None else "after"
        if slot not in self.profile.slot_names():
            raise ConfigurationError(
                f"profile {self.profile.name!r} has no slot {slot!r}; "
                f"slots: {self.profile.slot_names()}"
            )
        self._insertions.append((slot, where, fault, True))
        return self

    def with_tier(self, tier: str) -> "StackBuilder":
        """Select the built stack's instrumentation tier."""
        self.tier = validate_tier(tier)
        return self

    # ------------------------------------------------------------------
    def _realise(self, slot: SlotSpec) -> list[Sublayer]:
        if slot.name in self._replacements:
            replacement = self._replacements[slot.name]
            if replacement is None or isinstance(replacement, (Sublayer, list, tuple)):
                built = replacement
            else:
                built = replacement(self._params)
        else:
            built = slot.build(self._params)
        if built is None:
            return []
        if isinstance(built, Sublayer):
            return [built]
        if isinstance(built, (list, tuple)) and all(
            isinstance(s, Sublayer) for s in built
        ):
            return list(built)
        raise ConfigurationError(
            f"slot {slot.name!r} of profile {self.profile.name!r} produced "
            f"{built!r}; expected a Sublayer, a list of Sublayers, or None"
        )

    def _realise_value(self, value: Any, origin: str) -> list[Sublayer]:
        """Normalise a Sublayer / list / factory to a list of sublayers."""
        if not (value is None or isinstance(value, (Sublayer, list, tuple))):
            value = value(self._params)
        if value is None:
            return []
        if isinstance(value, Sublayer):
            return [value]
        if isinstance(value, (list, tuple)) and all(
            isinstance(s, Sublayer) for s in value
        ):
            return list(value)
        raise ConfigurationError(
            f"{origin} of profile {self.profile.name!r} produced "
            f"{value!r}; expected a Sublayer, a list of Sublayers, or None"
        )

    def _realise_insertions(self, slot: str) -> tuple[list[Sublayer], list[Sublayer]]:
        """Sublayers inserted above / below one slot, in call order."""
        above: list[Sublayer] = []
        below: list[Sublayer] = []
        for anchor, where, value, require_transparent in self._insertions:
            if anchor != slot:
                continue
            built = self._realise_value(value, f"insertion at slot {slot!r}")
            if require_transparent:
                for sublayer in built:
                    if not sublayer.TRANSPARENT:
                        raise ConfigurationError(
                            f"with_fault() requires TRANSPARENT sublayers; "
                            f"{sublayer.name!r} "
                            f"({type(sublayer).__name__}) is opaque — "
                            "use with_insertion() for opaque extras"
                        )
            (above if where == "before" else below).extend(built)
        return above, below

    def build(self) -> Stack:
        """Realise every slot (with replacements/insertions) into a Stack."""
        sublayers: list[Sublayer] = []
        for slot in self.profile.slots:
            above, below = self._realise_insertions(slot.name)
            sublayers.extend(above)
            sublayers.extend(self._realise(slot))
            sublayers.extend(below)
        if not sublayers:
            raise ConfigurationError(
                f"profile {self.profile.name!r} produced an empty stack "
                f"for {self.name!r}"
            )
        validate_layer_order(
            sublayers,
            config=self.check_config,
            context=f"profile {self.profile.name!r} ({self.name!r})",
        )
        return Stack(
            self.name,
            sublayers,
            clock=self.clock,
            access_log=self.access_log,
            interface_log=self.interface_log,
            metrics=self.metrics,
            tier=self.tier,
            lossy_delivery=self.lossy_delivery,
        )

    def __repr__(self) -> str:
        return (
            f"StackBuilder({self.profile.name!r}, name={self.name!r}, "
            f"tier={self.tier!r}, replacements={sorted(self._replacements)}, "
            f"insertions={[(s, w) for s, w, _, _ in self._insertions]})"
        )
