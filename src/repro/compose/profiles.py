"""Built-in stack profiles for the repository's four stack shapes.

Each profile declares, once, the sublayer order its hand-rolled
construction site used to hard-code: the reliable point-to-point data
link ("hdlc"), the broadcast data link ("wireless"), the Fig 5
sublayered TCP ("tcp"), and the Section 5 mini-QUIC ("quic").  The
construction sites (:mod:`repro.datalink.stacks`,
:mod:`repro.transport.sublayered.host`,
:mod:`repro.transport.quic.host`) now instantiate these profiles via
:class:`~repro.compose.builder.StackBuilder`.

Protocol-tier imports happen inside the slot factories, not at module
level: ``compose`` sits above every protocol tier, so the factories may
reach down freely, but the construction sites import ``compose`` back
up, and module-level imports here would close that loop at runtime.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import ConfigurationError
from .builder import SlotSpec, StackProfile, register_profile


# ----------------------------------------------------------------------
# Data link: reliable point-to-point (HDLC-like)
# ----------------------------------------------------------------------
def _hdlc_arq(params: dict[str, Any]) -> Any:
    from ..datalink.arq import ARQ_SCHEMES

    arq = params["arq"]
    if arq not in ARQ_SCHEMES:
        raise ConfigurationError(
            f"unknown ARQ scheme {arq!r}; choose from {sorted(ARQ_SCHEMES)}"
        )
    scheme = ARQ_SCHEMES[arq]
    if arq == "stop-and-wait":
        return scheme("recovery", retransmit_timeout=params["retransmit_timeout"])
    return scheme(
        "recovery",
        retransmit_timeout=params["retransmit_timeout"],
        window=params["window"],
    )


def _errordetect(params: dict[str, Any]) -> Any:
    from ..datalink.errordetect import CrcCode, ErrorDetectSublayer

    return ErrorDetectSublayer("errordetect", params["code"] or CrcCode())


def _framing(params: dict[str, Any]) -> Any:
    from ..datalink.framing.cobs import CobsFramingSublayer
    from ..datalink.framing.rules import HDLC_RULE
    from ..datalink.framing.sublayers import FlagSublayer, StuffingSublayer

    framing = params["framing"]
    rule = params["rule"] or HDLC_RULE
    if framing == "bitstuff":
        return [StuffingSublayer("stuffing", rule), FlagSublayer("flags", rule)]
    if framing == "cobs":
        return CobsFramingSublayer("framing")
    raise ConfigurationError(
        f"unknown framing {framing!r}; choose 'bitstuff' or 'cobs'"
    )


def _encoding(params: dict[str, Any]) -> Any:
    from ..phys.encodings import NRZ
    from ..phys.sublayer import EncodingSublayer

    return EncodingSublayer("encoding", params["line_code"] or NRZ())


HDLC_PROFILE = register_profile(
    StackProfile(
        name="hdlc",
        slots=(
            SlotSpec("arq", _hdlc_arq, "error recovery (retransmission)"),
            SlotSpec("errordetect", _errordetect, "error detection code"),
            SlotSpec("framing", _framing, "frame delimiting (may be a pair)"),
            SlotSpec("encoding", _encoding, "line coding"),
        ),
        defaults={
            "arq": "go-back-n",
            "retransmit_timeout": 0.2,
            "window": 8,
            "code": None,
            "framing": "bitstuff",
            "rule": None,
            "line_code": None,
        },
        doc="Reliable point-to-point data link: ARQ over detection over "
        "framing over encoding (Fig 2, left branch).",
    )
)


# ----------------------------------------------------------------------
# Data link: broadcast (wireless station)
# ----------------------------------------------------------------------
def _mac(params: dict[str, Any]) -> Any:
    import random

    from ..datalink.mac import MAC_SCHEMES

    mac = params["mac"]
    if mac not in MAC_SCHEMES:
        raise ConfigurationError(
            f"unknown MAC scheme {mac!r}; choose from {sorted(MAC_SCHEMES)}"
        )
    address = params["address"]
    if address is None or params["channel"] is None:
        raise ConfigurationError(
            "the wireless profile needs 'address' and 'channel' parameters"
        )
    return MAC_SCHEMES[mac](
        "mac",
        address=address,
        channel=params["channel"],
        rng=params["rng"] or random.Random(address),
    )


def _stuffing(params: dict[str, Any]) -> Any:
    from ..datalink.framing.rules import HDLC_RULE
    from ..datalink.framing.sublayers import StuffingSublayer

    return StuffingSublayer("stuffing", params["rule"] or HDLC_RULE)


def _flags(params: dict[str, Any]) -> Any:
    from ..datalink.framing.rules import HDLC_RULE
    from ..datalink.framing.sublayers import FlagSublayer

    return FlagSublayer("flags", params["rule"] or HDLC_RULE)


WIRELESS_PROFILE = register_profile(
    StackProfile(
        name="wireless",
        slots=(
            SlotSpec("mac", _mac, "media access control"),
            SlotSpec("errordetect", _errordetect, "error detection code"),
            SlotSpec("stuffing", _stuffing, "bit stuffing"),
            SlotSpec("flags", _flags, "flag delimiting"),
            SlotSpec("encoding", _encoding, "line coding"),
        ),
        defaults={
            "mac": "csma",
            "address": None,
            "channel": None,
            "rng": None,
            "code": None,
            "rule": None,
            "line_code": None,
        },
        doc="Broadcast data link: MAC over detection over framing over "
        "encoding (Fig 2, right branch; no error recovery).",
    )
)


# ----------------------------------------------------------------------
# Transport: sublayered TCP (Fig 5)
# ----------------------------------------------------------------------
def _tcp_config(params: dict[str, Any]) -> Any:
    from ..transport.config import TcpConfig

    return params["config"] or TcpConfig()


def _osr(params: dict[str, Any]) -> Any:
    from ..transport.sublayered.osr import OsrSublayer

    config = _tcp_config(params)
    return OsrSublayer(
        "osr",
        mss=config.mss,
        recv_buffer=config.recv_buffer,
        cc_factory=params["cc_factory"],
    )


def _rd(params: dict[str, Any]) -> Any:
    from ..transport.sublayered.rd import RdSublayer

    config = _tcp_config(params)
    return RdSublayer(
        "rd",
        rto_initial=config.rto_initial,
        rto_min=config.rto_min,
        rto_max=config.rto_max,
        dupack_threshold=config.dupack_threshold,
    )


def _cm(params: dict[str, Any]) -> Any:
    from ..transport.sublayered.cm import CmSublayer

    config = _tcp_config(params)
    return CmSublayer(
        "cm",
        isn_scheme=config.isn_scheme,
        handshake_timeout=config.rto_initial,
        max_retries=config.max_syn_retries,
    )


def _dm(params: dict[str, Any]) -> Any:
    from ..transport.sublayered.dm import DmSublayer

    return DmSublayer("dm")


def _shim(params: dict[str, Any]) -> Any:
    return params["shim"]


TCP_PROFILE = register_profile(
    StackProfile(
        name="tcp",
        slots=(
            SlotSpec("osr", _osr, "ordering, streams, and rate"),
            SlotSpec("rd", _rd, "reliable delivery"),
            SlotSpec("cm", _cm, "connection management"),
            SlotSpec("dm", _dm, "demultiplexing (ports)"),
            SlotSpec("shim", _shim, "optional RFC 793 interop shim"),
        ),
        defaults={"config": None, "cc_factory": None, "shim": None},
        doc="Fig 5 sublayered TCP: OSR > RD > CM > DM (+ optional shim).",
    )
)


# ----------------------------------------------------------------------
# Transport: mini-QUIC (Section 5)
# ----------------------------------------------------------------------
def _quic_stream(params: dict[str, Any]) -> Any:
    from ..transport.quic.stream import StreamSublayer

    return StreamSublayer("stream", max_frame_data=params["max_frame_data"])


def _quic_connection(params: dict[str, Any]) -> Any:
    from ..transport.quic.connection import ConnectionSublayer

    return ConnectionSublayer(
        "connection", mtu=params["mtu"], cc_factory=params["cc_factory"]
    )


def _quic_record(params: dict[str, Any]) -> Any:
    from ..transport.quic.record import RecordSublayer

    return RecordSublayer("record")


QUIC_PROFILE = register_profile(
    StackProfile(
        name="quic",
        slots=(
            SlotSpec("stream", _quic_stream, "per-stream ordering/segmenting"),
            SlotSpec("connection", _quic_connection, "handshake, acks, loss, cc"),
            SlotSpec("record", _quic_record, "authenticated encryption"),
            SlotSpec("dm", _dm, "demultiplexing (ports)"),
        ),
        defaults={"mtu": 1200, "max_frame_data": 1000, "cc_factory": None},
        doc="Mini-QUIC: stream > connection > record > DM.",
    )
)
