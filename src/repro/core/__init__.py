"""Core sublayering framework — the paper's primary contribution.

This package provides the vocabulary everything else is written in:

* :class:`~repro.core.sublayer.Sublayer` — one slice of a layer;
* :class:`~repro.core.stack.Stack` — an ordered sublayer composition;
* :class:`~repro.core.header.HeaderFormat` — bit-owned header layouts;
* :class:`~repro.core.pdu.Pdu` — per-sublayer headers wrapping SDUs;
* :class:`~repro.core.interface.ServiceInterface` — narrow control
  interfaces between adjacent sublayers;
* :mod:`~repro.core.contracts` — per-sublayer service contracts;
* :mod:`~repro.core.litmus` — automated T1/T2/T3 litmus tests;
* :mod:`~repro.core.instrument` — actor-tracked state instrumentation.
"""

from .bits import Bits, all_bitstrings, all_bitstrings_up_to
from .clock import Clock, ManualClock, TimerHandle
from .contracts import (
    ByteStreamIntegrity,
    Contract,
    ContractMonitor,
    ExactlyOnceDelivery,
    InOrderDelivery,
    LocalizationReport,
    NoCorruption,
    Observation,
    evaluate_contracts,
)
from .errors import (
    ChecksumError,
    ConfigurationError,
    ContractViolation,
    FramingError,
    HeaderError,
    LitmusFailure,
    ReproError,
    RoutingError,
    SimulationError,
    VerificationError,
)
from .header import Field, HeaderFormat, concat_formats
from .instrument import (
    Access,
    AccessLog,
    InstrumentedState,
    NullAccessLog,
    acting_as,
    current_actor,
)
from .interface import (
    BoundPort,
    InterfaceCall,
    InterfaceLog,
    Notification,
    NullInterfaceLog,
    Primitive,
    ServiceInterface,
)
from .litmus import (
    DEFAULT_MAX_INTERFACE_WIDTH,
    LitmusReport,
    TestResult,
    WireTap,
    check_t1_ordering,
    check_t2_interfaces,
    check_t3_separation,
    run_litmus,
)
from .pdu import Pdu, unwrap
from .report import CheckResult, Report
from .shim import IdentityShim, ShimSublayer
from .stack import Stack
from .sublayer import PassthroughSublayer, Sublayer
from .wiring import (
    APP,
    TIER_FULL,
    TIER_METRICS,
    TIER_OFF,
    TIERS,
    WIRE,
    HopCounters,
    TapList,
    WiringPlan,
    validate_tier,
)

__all__ = [
    "APP",
    "WIRE",
    "Access",
    "AccessLog",
    "Bits",
    "BoundPort",
    "ByteStreamIntegrity",
    "CheckResult",
    "ChecksumError",
    "Clock",
    "ConfigurationError",
    "Contract",
    "ContractMonitor",
    "ContractViolation",
    "DEFAULT_MAX_INTERFACE_WIDTH",
    "ExactlyOnceDelivery",
    "Field",
    "FramingError",
    "HeaderError",
    "HeaderFormat",
    "HopCounters",
    "IdentityShim",
    "InOrderDelivery",
    "InstrumentedState",
    "InterfaceCall",
    "InterfaceLog",
    "LitmusFailure",
    "LitmusReport",
    "LocalizationReport",
    "ManualClock",
    "NoCorruption",
    "Notification",
    "NullAccessLog",
    "NullInterfaceLog",
    "Observation",
    "PassthroughSublayer",
    "Pdu",
    "Primitive",
    "Report",
    "ReproError",
    "RoutingError",
    "ServiceInterface",
    "ShimSublayer",
    "SimulationError",
    "Stack",
    "Sublayer",
    "TIERS",
    "TIER_FULL",
    "TIER_METRICS",
    "TIER_OFF",
    "TapList",
    "TestResult",
    "TimerHandle",
    "VerificationError",
    "WireTap",
    "WiringPlan",
    "acting_as",
    "all_bitstrings",
    "all_bitstrings_up_to",
    "check_t1_ordering",
    "check_t2_interfaces",
    "check_t3_separation",
    "concat_formats",
    "current_actor",
    "evaluate_contracts",
    "run_litmus",
    "unwrap",
    "validate_tier",
]
