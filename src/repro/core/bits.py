"""Immutable bit strings.

The data-link sublayers of the paper (Section 2.1 and the verified
bit-stuffing experiment of Section 4.1) operate on *bit* sequences, not
bytes: stuffing inserts single bits, flags are 8-bit patterns that need
not be byte aligned after stuffing.  :class:`Bits` is a small immutable
sequence-of-{0,1} type with the handful of operations those sublayers
need: concatenation, slicing, pattern search, and byte conversion.

The representation is a ``tuple`` of ints, chosen for hashability (bit
strings are dictionary keys in the stuffing-rule search and model
checker) and for simplicity over raw speed; the benchmark workloads are
kilobits, not gigabits.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence


class Bits(Sequence[int]):
    """An immutable sequence of bits (each 0 or 1)."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[int] = ()):
        as_tuple = tuple(int(b) for b in bits)
        for b in as_tuple:
            if b not in (0, 1):
                raise ValueError(f"bit values must be 0 or 1, got {b}")
        self._bits = as_tuple

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "Bits":
        """Parse a bit string like ``"01111110"`` (spaces/underscores ignored)."""
        cleaned = text.replace(" ", "").replace("_", "")
        if not set(cleaned) <= {"0", "1"}:
            raise ValueError(f"not a bit string: {text!r}")
        return cls(int(c) for c in cleaned)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bits":
        """Expand bytes to bits, most-significant bit first."""
        out = []
        for byte in data:
            for shift in range(7, -1, -1):
                out.append((byte >> shift) & 1)
        return cls(out)

    @classmethod
    def from_int(cls, value: int, width: int) -> "Bits":
        """Encode ``value`` as a fixed-width big-endian bit string."""
        if value < 0:
            raise ValueError("value must be non-negative")
        if width < 0:
            raise ValueError("width must be non-negative")
        if value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        return cls((value >> shift) & 1 for shift in range(width - 1, -1, -1))

    @classmethod
    def zeros(cls, count: int) -> "Bits":
        return cls([0] * count)

    @classmethod
    def ones(cls, count: int) -> "Bits":
        return cls([1] * count)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[int]:
        return iter(self._bits)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Bits(self._bits[index])
        return self._bits[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, Bits):
            return self._bits == other._bits
        if isinstance(other, (tuple, list)):
            return self._bits == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    def __add__(self, other: "Bits | Iterable[int]") -> "Bits":
        if isinstance(other, Bits):
            return Bits(self._bits + other._bits)
        return Bits(self._bits + tuple(int(b) for b in other))

    def __radd__(self, other: Iterable[int]) -> "Bits":
        return Bits(tuple(int(b) for b in other) + self._bits)

    def __mul__(self, count: int) -> "Bits":
        return Bits(self._bits * count)

    def __repr__(self) -> str:
        return f"Bits('{self.to_string()}')"

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_string(self) -> str:
        return "".join(str(b) for b in self._bits)

    def to_int(self) -> int:
        """Interpret the bits as a big-endian unsigned integer."""
        value = 0
        for bit in self._bits:
            value = (value << 1) | bit
        return value

    def to_bytes(self) -> bytes:
        """Pack to bytes, MSB first.  Length must be a multiple of 8."""
        if len(self._bits) % 8 != 0:
            raise ValueError(
                f"bit length {len(self._bits)} is not a whole number of bytes"
            )
        out = bytearray()
        for i in range(0, len(self._bits), 8):
            byte = 0
            for bit in self._bits[i : i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)

    # ------------------------------------------------------------------
    # Pattern operations (used by framing)
    # ------------------------------------------------------------------
    def find(self, pattern: "Bits", start: int = 0) -> int:
        """Index of the first occurrence of ``pattern`` at or after ``start``.

        Returns -1 if the pattern does not occur.
        """
        if len(pattern) == 0:
            return start if start <= len(self) else -1
        limit = len(self) - len(pattern)
        probe = pattern._bits
        for i in range(start, limit + 1):
            if self._bits[i : i + len(probe)] == probe:
                return i
        return -1

    def count_overlapping(self, pattern: "Bits") -> int:
        """Number of (possibly overlapping) occurrences of ``pattern``."""
        count = 0
        index = self.find(pattern)
        while index != -1:
            count += 1
            index = self.find(pattern, index + 1)
        return count

    def contains(self, pattern: "Bits") -> bool:
        return self.find(pattern) != -1

    def startswith(self, pattern: "Bits") -> bool:
        return self._bits[: len(pattern)] == pattern._bits

    def endswith(self, pattern: "Bits") -> bool:
        if len(pattern) == 0:
            return True
        return self._bits[-len(pattern) :] == pattern._bits


def all_bitstrings(length: int) -> Iterator[Bits]:
    """Yield every bit string of exactly ``length`` bits.

    The bounded-exhaustive proof tactic (:mod:`repro.verify.lemma`)
    iterates this for every length up to its bound.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    for value in range(1 << length):
        yield Bits.from_int(value, length)


def all_bitstrings_up_to(max_length: int) -> Iterator[Bits]:
    """Yield every bit string of length 0..``max_length`` inclusive."""
    for length in range(max_length + 1):
        yield from all_bitstrings(length)
