"""Clock and timer abstraction shared by stacks and the simulator.

Sublayers that retransmit (error recovery, CM, RD) need timers, but the
core framework must not depend on the discrete-event engine — data-link
framing, for one, is a pure function of its input.  :class:`Clock` is
the minimal protocol both worlds implement:

* :class:`ManualClock` — a standalone clock advanced explicitly by
  tests and examples that do not need a full simulation;
* :class:`repro.sim.engine.SimClock` — the same interface backed by the
  event queue of a :class:`~repro.sim.engine.Simulator`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """What a sublayer may assume about time."""

    def now(self) -> float:
        """Current time in seconds."""
        ...

    def call_later(self, delay: float, callback: Callable[[], None]) -> "TimerHandle":
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        ...


class TimerHandle:
    """Cancelable handle for a scheduled callback.

    ``actor`` is the instrumentation actor that scheduled the callback
    (captured by the simulator when profiling is enabled), so callback
    cost can be attributed to the sublayer that armed the timer.
    """

    __slots__ = ("_cancelled", "when", "callback", "actor")

    def __init__(
        self,
        when: float,
        callback: Callable[[], None],
        actor: str | None = None,
    ):
        self.when = when
        self.callback = callback
        self.actor = actor
        self._cancelled = False

    def cancel(self) -> None:
        """Mark the timer dead; a cancelled callback never fires."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled


class ManualClock:
    """A clock driven by explicit :meth:`advance` calls.

    Callbacks scheduled with :meth:`call_later` fire, in timestamp
    order, as :meth:`advance` moves time past them.  Ties break in
    scheduling order, like the simulator.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: list[tuple[float, int, TimerHandle]] = []
        self._counter = itertools.count()

    def now(self) -> float:
        """Current manual time in seconds."""
        return self._now

    def call_later(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` at ``now() + delay``; returns its handle."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        handle = TimerHandle(self._now + delay, callback)
        heapq.heappush(self._queue, (handle.when, next(self._counter), handle))
        return handle

    def advance(self, duration: float) -> None:
        """Move time forward, firing due callbacks in order."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        deadline = self._now + duration
        while self._queue and self._queue[0][0] <= deadline:
            when, _seq, handle = heapq.heappop(self._queue)
            self._now = when
            if not handle.cancelled:
                handle.callback()
        self._now = deadline

    def run_until_idle(self, max_time: float = float("inf")) -> None:
        """Fire all pending callbacks up to ``max_time``."""
        while self._queue and self._queue[0][0] <= max_time:
            when, _seq, handle = heapq.heappop(self._queue)
            self._now = when
            if not handle.cancelled:
                handle.callback()

    @property
    def pending(self) -> int:
        """How many scheduled callbacks are still live (not cancelled)."""
        return sum(1 for _, _, h in self._queue if not h.cancelled)
