"""Fused data-path code generation — the ``tier=off`` fast path.

The compiled wiring plan of :mod:`repro.core.wiring` removes the
*instrumentation* from a hop, but even at ``tier=off`` a PDU still pays
one Python call per sublayer per crossing: the chain walk.  This module
removes the chain itself.  When every sublayer of a stack can express
its per-unit data-path work as a *fuse step* — a pure function
``step(sdu, meta) -> sdu`` — the plan concatenates the steps into one
generated function per direction, compiles it with :func:`exec`, and
binds the step closures into its namespace.  A traversal of an 8-deep
stack then costs one function call instead of ~17.

Two forms are generated per direction:

``push(sdu, **meta)``
    The scalar entry (installed as ``app_send`` / ``wire_receive``).

``push_batch(sdus, metas=None)``
    The vector entry: one loop over the batch with every step inlined,
    feeding the endpoint's batch sink in one call when the stack has
    one.  This is what amortizes per-crossing overhead across
    ``batch=64`` (benchmark C11).

A sublayer opts in by returning a step from
:meth:`~repro.core.sublayer.Sublayer.fuse_down` /
:meth:`~repro.core.sublayer.Sublayer.fuse_up`:

* ``None`` (the default) — the sublayer opts out; the *whole direction*
  falls back to the compiled chain walk.  Anything stateful in a way a
  pure step cannot mirror (ARQ windows, MAC queues, shim expansion)
  opts out, and correctness is preserved by construction.
* :data:`IDENTITY` — pure pass-through; the step is eliminated from
  the generated code entirely.
* a callable ``step(sdu, meta) -> sdu | DROP`` — must reproduce the
  sublayer's ``from_above``/``from_below`` *exactly*: same state
  counter updates, same exceptions, and :data:`DROP` wherever the
  scalar path silently drops the unit.  A step that writes into
  ``meta`` (e.g. error detection's ``corrupt`` flag) must carry a
  ``writes_meta = True`` attribute so the generated code materializes
  a fresh meta dict per element.

Fusion is only attempted at ``tier=off`` with no taps and no span hook
(any per-element observer needs the per-hop chain), and can be disabled
globally with ``REPRO_CODEGEN=0`` or per stack via
``Stack.codegen_enabled`` — the differential test rig and the CI
determinism step compare the two paths byte for byte.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

__all__ = ["DROP", "IDENTITY", "FusedDirection", "compile_fused", "fuse_steps"]


class _Sentinel:
    """A named, unforgeable marker object."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Step marker: this sublayer passes units through unchanged; the
#: generated code omits it entirely.
IDENTITY = _Sentinel("IDENTITY")

#: Step return value: the unit is dropped here, exactly where the
#: scalar path would silently return without forwarding.
DROP = _Sentinel("DROP")

#: A fuse step: ``step(sdu, meta) -> transformed sdu | DROP``.
FuseStep = Callable[[Any, dict], Any]


class FusedDirection:
    """One direction's generated entry points plus their source."""

    __slots__ = ("scalar", "batch", "source")

    def __init__(
        self,
        scalar: Callable[..., None],
        batch: Callable[..., None],
        source: str,
    ) -> None:
        self.scalar = scalar
        self.batch = batch
        self.source = source


def fuse_steps(sublayers: Sequence[Any], direction: str) -> list[Any] | None:
    """Collect the fuse steps for one direction, in traversal order.

    ``down`` walks top to bottom (``fuse_down``), ``up`` bottom to top
    (``fuse_up``).  Returns ``None`` as soon as any sublayer opts out —
    fusion is all-or-nothing per direction.
    """
    ordered = sublayers if direction == "down" else list(reversed(sublayers))
    steps: list[Any] = []
    for sublayer in ordered:
        step = sublayer.fuse_down() if direction == "down" else sublayer.fuse_up()
        if step is None:
            return None
        steps.append(step)
    return steps


def _steps_source(live: int, indent: str, var: str = "sdu") -> list[str]:
    """The inlined step cascade: call each step, bail on DROP."""
    lines: list[str] = []
    for i in range(live):
        lines.append(f"{indent}{var} = _s{i}({var}, meta)")
        lines.append(f"{indent}if {var} is _DROP:")
        lines.append(f"{indent}    {bail(indent)}")
    return lines


def bail(indent: str) -> str:
    """``return`` at function level, ``continue`` inside the loops."""
    return "return" if indent == "    " else "continue"


def compile_fused(
    steps: Sequence[Any],
    direction: str,
    name: str,
    sink: Callable[..., None],
    batch_sink: Callable[..., None] | None = None,
) -> FusedDirection:
    """exec-compile one direction's fused ``push``/``push_batch`` pair.

    ``sink`` is the scalar endpoint (``on_transmit``/``on_deliver`` or
    the plan's raising/lossy closure); ``batch_sink``, when present,
    receives the whole surviving batch in one call.
    """
    live = [step for step in steps if step is not IDENTITY]
    uses_meta = any(getattr(step, "writes_meta", False) for step in live)
    namespace: dict[str, Any] = {
        "_DROP": DROP,
        "_sink": sink,
        "_bsink": batch_sink,
        "_EMPTY": {},
    }
    for i, step in enumerate(live):
        namespace[f"_s{i}"] = step

    lines: list[str] = []
    # ------------------------------------------------------- scalar
    lines.append("def push(sdu, **meta):")
    lines.extend(_steps_source(len(live), "    "))
    lines.append("    _sink(sdu, **meta)")
    lines.append("")
    # -------------------------------------------------------- batch
    lines.append("def push_batch(sdus, metas=None):")
    if not live and batch_sink is not None:
        # Pure pass-through into a batch-aware endpoint: the whole
        # traversal is one call.
        lines.append("    _bsink(sdus, metas)")
    else:
        lines.append("    if metas is None:")
        lines.extend(_batch_branch(len(live), uses_meta, batch_sink, metas=False))
        lines.append("    else:")
        lines.extend(_batch_branch(len(live), uses_meta, batch_sink, metas=True))

    source = "\n".join(lines) + "\n"
    exec(compile(source, f"<wiring:{name}:{direction}>", "exec"), namespace)
    return FusedDirection(namespace["push"], namespace["push_batch"], source)


def _batch_branch(
    live: int,
    uses_meta: bool,
    batch_sink: Callable[..., None] | None,
    metas: bool,
) -> list[str]:
    """One branch of ``push_batch`` (with or without caller metas)."""
    track_metas = uses_meta or metas
    lines: list[str] = []
    if batch_sink is not None:
        lines.append("        out = []")
        if track_metas:
            lines.append("        out_metas = []")
    if metas:
        lines.append("        for sdu, meta in zip(sdus, metas):")
        if uses_meta:
            # Steps write into meta: never mutate the caller's dicts.
            lines.append("            meta = dict(meta)")
    elif uses_meta:
        lines.append("        for sdu in sdus:")
        lines.append("            meta = {}")
    else:
        lines.append("        for sdu in sdus:")
        if live:
            lines.append("            meta = _EMPTY")
    lines.extend(_steps_source(live, "            "))
    if batch_sink is not None:
        lines.append("            out.append(sdu)")
        if track_metas:
            lines.append("            out_metas.append(meta)")
        lines.append("        if out:")
        lines.append(
            "            _bsink(out, out_metas)" if track_metas
            else "            _bsink(out, None)"
        )
    elif track_metas:
        lines.append("            _sink(sdu, **meta)")
    else:
        lines.append("            _sink(sdu)")
    return lines
