"""Per-sublayer service contracts and the bug-localization machinery.

The paper's debugging claim (Section 1): with sublayering "we can
localize bugs to sublayers (by examining which sublayer fails its
contract) compared to a monolithic implementation".  This module makes
that operational.  A :class:`Contract` states, over an observed
execution, what one sublayer's service promises its user; a
:class:`ContractMonitor` taps the data path of a sender/receiver stack
pair at a given sublayer boundary and evaluates the contract.  When a
bug is injected into sublayer X, the expectation — checked by the F5
benchmark — is that exactly the contracts at or above X's boundary
fail, naming X's stack position, while the contracts below X keep
passing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from .errors import ConfigurationError, ContractViolation
from .stack import APP, Stack


@dataclass
class Observation:
    """Everything a contract may look at: SDUs crossing one boundary."""

    sent: list[Any] = field(default_factory=list)      # entered sender-side boundary (downward)
    delivered: list[Any] = field(default_factory=list)  # exited receiver-side boundary (upward)


class Contract:
    """A named property of one sublayer's service.

    Subclasses implement :meth:`evaluate`, returning a list of
    human-readable violation strings (empty when the contract holds).
    """

    def __init__(self, name: str, sublayer: str):
        self.name = name
        self.sublayer = sublayer

    def evaluate(self, obs: Observation) -> list[str]:
        raise NotImplementedError

    def enforce(self, obs: Observation) -> None:
        violations = self.evaluate(obs)
        if violations:
            raise ContractViolation(self.sublayer, self.name, "; ".join(violations))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r} on {self.sublayer!r})"


class ExactlyOnceDelivery(Contract):
    """Each sent item is delivered exactly once (RD's promise).

    ``key`` extracts a hashable identity from an SDU (defaults to the
    SDU itself).  Requires the observation to be *quiescent*: all
    retransmissions done.
    """

    def __init__(self, sublayer: str, key: Callable[[Any], Hashable] | None = None):
        super().__init__("exactly-once delivery", sublayer)
        self._key = key or (lambda sdu: sdu)

    def evaluate(self, obs: Observation) -> list[str]:
        violations: list[str] = []
        sent_keys = [self._key(s) for s in obs.sent]
        delivered_keys = [self._key(d) for d in obs.delivered]
        sent_set = set(sent_keys)
        counts: dict[Hashable, int] = {}
        for k in delivered_keys:
            counts[k] = counts.get(k, 0) + 1
        for k, n in counts.items():
            if k not in sent_set:
                violations.append(f"delivered item {k!r} that was never sent")
            elif n > 1:
                violations.append(f"item {k!r} delivered {n} times")
        for k in sent_set:
            if counts.get(k, 0) == 0:
                violations.append(f"item {k!r} sent but never delivered")
        return violations


class InOrderDelivery(Contract):
    """Items are delivered in the order they were sent (OSR's promise)."""

    def __init__(self, sublayer: str, key: Callable[[Any], Hashable] | None = None):
        super().__init__("in-order delivery", sublayer)
        self._key = key or (lambda sdu: sdu)

    def evaluate(self, obs: Observation) -> list[str]:
        sent_keys = [self._key(s) for s in obs.sent]
        delivered_keys = [self._key(d) for d in obs.delivered]
        positions = {k: i for i, k in enumerate(sent_keys)}
        last = -1
        violations: list[str] = []
        for k in delivered_keys:
            if k not in positions:
                violations.append(f"delivered unknown item {k!r}")
                continue
            if positions[k] < last:
                violations.append(f"item {k!r} delivered out of order")
            last = max(last, positions[k])
        return violations


class ByteStreamIntegrity(Contract):
    """Delivered bytes form a prefix of (or equal) the sent byte stream.

    The paper calls this "the main property of TCP — that the byte
    stream received is the same as the sent byte stream"; it is OSR's
    contract.
    """

    def __init__(self, sublayer: str, require_complete: bool = True):
        super().__init__("byte-stream integrity", sublayer)
        self.require_complete = require_complete

    def evaluate(self, obs: Observation) -> list[str]:
        sent = b"".join(bytes(s) for s in obs.sent)
        delivered = b"".join(bytes(d) for d in obs.delivered)
        violations: list[str] = []
        if not sent.startswith(delivered):
            prefix = _common_prefix_len(sent, delivered)
            violations.append(
                f"delivered stream diverges from sent stream at byte {prefix} "
                f"(sent {len(sent)}B, delivered {len(delivered)}B)"
            )
        elif self.require_complete and len(delivered) != len(sent):
            violations.append(
                f"delivered only {len(delivered)} of {len(sent)} bytes"
            )
        return violations


class NoCorruption(Contract):
    """Every delivered item equals some sent item (error detection's promise)."""

    def __init__(self, sublayer: str):
        super().__init__("no corrupt delivery", sublayer)

    def evaluate(self, obs: Observation) -> list[str]:
        sent = {bytes(s) if isinstance(s, (bytes, bytearray)) else s for s in obs.sent}
        violations: list[str] = []
        for d in obs.delivered:
            item = bytes(d) if isinstance(d, (bytes, bytearray)) else d
            if item not in sent:
                violations.append(f"delivered corrupted item {item!r}")
        return violations


def _common_prefix_len(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


class ContractMonitor:
    """Observes one sublayer boundary across a sender/receiver stack pair.

    ``boundary`` names a sublayer; the monitor records SDUs entering
    that sublayer from above on the sender stack and SDUs that sublayer
    delivers upward on the receiver stack — i.e. the service the
    sublayer (plus everything beneath it) provides.  ``boundary=APP``
    observes the whole-stack service.
    """

    def __init__(self, tx: Stack, rx: Stack, boundary: str):
        if boundary != APP:
            tx.sublayer(boundary)  # validates existence
            rx.sublayer(boundary)
        self.boundary = boundary
        self.observation = Observation()
        tx.taps.append(self._tx_tap)
        rx.taps.append(self._rx_tap)

    def _tx_tap(self, direction: str, caller: str, provider: str, sdu: Any, meta: dict) -> None:
        if self.boundary == APP:
            if direction == "down" and caller == APP:
                self.observation.sent.append(sdu)
        elif direction == "down" and provider == self.boundary:
            self.observation.sent.append(sdu)

    def _rx_tap(self, direction: str, caller: str, provider: str, sdu: Any, meta: dict) -> None:
        if self.boundary == APP:
            if direction == "up" and provider == APP:
                self.observation.delivered.append(sdu)
        elif direction == "up" and caller == self.boundary:
            self.observation.delivered.append(sdu)


@dataclass
class LocalizationReport:
    """Outcome of evaluating a set of contracts after a run."""

    passed: list[Contract] = field(default_factory=list)
    failed: list[tuple[Contract, list[str]]] = field(default_factory=list)

    @property
    def implicated_sublayers(self) -> list[str]:
        """Sublayers whose contract failed — where to look for the bug."""
        return sorted({c.sublayer for c, _ in self.failed})

    def localize(self, order_top_to_bottom: list[str]) -> str | None:
        """The *lowest* failing sublayer in stack order.

        With sublayering, the lowest sublayer whose contract fails is
        the prime suspect: everything beneath it met its contract, so
        the failure originates at or inside the suspect.
        """
        failing = set(self.implicated_sublayers)
        for name in reversed(order_top_to_bottom):
            if name in failing:
                return name
        return None


def evaluate_contracts(
    contracts: list[Contract], observations: dict[str, Observation]
) -> LocalizationReport:
    """Evaluate each contract against the observation for its sublayer."""
    report = LocalizationReport()
    for contract in contracts:
        obs = observations.get(contract.sublayer)
        if obs is None:
            raise ConfigurationError(
                f"no observation recorded for sublayer {contract.sublayer!r}"
            )
        violations = contract.evaluate(obs)
        if violations:
            report.failed.append((contract, violations))
        else:
            report.passed.append(contract)
    return report
