"""Exception hierarchy for the sublayering library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause.
Contract violations get their own branch because the paper's debugging
claim — bugs localize to the sublayer that failed its contract — depends
on being able to tell *which* sublayer's contract broke.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A stack, sublayer, or simulation object was assembled incorrectly."""


class HeaderError(ReproError):
    """A header could not be encoded or decoded."""


class FramingError(ReproError):
    """A frame could not be delimited or was malformed on the wire."""


class ChecksumError(ReproError):
    """An error-detection code rejected a frame or segment."""


class ContractViolation(ReproError):
    """A sublayer violated its service contract.

    Attributes
    ----------
    sublayer:
        Name of the sublayer whose contract failed.  This is the
        localization signal: with sublayering, a contract violation
        names the faulty component directly.
    contract:
        Name of the violated contract clause.
    """

    def __init__(self, sublayer: str, contract: str, detail: str = ""):
        self.sublayer = sublayer
        self.contract = contract
        self.detail = detail
        message = f"sublayer {sublayer!r} violated contract {contract!r}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class LitmusFailure(ReproError):
    """A stack failed one of the paper's three sublayering litmus tests."""

    def __init__(self, test: str, detail: str):
        self.test = test
        self.detail = detail
        super().__init__(f"litmus test {test} failed: {detail}")


class VerificationError(ReproError):
    """A lemma, property, or model-checking run failed."""


class ConnectionError_(ReproError):
    """A transport connection could not be established or was reset."""


class RoutingError(ReproError):
    """The network layer could not compute or use a route."""


class SimulationError(ReproError):
    """The discrete-event simulation engine detected an internal fault."""
