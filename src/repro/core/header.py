"""Declarative bit-level header formats with per-sublayer bit ownership.

Test **T3** of the paper requires that "each sublayer acts on separate
packet bits ... invisible to other sublayers".  To make that checkable
rather than aspirational, headers here are declared as ordered
:class:`Field` lists and every field records which sublayer *owns* it.
The litmus checker (:mod:`repro.core.litmus`) compares the owner tags
against which sublayer actually read or wrote each field at runtime.

A :class:`HeaderFormat` packs/unpacks a ``dict`` of field values to and
from :class:`~repro.core.bits.Bits` (and bytes when the total width is
byte aligned), so the same declaration serves the in-simulator object
representation and an on-the-wire byte encoding.  The Fig 6 sublayered
TCP header and the RFC 793 header are both declared this way, which is
what lets :mod:`repro.analysis.headers` check their isomorphism field
by field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .bits import Bits
from .errors import HeaderError


@dataclass(frozen=True)
class Field:
    """One fixed-width unsigned integer field in a header.

    Parameters
    ----------
    name:
        Field name, unique within its :class:`HeaderFormat`.
    width:
        Width in bits (>= 1).
    owner:
        Name of the sublayer that owns these bits.  ``None`` means the
        format has a single implicit owner (set by the format).
    default:
        Value used when the field is omitted at pack time.
    """

    name: str
    width: int
    owner: str | None = None
    default: int = 0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise HeaderError(f"field {self.name!r} must be at least 1 bit wide")
        if not (0 <= self.default < (1 << self.width)):
            raise HeaderError(
                f"default {self.default} does not fit field {self.name!r} "
                f"({self.width} bits)"
            )

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1


class HeaderFormat:
    """An ordered sequence of :class:`Field` with pack/unpack."""

    def __init__(self, name: str, fields: list[Field], owner: str | None = None):
        seen: set[str] = set()
        resolved: list[Field] = []
        for field in fields:
            if field.name in seen:
                raise HeaderError(f"duplicate field {field.name!r} in {name!r}")
            seen.add(field.name)
            if field.owner is None and owner is not None:
                field = Field(field.name, field.width, owner, field.default)
            resolved.append(field)
        self.name = name
        self.fields: tuple[Field, ...] = tuple(resolved)
        self._by_name: dict[str, Field] = {f.name: f for f in self.fields}

    # ------------------------------------------------------------------
    @property
    def bit_width(self) -> int:
        """Total header width in bits."""
        return sum(f.width for f in self.fields)

    @property
    def byte_width(self) -> int:
        """Total header width in bytes; raises if not byte aligned."""
        if self.bit_width % 8 != 0:
            raise HeaderError(f"header {self.name!r} is not byte aligned")
        return self.bit_width // 8

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise HeaderError(f"no field {name!r} in header {self.name!r}") from None

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def owners(self) -> set[str]:
        """The set of sublayers owning at least one field."""
        return {f.owner for f in self.fields if f.owner is not None}

    def fields_owned_by(self, owner: str) -> list[Field]:
        return [f for f in self.fields if f.owner == owner]

    def bit_ranges(self) -> dict[str, tuple[int, int]]:
        """Map field name -> (start_bit, end_bit_exclusive) in the packed layout."""
        ranges: dict[str, tuple[int, int]] = {}
        offset = 0
        for field in self.fields:
            ranges[field.name] = (offset, offset + field.width)
            offset += field.width
        return ranges

    # ------------------------------------------------------------------
    def pack(self, values: Mapping[str, int] | None = None) -> Bits:
        """Encode field values to bits; missing fields take their default."""
        values = dict(values or {})
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise HeaderError(
                f"unknown fields for header {self.name!r}: {sorted(unknown)}"
            )
        out = Bits()
        for field in self.fields:
            value = int(values.get(field.name, field.default))
            if not (0 <= value <= field.max_value):
                raise HeaderError(
                    f"value {value} does not fit field {field.name!r} "
                    f"({field.width} bits) of header {self.name!r}"
                )
            out = out + Bits.from_int(value, field.width)
        return out

    def pack_bytes(self, values: Mapping[str, int] | None = None) -> bytes:
        return self.pack(values).to_bytes()

    def unpack(self, bits: Bits) -> dict[str, int]:
        """Decode exactly one header's worth of leading bits."""
        if len(bits) < self.bit_width:
            raise HeaderError(
                f"need {self.bit_width} bits for header {self.name!r}, "
                f"got {len(bits)}"
            )
        values: dict[str, int] = {}
        offset = 0
        for field in self.fields:
            values[field.name] = bits[offset : offset + field.width].to_int()
            offset += field.width
        return values

    def unpack_bytes(self, data: bytes) -> dict[str, int]:
        return self.unpack(Bits.from_bytes(data[: (self.bit_width + 7) // 8]))

    def split(self, bits: Bits) -> tuple[dict[str, int], Bits]:
        """Decode the leading header and return (values, remaining bits)."""
        return self.unpack(bits), bits[self.bit_width :]

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"HeaderFormat({self.name!r}, {self.bit_width} bits)"


def concat_formats(name: str, *formats: HeaderFormat) -> HeaderFormat:
    """Concatenate header formats into one, preserving field owners.

    This models the right-hand side of the paper's Fig 2/Fig 6: the full
    packet header is the concatenation of per-sublayer subheaders, each
    sublayer owning only its own region.  Field names are prefixed with
    the source format name to stay unique (``cm.isn``, ``rd.seq`` ...).
    """
    fields: list[Field] = []
    for fmt in formats:
        for field in fmt.fields:
            fields.append(
                Field(
                    name=f"{fmt.name}.{field.name}",
                    width=field.width,
                    owner=field.owner,
                    default=field.default,
                )
            )
    return HeaderFormat(name, fields)
