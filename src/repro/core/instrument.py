"""Actor-tracked state access instrumentation.

The paper's central diagnosis of TCP (Section 2.3) is that its
subfunctions are *entangled through shared state*: sequence numbers and
windows are read and written by connection management, reliable
delivery, and congestion control alike.  Its Dafny experience report
(Section 4.2) says the analogous verification pain is the lack of
*ownership*: proving non-interference requires annotating exactly which
heap each function touches.

This module is the measurement instrument for both claims.  Protocol
state lives in :class:`InstrumentedState` containers; every attribute
read or write is logged together with the *actor* — the sublayer or
subfunction currently executing, tracked via :func:`acting_as`.  From
the resulting :class:`AccessLog` we derive:

* the **interference matrix** (which actors touch which state fields) —
  the Dafny-ownership substitute used by :mod:`repro.verify.ownership`;
* the **T3 litmus check** (a sublayer's state must be touched only by
  that sublayer) in :mod:`repro.core.litmus`;
* the **entanglement metrics** of :mod:`repro.analysis.entanglement`.

Instrumentation is always on; its cost is one conditional and an
optional list append per state access, which the tuning benchmark
(C3) accounts for explicitly.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator

_CURRENT_ACTOR: ContextVar[str | None] = ContextVar("repro_current_actor", default=None)


def current_actor() -> str | None:
    """Name of the sublayer/subfunction currently executing, if any."""
    return _CURRENT_ACTOR.get()


@contextlib.contextmanager
def acting_as(name: str) -> Iterator[None]:
    """Run a block with ``name`` as the current actor.

    Stack machinery wraps every sublayer callback in this so state
    accesses are attributed to the right component without the
    components having to cooperate.
    """
    token = _CURRENT_ACTOR.set(name)
    try:
        yield
    finally:
        _CURRENT_ACTOR.reset(token)


@dataclass(frozen=True)
class Access:
    """One attribute access on an instrumented state container."""

    actor: str | None
    target: str
    field: str
    kind: str  # "read" or "write"


class AccessLog:
    """An append-only log of state accesses, shared by many containers."""

    def __init__(self) -> None:
        self.records: list[Access] = []
        self.enabled = True

    def record(self, actor: str | None, target: str, field: str, kind: str) -> None:
        if self.enabled:
            self.records.append(Access(actor, target, field, kind))

    def clear(self) -> None:
        self.records.clear()

    @contextlib.contextmanager
    def paused(self) -> Iterator[None]:
        """Temporarily stop recording (used by reporting code itself)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    # ------------------------------------------------------------------
    # Views used by the analyses
    # ------------------------------------------------------------------
    def actors(self) -> set[str]:
        return {r.actor for r in self.records if r.actor is not None}

    def fields_touched_by(self, actor: str) -> set[tuple[str, str]]:
        """(target, field) pairs read or written by ``actor``."""
        return {
            (r.target, r.field) for r in self.records if r.actor == actor
        }

    def writers_of(self, target: str, field: str) -> set[str]:
        return {
            r.actor
            for r in self.records
            if r.target == target and r.field == field and r.kind == "write"
            and r.actor is not None
        }

    def readers_of(self, target: str, field: str) -> set[str]:
        return {
            r.actor
            for r in self.records
            if r.target == target and r.field == field and r.kind == "read"
            and r.actor is not None
        }

    def interference_matrix(self) -> dict[tuple[str, str], set[str]]:
        """Map (target, field) -> set of actors touching it.

        Fields touched by more than one actor are the *entangled state*
        the paper blames for TCP's verification difficulty.
        """
        matrix: dict[tuple[str, str], set[str]] = {}
        for r in self.records:
            if r.actor is None:
                continue
            matrix.setdefault((r.target, r.field), set()).add(r.actor)
        return matrix

    def shared_fields(self) -> dict[tuple[str, str], set[str]]:
        """Fields touched by two or more distinct actors."""
        return {
            key: actors
            for key, actors in self.interference_matrix().items()
            if len(actors) > 1
        }


class NullAccessLog(AccessLog):
    """An access log that drops everything.

    Installed into every :class:`InstrumentedState` by the ``metrics``
    and ``off`` wiring tiers: state containers keep their logging calls,
    but each one is a no-op method dispatch instead of a conditional
    plus a dataclass allocation plus a list append.  Litmus analyses
    over a null log see an empty record set, which is why litmus tests
    must run at the ``full`` tier (see DESIGN.md).
    """

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def record(self, actor: str | None, target: str, field: str, kind: str) -> None:
        pass


class InstrumentedState:
    """An attribute container that logs every read and write.

    ``target`` names the container (e.g. ``"rd"`` for the RD sublayer's
    per-connection state, or ``"pcb"`` for the monolithic TCP's PCB).
    Attributes must be declared by assignment before first read, as with
    a normal object.
    """

    _RESERVED = frozenset({"_log", "_target", "_values"})

    def __init__(self, target: str, log: AccessLog | None = None, **initial: Any):
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_log", log or AccessLog())
        object.__setattr__(self, "_values", {})
        for name, value in initial.items():
            setattr(self, name, value)

    @property
    def access_log(self) -> AccessLog:
        return object.__getattribute__(self, "_log")

    @property
    def target_name(self) -> str:
        return object.__getattribute__(self, "_target")

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__") or name in self._RESERVED:
            raise AttributeError(name)
        values = object.__getattribute__(self, "_values")
        if name not in values:
            raise AttributeError(
                f"state {object.__getattribute__(self, '_target')!r} "
                f"has no field {name!r}"
            )
        log = object.__getattribute__(self, "_log")
        log.record(current_actor(), object.__getattribute__(self, "_target"), name, "read")
        return values[name]

    def __setattr__(self, name: str, value: Any) -> None:
        if name in self._RESERVED:
            object.__setattr__(self, name, value)
            return
        values = object.__getattribute__(self, "_values")
        log = object.__getattribute__(self, "_log")
        log.record(current_actor(), object.__getattribute__(self, "_target"), name, "write")
        values[name] = value

    def snapshot(self) -> dict[str, Any]:
        """Copy of all fields without logging (for debugging/reports)."""
        return dict(object.__getattribute__(self, "_values"))

    def field_names(self) -> set[str]:
        return set(object.__getattribute__(self, "_values"))

    def __repr__(self) -> str:
        target = object.__getattribute__(self, "_target")
        fields = sorted(object.__getattribute__(self, "_values"))
        return f"InstrumentedState({target!r}, fields={fields})"
