"""Narrow, typed service interfaces between adjacent sublayers.

Test **T2** of the paper: "sublayers communicate with adjacent
sublayers via a narrow interface".  Here an interface is a declared set
of :class:`Primitive` operations; at stack-assembly time each
declaration is bound to the providing sublayer as a :class:`BoundPort`,
and every call through the port is logged.  That gives the litmus
checker two measurable properties:

* **width** — the number of distinct primitives actually exercised (a
  "narrow" interface is one with few primitives carrying small values);
* **adjacency** — a sublayer may only hold ports to its immediate
  neighbours; the stack never hands out a port that skips a sublayer.

Calls through a port switch the instrumentation actor to the provider,
so state mutations performed while servicing a request are attributed
to the provider sublayer (its state, its responsibility), matching how
the paper reasons about contracts.

Every port call is also counted as a *sublayer crossing*, the quantity
the tuning challenge (Section 5, challenge 3) says must be made cheap;
the C3 benchmark reads these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .errors import ConfigurationError
from .instrument import acting_as


@dataclass(frozen=True)
class Primitive:
    """One operation in a service interface."""

    name: str
    doc: str = ""


class ServiceInterface:
    """A named set of primitives a sublayer offers to the sublayer above."""

    def __init__(self, name: str, primitives: list[Primitive]):
        names = [p.name for p in primitives]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate primitives in interface {name!r}")
        self.name = name
        self.primitives: tuple[Primitive, ...] = tuple(primitives)
        self._names = frozenset(names)

    @property
    def width(self) -> int:
        """Number of declared primitives — the static interface width."""
        return len(self.primitives)

    def has(self, primitive: str) -> bool:
        return primitive in self._names

    def __repr__(self) -> str:
        return f"ServiceInterface({self.name!r}, width={self.width})"


@dataclass(frozen=True)
class InterfaceCall:
    """One logged crossing of a sublayer interface."""

    interface: str
    primitive: str
    caller: str
    provider: str
    arg_count: int


@dataclass
class InterfaceLog:
    """Append-only log of interface crossings.

    ``enabled=False`` turns recording off — the C3 tuning benchmark's
    knob for removing per-crossing bookkeeping cost while leaving the
    architecture untouched.
    """

    records: list[InterfaceCall] = field(default_factory=list)
    enabled: bool = True

    def record(self, call: InterfaceCall) -> None:
        if self.enabled:
            self.records.append(call)

    def clear(self) -> None:
        self.records.clear()

    def crossings(self) -> int:
        """Total number of interface crossings (the C3 tuning metric)."""
        return len(self.records)

    def crossings_between(self, caller: str, provider: str) -> int:
        return sum(
            1 for r in self.records if r.caller == caller and r.provider == provider
        )

    def used_width(self, interface: str) -> int:
        """Number of distinct primitives actually exercised on an interface."""
        return len({r.primitive for r in self.records if r.interface == interface})

    def pairs(self) -> set[tuple[str, str]]:
        """All (caller, provider) pairs observed — the adjacency graph."""
        return {(r.caller, r.provider) for r in self.records}


class NullInterfaceLog(InterfaceLog):
    """An interface log that records nothing and reports zero.

    Installed by the ``metrics`` and ``off`` wiring tiers so ports,
    notifications, and hops can keep calling ``log.record(...)``
    unconditionally while the per-crossing allocation and append
    disappear.  Unlike ``InterfaceLog(enabled=False)``, ``record`` here
    does not even build the :class:`InterfaceCall` it ignores — callers
    that know they hold a null log (the compiled hops) skip the whole
    expression.
    """

    def __init__(self) -> None:
        super().__init__(records=[], enabled=False)

    def record(self, call: InterfaceCall) -> None:
        pass

    def crossings(self) -> int:
        return 0


class BoundPort:
    """A caller's handle on a provider's service interface.

    Primitive ``p`` is invoked as ``port.p(*args, **kwargs)`` and
    dispatches to the provider method ``srv_p``.  The call runs with the
    provider as the instrumentation actor and is recorded in the
    interface log.
    """

    def __init__(
        self,
        interface: ServiceInterface,
        provider: Any,
        provider_name: str,
        caller_name: str,
        log: InterfaceLog,
    ):
        self._interface = interface
        self._provider = provider
        self._provider_name = provider_name
        self._caller_name = caller_name
        self._log = log
        for primitive in interface.primitives:
            if not callable(getattr(provider, f"srv_{primitive.name}", None)):
                raise ConfigurationError(
                    f"{provider_name!r} declares primitive {primitive.name!r} "
                    f"but does not implement srv_{primitive.name}"
                )

    @property
    def interface(self) -> ServiceInterface:
        return self._interface

    @property
    def provider_name(self) -> str:
        return self._provider_name

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if not self._interface.has(name):
            raise ConfigurationError(
                f"interface {self._interface.name!r} has no primitive {name!r} "
                f"(caller {self._caller_name!r})"
            )
        handler = getattr(self._provider, f"srv_{name}")

        def invoke(*args: Any, **kwargs: Any) -> Any:
            self._log.record(
                InterfaceCall(
                    interface=self._interface.name,
                    primitive=name,
                    caller=self._caller_name,
                    provider=self._provider_name,
                    arg_count=len(args) + len(kwargs),
                )
            )
            with acting_as(self._provider_name):
                return handler(*args, **kwargs)

        invoke.__name__ = name
        return invoke

    def __repr__(self) -> str:
        return (
            f"BoundPort({self._caller_name!r} -> {self._provider_name!r} "
            f"via {self._interface.name!r})"
        )


class Notification:
    """An upward callback channel from a provider to its user.

    Data and events flow *up* as well as down (acks arriving at RD must
    reach OSR).  A provider sublayer fires notifications; the user
    sublayer registers a handler at wiring time.  Calls are logged like
    port calls, with the roles reversed, and run with the *user* as the
    instrumentation actor.
    """

    def __init__(
        self,
        name: str,
        provider_name: str,
        log: InterfaceLog,
    ):
        self.name = name
        self._provider_name = provider_name
        self._log = log
        self._handler: Callable[..., Any] | None = None
        self._user_name: str | None = None

    def connect(self, user_name: str, handler: Callable[..., Any]) -> None:
        if self._handler is not None:
            raise ConfigurationError(
                f"notification {self.name!r} already connected to {self._user_name!r}"
            )
        self._user_name = user_name
        self._handler = handler

    @property
    def connected(self) -> bool:
        return self._handler is not None

    def fire(self, *args: Any, **kwargs: Any) -> Any:
        if self._handler is None:
            return None
        self._log.record(
            InterfaceCall(
                interface=f"notify:{self.name}",
                primitive=self.name,
                caller=self._provider_name,
                provider=self._user_name or "?",
                arg_count=len(args) + len(kwargs),
            )
        )
        with acting_as(self._user_name or "?"):
            return self._handler(*args, **kwargs)
