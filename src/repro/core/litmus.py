"""Automated checking of the paper's three sublayering litmus tests.

Section 1 of the paper proposes three tests a decomposition must pass
to count as sublayering.  This module turns each into a measurement
over an instrumented execution:

**T1 — ordered, peer-wise improvement.**  Both endpoints must run the
same sublayers in the same order, and every header observed on the wire
must carry the sender sublayers' headers nested in stack order, each
consumed by the same-named peer sublayer (evidenced by the PDU owner
chain).

**T2 — narrow interfaces between adjacent sublayers.**  Every control
or data interaction recorded in the interface log must be between
adjacent sublayers (or the app/top and bottom/wire endpoints), and each
service interface must stay narrow (few primitives).

**T3 — separate bits, mechanisms, and state.**  Every access in the
state log must have the acting sublayer equal to the state's owner, and
every header field observed on the wire must be owned by the sublayer
whose header carries it.

The functions return a :class:`LitmusReport`; callers that want
fail-fast behaviour use :meth:`LitmusReport.require`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .errors import LitmusFailure
from .instrument import AccessLog
from .pdu import Pdu
from .report import CheckResult, Report
from .stack import APP, WIRE, Stack

#: Interfaces wider than this are flagged as "not narrow" by T2.  The
#: paper gives no number; we use the width of its own widest example
#: (OSR->RD: release-segment, acked/loss feedback, window queries).
DEFAULT_MAX_INTERFACE_WIDTH = 6


@dataclass
class TestResult(CheckResult):
    """One litmus test outcome (shared :class:`CheckResult` shape)."""

    @property
    def test(self) -> str:
        return self.name


@dataclass
class LitmusReport(Report):
    results: list[TestResult] = field(default_factory=list)

    def require(self) -> None:
        for r in self.results:
            if not r.passed:
                raise LitmusFailure(r.name, "; ".join(r.details) or "failed")


class WireTap:
    """Collects PDUs as they leave a stack's bottom sublayer."""

    def __init__(self, *stacks: Stack):
        self.pdus: list[Any] = []
        for stack in stacks:
            stack.taps.append(self._tap)

    def _tap(self, direction: str, caller: str, provider: str, sdu: Any, meta: dict) -> None:
        if direction == "down" and provider == WIRE:
            self.pdus.append(sdu)


def _opaque_order(stack: Stack) -> list[str]:
    """Sublayer names that take part in the layering contract.

    Transparent sublayers (fault injectors) sit on the data path
    without offering a service or owning a header; the litmus tests
    look straight through them — T1 compares the opaque orders (so one
    endpoint may carry a fault the other does not) and T2 treats the
    sublayers around a transparent one as adjacent.
    """
    return [s.name for s in stack.sublayers if not s.TRANSPARENT]


def check_t1_ordering(tx: Stack, rx: Stack, wire: WireTap) -> TestResult:
    """T1: same ordered sublayers at both ends; headers nest in stack order."""
    details: list[str] = []
    if _opaque_order(tx) != _opaque_order(rx):
        details.append(
            f"endpoint sublayer orders differ: "
            f"{_opaque_order(tx)} vs {_opaque_order(rx)}"
        )
    order = _opaque_order(tx)
    position = {name: i for i, name in enumerate(order)}
    seen_owner_chains: set[tuple[str, ...]] = set()
    for pdu in wire.pdus:
        if not isinstance(pdu, Pdu):
            continue
        owners = [o for o in pdu.owners() if o in position]
        seen_owner_chains.add(tuple(owners))
        # Outermost header belongs to the lowest sublayer: positions must
        # be strictly decreasing stack-depth, i.e. increasing index order
        # reversed — outermost first means highest index first.
        indices = [position[o] for o in owners]
        if indices != sorted(indices, reverse=True):
            details.append(
                f"header nesting {owners} violates stack order {order}"
            )
            break
    metrics = {
        "order": order,
        "wire_pdus": len(wire.pdus),
        "owner_chains": sorted(seen_owner_chains),
    }
    return TestResult("T1", not details, details, metrics)


def check_t2_interfaces(
    tx: Stack,
    rx: Stack,
    max_width: int = DEFAULT_MAX_INTERFACE_WIDTH,
) -> TestResult:
    """T2: all interactions adjacent; all interfaces narrow."""
    details: list[str] = []
    widths: dict[str, int] = {}
    for stack in (tx, rx):
        full = [APP] + stack.order() + [WIRE]
        transparent = {s.name for s in stack.sublayers if s.TRANSPARENT}
        index = {name: i for i, name in enumerate(full)}
        for caller, provider in stack.interface_log.pairs():
            if caller not in index or provider not in index:
                details.append(
                    f"{stack.name}: interaction with unknown party "
                    f"{caller!r} -> {provider!r}"
                )
                continue
            lo, hi = sorted((index[caller], index[provider]))
            # Adjacent iff everything strictly between the two parties
            # is transparent (an inserted fault does not break
            # adjacency: its neighbours cannot tell it is there).
            skipped = [n for n in full[lo + 1 : hi] if n not in transparent]
            if skipped:
                details.append(
                    f"{stack.name}: non-adjacent interaction "
                    f"{caller!r} -> {provider!r} (skips sublayers)"
                )
        for record in stack.interface_log.records:
            widths.setdefault(record.interface, 0)
        for interface in list(widths):
            widths[interface] = max(
                widths[interface], stack.interface_log.used_width(interface)
            )
    for interface, width in widths.items():
        if interface.startswith("data:"):
            continue  # data path is always exactly send/deliver
        if width > max_width:
            details.append(
                f"interface {interface!r} uses {width} primitives "
                f"(> {max_width}): not narrow"
            )
    metrics = {"interface_widths": widths}
    return TestResult("T2", not details, details, metrics)


def check_t3_separation(
    tx: Stack, rx: Stack, wire: WireTap
) -> TestResult:
    """T3: private state touched only by its owner; header bits owned."""
    details: list[str] = []
    foreign_touches = 0
    for stack in (tx, rx):
        log: AccessLog = stack.access_log
        for record in log.records:
            if record.actor is None:
                continue
            if record.actor != record.target:
                foreign_touches += 1
                detail = (
                    f"{stack.name}: sublayer {record.actor!r} "
                    f"{record.kind} state {record.target}.{record.field}"
                )
                if detail not in details:
                    details.append(detail)
    for pdu in wire.pdus:
        if not isinstance(pdu, Pdu):
            continue
        for node in pdu.header_chain():
            if node.format is None:
                continue
            for fld in node.format.fields:
                if fld.owner is not None and fld.owner != node.owner:
                    details.append(
                        f"header field {fld.name!r} owned by {fld.owner!r} "
                        f"but carried in {node.owner!r}'s header"
                    )
    metrics = {"foreign_state_touches": foreign_touches}
    return TestResult("T3", not details, details, metrics)


def run_litmus(
    tx: Stack,
    rx: Stack,
    wire: WireTap,
    max_interface_width: int = DEFAULT_MAX_INTERFACE_WIDTH,
) -> LitmusReport:
    """Run all three litmus tests over a completed instrumented run."""
    return LitmusReport(
        results=[
            check_t1_ordering(tx, rx, wire),
            check_t2_interfaces(tx, rx, max_interface_width),
            check_t3_separation(tx, rx, wire),
        ]
    )
