"""The narrow metrics emitter available to every sublayer.

Observability (``repro.obs``) sits *outside* the layer DAG: it may look
at every layer, but no protocol layer may import it (the staticcheck
layer model enforces this).  Sublayers still need somewhere to report
counters, gauges, and latency samples, so this module defines the one
thing they are allowed to hold: a duck-typed *sink* with three
operations.  The default sink is :data:`NULL_METRICS`, which does
nothing; :class:`repro.obs.MetricsRegistry` implements the same surface
and is installed from the outside (host or stack constructor), keeping
the dependency arrow pointing strictly from the observer to the
observed.

Names are namespaced with ``/`` — a stack installs a
:class:`ScopedMetrics` per sublayer so ``rd`` reporting
``segments_sent`` lands at ``tcp:a/rd/segments_sent`` without ``rd``
knowing where it lives.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

SEPARATOR = "/"


@runtime_checkable
class MetricsSink(Protocol):
    """What a sublayer may assume about the metrics backend."""

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the monotonic counter ``name``."""
        ...

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its current ``value``."""
        ...

    def observe(self, name: str, value: float) -> None:
        """Add one sample to the streaming-moments distribution ``name``."""
        ...

    def observe_hist(self, name: str, value: float, count: int = 1) -> None:
        """Add a sample to the log-bucket histogram ``name``.

        Histograms answer quantile questions (p50/p90/p99/max) that
        streaming moments cannot; latency-shaped sites report here.
        ``count > 1`` records the value ``count`` times in one call,
        so a batched hop costs one observation, not one per element.
        """
        ...


class NullMetrics:
    """The no-op sink: reporting into it costs one method call."""

    __slots__ = ()

    def inc(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def observe_hist(self, name: str, value: float, count: int = 1) -> None:
        pass

    def scoped(self, prefix: str) -> "NullMetrics":
        return self

    def __repr__(self) -> str:
        return "NullMetrics()"


#: Shared no-op sink — the default value of ``Sublayer.metrics``.
NULL_METRICS = NullMetrics()


class ScopedMetrics:
    """A view of a sink with every name prefixed by a namespace."""

    __slots__ = ("_sink", "prefix")

    def __init__(self, sink: MetricsSink, prefix: str):
        self._sink = sink
        self.prefix = prefix

    def inc(self, name: str, value: float = 1) -> None:
        self._sink.inc(self.prefix + SEPARATOR + name, value)

    def gauge(self, name: str, value: float) -> None:
        self._sink.gauge(self.prefix + SEPARATOR + name, value)

    def observe(self, name: str, value: float) -> None:
        self._sink.observe(self.prefix + SEPARATOR + name, value)

    def observe_hist(self, name: str, value: float, count: int = 1) -> None:
        self._sink.observe_hist(self.prefix + SEPARATOR + name, value, count)

    def scoped(self, prefix: str) -> "ScopedMetrics":
        return ScopedMetrics(self._sink, self.prefix + SEPARATOR + prefix)

    def __repr__(self) -> str:
        return f"ScopedMetrics({self.prefix!r})"


def scoped(sink: MetricsSink | None, prefix: str) -> MetricsSink:
    """A namespaced view of ``sink``, or the null sink for ``None``."""
    if sink is None:
        return NULL_METRICS
    return ScopedMetrics(sink, prefix)
