"""Protocol data units: per-sublayer headers wrapping inner data.

The right-hand side of the paper's Fig 2 shows each sublayer pushing
its own header onto the data it receives from above, the peer sublayer
stripping it on the way up.  :class:`Pdu` is exactly that picture: a
header (typed by a :class:`~repro.core.header.HeaderFormat` and tagged
with its owning sublayer) wrapping an inner SDU, which is either the
next sublayer's :class:`Pdu` or raw payload.

Keeping headers as structured objects rather than flattened bytes lets
the litmus checker see precisely which sublayer attached which bits;
:meth:`Pdu.to_bits` produces the flattened wire image when a physical
link needs one (as Fig 2 notes, "actual implementations are unlikely to
do this" — neither do we, except at the phys boundary and in the
header-isomorphism analysis).
"""

from __future__ import annotations

import copy
from typing import Any, Iterator

from .bits import Bits
from .errors import HeaderError
from .header import HeaderFormat


class Pdu:
    """One sublayer's header wrapped around an inner SDU."""

    __slots__ = ("owner", "format", "header", "inner")

    def __init__(
        self,
        owner: str,
        fmt: HeaderFormat | None,
        header: dict[str, int] | None,
        inner: "Pdu | Bits | bytes | Any",
    ):
        self.owner = owner
        self.format = fmt
        self.header = dict(header or {})
        self.inner = inner
        if fmt is not None:
            unknown = set(self.header) - set(fmt.field_names())
            if unknown:
                raise HeaderError(
                    f"header values {sorted(unknown)} not in format {fmt.name!r}"
                )

    # ------------------------------------------------------------------
    def field(self, name: str) -> int:
        """Read a header field, falling back to the format default."""
        if name in self.header:
            return self.header[name]
        if self.format is not None:
            return self.format.field(name).default
        raise HeaderError(f"pdu from {self.owner!r} has no field {name!r}")

    def with_field(self, name: str, value: int) -> "Pdu":
        """A shallow copy with one header field changed."""
        new_header = dict(self.header)
        new_header[name] = value
        return Pdu(self.owner, self.format, new_header, self.inner)

    # ------------------------------------------------------------------
    def header_chain(self) -> Iterator["Pdu"]:
        """Yield this PDU and each nested PDU, outermost first."""
        node: Any = self
        while isinstance(node, Pdu):
            yield node
            node = node.inner

    def find(self, owner: str) -> "Pdu | None":
        """The nested PDU whose header belongs to ``owner``, if any."""
        for pdu in self.header_chain():
            if pdu.owner == owner:
                return pdu
        return None

    def payload(self) -> Any:
        """The innermost non-PDU data."""
        node: Any = self
        while isinstance(node, Pdu):
            node = node.inner
        return node

    def owners(self) -> list[str]:
        """Sublayer names of all headers, outermost first."""
        return [pdu.owner for pdu in self.header_chain()]

    # ------------------------------------------------------------------
    def header_bits(self) -> int:
        """Total header bits across all nested PDUs."""
        return sum(
            pdu.format.bit_width for pdu in self.header_chain() if pdu.format
        )

    def payload_bits(self) -> int:
        data = self.payload()
        if isinstance(data, Bits):
            return len(data)
        if isinstance(data, (bytes, bytearray)):
            return 8 * len(data)
        return 0

    def to_bits(self) -> Bits:
        """Flatten to the wire image: headers outermost-first, then payload.

        The payload must be :class:`Bits` or bytes.
        """
        out = Bits()
        for pdu in self.header_chain():
            if pdu.format is not None:
                out = out + pdu.format.pack(pdu.header)
        data = self.payload()
        if isinstance(data, Bits):
            return out + data
        if isinstance(data, (bytes, bytearray)):
            return out + Bits.from_bytes(bytes(data))
        if data is None:
            return out
        raise HeaderError(
            f"cannot serialize payload of type {type(data).__name__}"
        )

    def clone(self) -> "Pdu":
        """Deep copy, so in-flight packets are independent of sender state."""
        return copy.deepcopy(self)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        parts = []
        for pdu in self.header_chain():
            shown = {k: v for k, v in pdu.header.items()}
            parts.append(f"{pdu.owner}{shown}")
        data = self.payload()
        if isinstance(data, (bytes, bytearray)):
            tail = f"{len(data)}B"
        elif isinstance(data, Bits):
            tail = f"{len(data)}b"
        else:
            tail = repr(data)
        return "Pdu<" + " | ".join(parts) + f" | {tail}>"


def unwrap(pdu: Pdu, expected_owner: str) -> tuple[dict[str, int], Any]:
    """Strip the outermost header, checking it belongs to ``expected_owner``.

    This is the receive-side primitive: a sublayer may only pop its own
    peer's header.  Returns (header values with defaults filled, inner SDU).
    """
    if pdu.owner != expected_owner:
        raise HeaderError(
            f"expected outer header from {expected_owner!r}, got {pdu.owner!r}"
        )
    values = dict(pdu.header)
    if pdu.format is not None:
        for field in pdu.format.fields:
            values.setdefault(field.name, field.default)
    return values, pdu.inner
