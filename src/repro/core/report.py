"""Shared report types for the project's checkers.

Two checkers verify the paper's sublayering discipline: the *runtime*
litmus tests (:mod:`repro.core.litmus`), which measure an instrumented
execution, and the *static* checker (:mod:`repro.staticcheck`), which
proves the same properties from source alone.  Both express their
outcome in the vocabulary defined here — a list of named
:class:`CheckResult` entries inside a :class:`Report` — so CI, tests,
and tooling consume one format regardless of which checker produced it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


@dataclass
class CheckResult:
    """Outcome of one named check (a litmus test or a static rule)."""

    name: str
    passed: bool
    details: list[str] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "passed": self.passed,
            "details": list(self.details),
            "metrics": _jsonable(self.metrics),
        }


@dataclass
class Report:
    """An ordered collection of check results with text/JSON emitters."""

    results: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    def result(self, name: str) -> CheckResult:
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(name)

    def summary(self) -> str:
        lines = []
        for r in self.results:
            status = "PASS" if r.passed else "FAIL"
            lines.append(f"{r.name}: {status}")
            for d in r.details:
                lines.append(f"  - {d}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "passed": self.passed,
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of metrics values to JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
