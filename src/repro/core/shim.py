"""Shim sublayers: header translation for interoperability.

Section 3.1 of the paper answers the interoperability objection by
proposing "a shim sublayer that converts the sublayered header ... to a
standard TCP header".  A :class:`ShimSublayer` sits at the bottom of a
stack and rewrites the outgoing PDU into a foreign wire format (and the
reverse on receive), leaving every other sublayer untouched — which is
itself a demonstration of T3: interop is a one-sublayer concern.
"""

from __future__ import annotations

from typing import Any

from .sublayer import Sublayer


class ShimSublayer(Sublayer):
    """Bidirectional representation translator.

    Subclasses override :meth:`encode` (native PDU -> foreign wire
    object) and :meth:`decode` (foreign wire object -> native PDU).
    Either may return ``None`` to drop the unit (e.g. unparseable
    foreign input).
    """

    def encode(self, pdu: Any) -> Any:
        raise NotImplementedError

    def decode(self, wire: Any) -> Any:
        raise NotImplementedError

    def from_above(self, sdu: Any, **meta: Any) -> None:
        encoded = self.encode(sdu)
        if encoded is not None:
            self.send_down(encoded, **meta)

    def from_below(self, pdu: Any, **meta: Any) -> None:
        decoded = self.decode(pdu)
        if decoded is not None:
            self.deliver_up(decoded, **meta)


class IdentityShim(ShimSublayer):
    """A shim that changes nothing — the zero-cost baseline for C3."""

    def encode(self, pdu: Any) -> Any:
        return pdu

    def decode(self, wire: Any) -> Any:
        return wire
