"""Shim sublayers: header translation for interoperability.

Section 3.1 of the paper answers the interoperability objection by
proposing "a shim sublayer that converts the sublayered header ... to a
standard TCP header".  A :class:`ShimSublayer` sits at the bottom of a
stack and rewrites the outgoing PDU into a foreign wire format (and the
reverse on receive), leaving every other sublayer untouched — which is
itself a demonstration of T3: interop is a one-sublayer concern.
"""

from __future__ import annotations

from typing import Any, Sequence

from .sublayer import Sublayer


class ShimSublayer(Sublayer):
    """Bidirectional representation translator.

    Subclasses override :meth:`encode` (native PDU -> foreign wire
    object) and :meth:`decode` (foreign wire object -> native PDU).
    Either may return ``None`` to drop the unit (e.g. unparseable
    foreign input).
    """

    def encode(self, pdu: Any) -> Any:
        raise NotImplementedError

    def decode(self, wire: Any) -> Any:
        raise NotImplementedError

    def from_above(self, sdu: Any, **meta: Any) -> None:
        encoded = self.encode(sdu)
        if encoded is not None:
            self.send_down(encoded, **meta)

    def from_below(self, pdu: Any, **meta: Any) -> None:
        decoded = self.decode(pdu)
        if decoded is not None:
            self.deliver_up(decoded, **meta)

    # -------------------------------------------------------- batch
    def from_above_batch(
        self, sdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Translate the whole batch, then cross the boundary once.

        ``None`` encodings drop their unit, exactly like the scalar
        path; the surviving units keep their order (and metas).
        """
        encode = self.encode
        out = []
        out_metas: list[dict] | None = [] if metas is not None else None
        for index, sdu in enumerate(sdus):
            encoded = encode(sdu)
            if encoded is None:
                continue
            out.append(encoded)
            if out_metas is not None:
                out_metas.append(metas[index])
        if out:
            self.send_down_batch(out, out_metas)

    def from_below_batch(
        self, pdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Reverse-translate the batch upward.

        Loops the scalar :meth:`from_below` with ``deliver_up``
        temporarily buffered, so subclasses that expand one wire unit
        into several native PDUs (their ``from_below`` override calling
        ``deliver_up`` more than once) coalesce correctly too.
        """
        up_units: list[Any] = []
        up_metas: list[dict] = []

        def buffer_up(sdu: Any, **meta: Any) -> None:
            up_units.append(sdu)
            up_metas.append(meta)

        real_deliver = self._deliver_up
        self._deliver_up = buffer_up
        try:
            if metas is None:
                for pdu in pdus:
                    self.from_below(pdu)
            else:
                for pdu, meta in zip(pdus, metas):
                    self.from_below(pdu, **meta)
        finally:
            self._deliver_up = real_deliver
        if up_units:
            self.deliver_up_batch(
                up_units, up_metas if any(up_metas) else None
            )


class IdentityShim(ShimSublayer):
    """A shim that changes nothing — the zero-cost baseline for C3."""

    def encode(self, pdu: Any) -> Any:
        return pdu

    def decode(self, wire: Any) -> Any:
        return wire
