"""Sublayer composition: assembling an ordered stack and wiring it.

A :class:`Stack` takes sublayers listed *top to bottom* (the T1 order)
and wires each to exactly its neighbours:

* downward data path: each sublayer's ``send_down`` reaches the next
  lower sublayer's ``from_above``; the bottom sublayer's output goes to
  the stack's ``on_transmit`` callback (typically a simulated link);
* upward data path: ``deliver_up`` reaches the next higher sublayer's
  ``from_below``; the top sublayer's output goes to ``on_deliver``
  (the application);
* control: each sublayer gets one :class:`BoundPort` onto the service
  interface of the sublayer directly below (T2), and the stack
  auto-connects a lower sublayer's notifications to ``nf_<channel>``
  methods on the sublayer immediately above.

The data-path hops themselves are *compiled*, not interpreted: a
:class:`repro.core.wiring.WiringPlan` builds one closure per hop at an
explicit instrumentation tier (``full``/``metrics``/``off``) and
recompiles whenever an observer changes — a span hook is attached or
detached, a tap is added or removed, or an endpoint sink is set.  At
the ``full`` tier (the default) every callback runs under
:func:`repro.core.instrument.acting_as` for the sublayer's own name and
every hop is logged as a crossing, which is what makes the T2/T3 litmus
tests and the C3 tuning benchmark measurements rather than assertions.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

from .clock import Clock, ManualClock
from .errors import ConfigurationError
from .instrument import AccessLog, InstrumentedState, NullAccessLog, acting_as
from .interface import BoundPort, InterfaceLog, Notification, NullInterfaceLog
from .metrics import MetricsSink, scoped
from .sublayer import Sublayer
from .wiring import (  # noqa: F401  (APP/WIRE re-exported for callers)
    APP,
    TIER_FULL,
    TIERS,
    WIRE,
    HopCounters,
    TapList,
    WiringPlan,
    validate_tier,
)


class Stack:
    """An ordered composition of sublayers forming one protocol layer."""

    def __init__(
        self,
        name: str,
        sublayers: list[Sublayer],
        clock: Clock | None = None,
        access_log: AccessLog | None = None,
        interface_log: InterfaceLog | None = None,
        metrics: MetricsSink | None = None,
        tier: str = TIER_FULL,
        lossy_delivery: bool = False,
    ):
        """Compose ``sublayers`` (listed top to bottom) into one stack.

        ``tier`` selects the instrumentation level (``full`` keeps the
        access/interface logs live, ``metrics``/``off`` swap in null
        logs); ``lossy_delivery`` marks stacks whose delivery contract
        tolerates loss (the litmus checks consult it).
        """
        if not sublayers:
            raise ConfigurationError("a stack needs at least one sublayer")
        names = [s.name for s in sublayers]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate sublayer names in stack {name!r}")
        validate_tier(tier)
        self.name = name
        self.sublayers: list[Sublayer] = list(sublayers)  # top -> bottom
        self._index: dict[str, Sublayer] = {s.name: s for s in self.sublayers}
        self.clock: Clock = clock if clock is not None else ManualClock()
        # The "real" logs survive tier changes; at the metrics/off tiers
        # the public access_log/interface_log attributes point at null
        # implementations instead (set_tier swaps them back).
        self._full_access_log = access_log if access_log is not None else AccessLog()
        self._full_interface_log = (
            interface_log if interface_log is not None else InterfaceLog()
        )
        self._null_access_log = NullAccessLog()
        self._null_interface_log = NullInterfaceLog()
        self._tier = tier
        if tier == TIER_FULL:
            self.access_log: AccessLog = self._full_access_log
            self.interface_log: InterfaceLog = self._full_interface_log
        else:
            self.access_log = self._null_access_log
            self.interface_log = self._null_interface_log
        self.metrics = metrics
        self.lossy_delivery = lossy_delivery
        self._on_deliver: Callable[..., None] | None = None
        self._on_transmit: Callable[..., None] | None = None
        # Optional batch-aware endpoint sinks (fn(units, metas|None)):
        # when set, a batch crossing the last hop stays one call instead
        # of decaying to a per-unit loop over the scalar sink.
        self._on_deliver_batch: Callable[..., None] | None = None
        self._on_transmit_batch: Callable[..., None] | None = None
        # The tier=off codegen fast path (repro.core.codegen) is on by
        # default; REPRO_CODEGEN=0 is the global kill switch and the
        # property setter the per-stack one.  Either way the chain walk
        # remains compiled underneath, so flipping this only swaps the
        # plan's entry points.
        self._codegen_enabled = os.environ.get("REPRO_CODEGEN", "1") != "0"
        # Observers of every data-path hop: fn(direction, caller, provider, sdu, meta).
        # Contract monitors and the litmus checker attach here; every
        # mutation recompiles the wiring plan.
        self._taps: TapList = TapList(on_change=self._recompile)
        # Optional span factory: fn(direction, caller, provider, sdu, meta)
        # returning a context manager that brackets the receiving
        # sublayer's processing of the hop.  Installed from outside
        # (repro.obs.SpanTracer.attach); the compiled hops include the
        # span bracket only while a hook is attached.
        self._span_hook: Callable[[str, str, str, Any, dict], Any] | None = None
        # Optional per-traversal latency histogram (any object with an
        # ``observe(seconds)`` method): compiled into the metrics-tier
        # endpoint hops as one perf_counter pair per PDU crossing.
        self._hop_latency: Any | None = None
        self._plan = WiringPlan(self, tier)
        self._wire()

    # ------------------------------------------------------------------
    # Observable configuration — every setter recompiles the plan
    # ------------------------------------------------------------------
    def _recompile(self) -> None:
        plan = getattr(self, "_plan", None)
        if plan is not None:
            plan.compile()

    @property
    def tier(self) -> str:
        """The current instrumentation tier (``full``/``metrics``/``off``)."""
        return self._tier

    @property
    def hop_counters(self) -> HopCounters:
        """Cheap crossing counters, maintained at the ``metrics`` tier."""
        return self._plan.counters

    @property
    def wiring_plan(self) -> WiringPlan:
        """The compiled hop plan this stack currently runs on."""
        return self._plan

    @property
    def taps(self) -> TapList:
        """Observers of every data-path hop (monitors, litmus checks)."""
        return self._taps

    @taps.setter
    def taps(self, value: Any) -> None:
        """Replace the tap list wholesale and recompile the hops."""
        self._taps = TapList(value, on_change=self._recompile)
        self._recompile()

    @property
    def span_hook(self) -> Callable[[str, str, str, Any, dict], Any] | None:
        """The span factory bracketing each hop (``SpanTracer.attach``)."""
        return self._span_hook

    @span_hook.setter
    def span_hook(self, hook: Callable[[str, str, str, Any, dict], Any] | None) -> None:
        """Install (or clear) the span factory and recompile the hops."""
        self._span_hook = hook
        self._recompile()

    @property
    def hop_latency(self) -> Any | None:
        """Wall-clock per-traversal latency sink (``metrics`` tier only).

        Set it to a :class:`repro.obs.Histogram` (anything with
        ``observe(seconds)``) and every PDU crossing of the stack at
        ``tier="metrics"`` is timed with one ``perf_counter`` pair at
        the entry hop.  Wall-clock values are non-deterministic, so
        campaign scenarios leave this off.
        """
        return self._hop_latency

    @hop_latency.setter
    def hop_latency(self, sink: Any | None) -> None:
        """Install (or clear) the latency sink and recompile the hops."""
        self._hop_latency = sink
        self._recompile()

    @property
    def on_transmit(self) -> Callable[..., None] | None:
        """The wire sink the bottom sublayer transmits into."""
        return self._on_transmit

    @on_transmit.setter
    def on_transmit(self, sink: Callable[..., None] | None) -> None:
        """Attach the stack to a wire (link/medium) and recompile."""
        self._on_transmit = sink
        self._recompile()

    @property
    def on_deliver(self) -> Callable[..., None] | None:
        """The application sink the top sublayer delivers into."""
        return self._on_deliver

    @on_deliver.setter
    def on_deliver(self, sink: Callable[..., None] | None) -> None:
        """Attach the application delivery sink and recompile."""
        self._on_deliver = sink
        self._recompile()

    @property
    def on_transmit_batch(self) -> Callable[..., None] | None:
        """Batch wire sink (``fn(units, metas|None)``), if the wire has one.

        Optional: without it, batch crossings of the bottom hop loop the
        scalar :attr:`on_transmit` per unit.  A batch-aware link (see
        :meth:`repro.sim.link.Link.send_batch`) keeps the whole batch as
        one call end to end.
        """
        return self._on_transmit_batch

    @on_transmit_batch.setter
    def on_transmit_batch(self, sink: Callable[..., None] | None) -> None:
        """Attach the batch wire sink and recompile."""
        self._on_transmit_batch = sink
        self._recompile()

    @property
    def on_deliver_batch(self) -> Callable[..., None] | None:
        """Batch application sink (``fn(units, metas|None)``), optional."""
        return self._on_deliver_batch

    @on_deliver_batch.setter
    def on_deliver_batch(self, sink: Callable[..., None] | None) -> None:
        """Attach the batch delivery sink and recompile."""
        self._on_deliver_batch = sink
        self._recompile()

    @property
    def codegen_enabled(self) -> bool:
        """Whether the tier=off fused codegen fast path may be used.

        Defaults to ``True`` unless the process was started with
        ``REPRO_CODEGEN=0``.  Fusion additionally requires tier=off, no
        taps, no span hook, and every sublayer opting in — see
        :mod:`repro.core.codegen`.
        """
        return self._codegen_enabled

    @codegen_enabled.setter
    def codegen_enabled(self, enabled: bool) -> None:
        """Flip the codegen fast path and recompile."""
        self._codegen_enabled = bool(enabled)
        self._recompile()

    def set_tier(self, tier: str) -> "Stack":
        """Switch instrumentation tier in place and recompile the hops.

        Swaps the access/interface logs between the real instances
        (``full``) and null implementations (``metrics``/``off``) in
        every state container, notification, and port, then recompiles
        the wiring plan.  Hop counters are preserved across switches.
        """
        validate_tier(tier)
        if tier == self._tier:
            return self
        self._tier = tier
        if tier == TIER_FULL:
            self.access_log = self._full_access_log
            self.interface_log = self._full_interface_log
        else:
            self.access_log = self._null_access_log
            self.interface_log = self._null_interface_log
        for sublayer in self.sublayers:
            sublayer.state._log = self.access_log
            for notification in sublayer.notifications.values():
                notification._log = self.interface_log
            if sublayer.below is not None:
                sublayer.below._log = self.interface_log
        self._plan.tier = tier
        self._plan.compile()
        return self

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _wire(self) -> None:
        for sublayer in self.sublayers:
            self._install(sublayer)

        self._wire_control()
        self._plan.compile()

        for sublayer in self.sublayers:
            with acting_as(sublayer.name):
                sublayer.on_attach()

    def _install(self, sublayer: Sublayer) -> None:
        """Give one sublayer its per-stack wiring attributes."""
        sublayer.stack_name = self.name
        sublayer.clock = self.clock
        sublayer.metrics = scoped(self.metrics, f"{self.name}/{sublayer.name}")
        sublayer.state = InstrumentedState(sublayer.name, log=self.access_log)

    def _wire_control(self) -> None:
        """(Re)build the control plane: service ports + notifications.

        Control wiring is computed over the *opaque* sublayers only:
        a :attr:`Sublayer.TRANSPARENT` sublayer sits on the data path
        but offers no service and fires no notifications, so the
        sublayers around it stay control-adjacent — inserting one must
        not sever an existing port binding or notification connection.
        """
        for sublayer in self.sublayers:
            sublayer.below = None
            sublayer.notifications = {
                channel: Notification(channel, sublayer.name, self.interface_log)
                for channel in sublayer.NOTIFICATIONS
            }

        opaque = [s for s in self.sublayers if not s.TRANSPARENT]
        for index, sublayer in enumerate(opaque):
            below = opaque[index + 1] if index + 1 < len(opaque) else None
            if below is None:
                continue
            if below.SERVICE is not None:
                sublayer.below = BoundPort(
                    below.SERVICE,
                    below,
                    below.name,
                    sublayer.name,
                    self.interface_log,
                )
            self._connect_notifications(user=sublayer, provider=below)

    def _connect_notifications(self, user: Sublayer, provider: Sublayer) -> None:
        for channel, notification in provider.notifications.items():
            handler = getattr(user, f"nf_{channel}", None)
            if callable(handler):
                notification.connect(user.name, handler)

    # ------------------------------------------------------------------
    # Application / wire endpoints
    # ------------------------------------------------------------------
    @property
    def top(self) -> Sublayer:
        """The sublayer facing the application."""
        return self.sublayers[0]

    @property
    def bottom(self) -> Sublayer:
        """The sublayer facing the wire."""
        return self.sublayers[-1]

    def sublayer(self, name: str) -> Sublayer:
        """Look up a sublayer by name (ConfigurationError if absent)."""
        try:
            return self._index[name]
        except KeyError:
            raise ConfigurationError(
                f"no sublayer {name!r} in stack {self.name!r}"
            ) from None

    def send(self, data: Any, **meta: Any) -> None:
        """Application hands data to the top sublayer."""
        self._plan.app_send(data, **meta)

    def receive(self, pdu: Any, **meta: Any) -> None:
        """The wire hands a PDU to the bottom sublayer."""
        self._plan.wire_receive(pdu, **meta)

    def send_batch(
        self,
        batch: Sequence[Any],
        metas: Sequence[dict] | None = None,
    ) -> None:
        """Application hands an in-order batch to the top sublayer.

        Semantically identical to ``for item in batch: stack.send(item)``
        (the differential rig holds the two byte-identical) but the
        whole batch crosses each sublayer boundary in one compiled hop,
        amortizing per-crossing overhead.  ``metas``, when given, is a
        parallel sequence of per-unit keyword dicts.
        """
        self._plan.app_send_batch(batch, metas)

    def receive_batch(
        self,
        units: Sequence[Any],
        metas: Sequence[dict] | None = None,
    ) -> None:
        """The wire hands an in-order batch to the bottom sublayer."""
        self._plan.wire_receive_batch(units, metas)

    # ------------------------------------------------------------------
    def order(self) -> list[str]:
        """Sublayer names, top to bottom (the T1 ordering)."""
        return [s.name for s in self.sublayers]

    def replace(self, old_name: str, new_sublayer: Sublayer) -> "Stack":
        """A new stack with one sublayer swapped out.

        This is the paper's *fungibility* operation (challenge 5): any
        sublayer can be replaced by an implementation honouring the same
        service interface and header contract, without touching the
        others.  The original stack is left untouched; the new stack
        inherits the full wiring configuration — clock, logs, metrics,
        tier, taps, span hook, and both endpoint sinks — so a swap in
        the middle of an instrumented experiment keeps its telemetry.
        """
        replaced = False
        new_layers: list[Sublayer] = []
        for sublayer in self.sublayers:
            if sublayer.name == old_name:
                new_layers.append(new_sublayer)
                replaced = True
            else:
                new_layers.append(sublayer.clone_fresh())
        if not replaced:
            raise ConfigurationError(
                f"no sublayer {old_name!r} to replace in stack {self.name!r}"
            )
        twin = Stack(
            self.name,
            new_layers,
            clock=self.clock,
            access_log=self._full_access_log,
            interface_log=self._full_interface_log,
            metrics=self.metrics,
            tier=self._tier,
            lossy_delivery=self.lossy_delivery,
        )
        twin.taps = list(self._taps)
        twin.span_hook = self._span_hook
        twin.hop_latency = self._hop_latency
        twin.on_transmit = self._on_transmit
        twin.on_deliver = self._on_deliver
        twin.on_transmit_batch = self._on_transmit_batch
        twin.on_deliver_batch = self._on_deliver_batch
        if twin._codegen_enabled != self._codegen_enabled:
            twin.codegen_enabled = self._codegen_enabled
        return twin

    def insert(
        self, anchor: str, new_sublayer: Sublayer, where: str = "after"
    ) -> "Stack":
        """Splice an extra sublayer next to ``anchor``, in place.

        Where :meth:`replace` swaps an implementation, ``insert`` adds a
        slot — the sublayering operation behind fault injection
        (:mod:`repro.faults`): the newcomer lands ``"before"`` (above)
        or ``"after"`` (below) the named sublayer, the control plane is
        rewired over the resulting order (transparent sublayers are
        skipped, so an inserted fault never severs a service port or a
        notification connection), and the wiring plan recompiles at the
        current tier.  Existing sublayers keep their state; only the
        newcomer's :meth:`~Sublayer.on_attach` runs.
        """
        if where not in ("before", "after"):
            raise ConfigurationError(
                f"insert position must be 'before' or 'after', got {where!r}"
            )
        if new_sublayer.name in self._index:
            raise ConfigurationError(
                f"duplicate sublayer name {new_sublayer.name!r} "
                f"in stack {self.name!r}"
            )
        position = self.sublayers.index(self.sublayer(anchor))
        if where == "after":
            position += 1
        self._install(new_sublayer)
        self.sublayers.insert(position, new_sublayer)
        self._index[new_sublayer.name] = new_sublayer
        self._wire_control()
        self._plan.compile()
        with acting_as(new_sublayer.name):
            new_sublayer.on_attach()
        return self

    def __repr__(self) -> str:
        return f"Stack({self.name!r}, {' > '.join(self.order())})"
