"""Sublayer composition: assembling an ordered stack and wiring it.

A :class:`Stack` takes sublayers listed *top to bottom* (the T1 order)
and wires each to exactly its neighbours:

* downward data path: each sublayer's ``send_down`` reaches the next
  lower sublayer's ``from_above``; the bottom sublayer's output goes to
  the stack's ``on_transmit`` callback (typically a simulated link);
* upward data path: ``deliver_up`` reaches the next higher sublayer's
  ``from_below``; the top sublayer's output goes to ``on_deliver``
  (the application);
* control: each sublayer gets one :class:`BoundPort` onto the service
  interface of the sublayer directly below (T2), and the stack
  auto-connects a lower sublayer's notifications to ``nf_<channel>``
  methods on the sublayer immediately above.

Every callback runs under :func:`repro.core.instrument.acting_as` for
the sublayer's own name, and every data-path hop is logged as a
crossing, which is what makes the T2/T3 litmus tests and the C3 tuning
benchmark measurements rather than assertions.
"""

from __future__ import annotations

from typing import Any, Callable

from .clock import Clock, ManualClock
from .errors import ConfigurationError
from .instrument import AccessLog, InstrumentedState, acting_as
from .interface import BoundPort, InterfaceCall, InterfaceLog, Notification
from .metrics import MetricsSink, scoped
from .sublayer import Sublayer

APP = "_app"
WIRE = "_wire"


class Stack:
    """An ordered composition of sublayers forming one protocol layer."""

    def __init__(
        self,
        name: str,
        sublayers: list[Sublayer],
        clock: Clock | None = None,
        access_log: AccessLog | None = None,
        interface_log: InterfaceLog | None = None,
        metrics: MetricsSink | None = None,
    ):
        if not sublayers:
            raise ConfigurationError("a stack needs at least one sublayer")
        names = [s.name for s in sublayers]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate sublayer names in stack {name!r}")
        self.name = name
        self.sublayers: list[Sublayer] = list(sublayers)  # top -> bottom
        self.clock: Clock = clock if clock is not None else ManualClock()
        self.access_log = access_log if access_log is not None else AccessLog()
        self.interface_log = (
            interface_log if interface_log is not None else InterfaceLog()
        )
        self.metrics = metrics
        self.on_deliver: Callable[..., None] | None = None
        self.on_transmit: Callable[..., None] | None = None
        # Observers of every data-path hop: fn(direction, caller, provider, sdu, meta).
        # Contract monitors and the litmus checker attach here.
        self.taps: list[Callable[[str, str, str, Any, dict], None]] = []
        # Optional span factory: fn(direction, caller, provider, sdu, meta)
        # returning a context manager that brackets the receiving
        # sublayer's processing of the hop.  Installed from outside
        # (repro.obs.SpanTracer.attach); when None, hops pay only this
        # attribute's None check.
        self.span_hook: Callable[[str, str, str, Any, dict], Any] | None = None
        self._wire()

    def _tap(self, direction: str, caller: str, provider: str, sdu: Any, meta: dict) -> None:
        for tap in self.taps:
            tap(direction, caller, provider, sdu, meta)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _wire(self) -> None:
        for sublayer in self.sublayers:
            sublayer.stack_name = self.name
            sublayer.clock = self.clock
            sublayer.metrics = scoped(self.metrics, f"{self.name}/{sublayer.name}")
            sublayer.state = InstrumentedState(sublayer.name, log=self.access_log)
            sublayer.notifications = {
                channel: Notification(channel, sublayer.name, self.interface_log)
                for channel in sublayer.NOTIFICATIONS
            }

        for index, sublayer in enumerate(self.sublayers):
            above = self.sublayers[index - 1] if index > 0 else None
            below = (
                self.sublayers[index + 1]
                if index + 1 < len(self.sublayers)
                else None
            )
            sublayer._send_down = self._make_down_hop(sublayer, below)
            sublayer._deliver_up = self._make_up_hop(sublayer, above)
            if below is not None and below.SERVICE is not None:
                sublayer.below = BoundPort(
                    below.SERVICE,
                    below,
                    below.name,
                    sublayer.name,
                    self.interface_log,
                )
            if below is not None:
                self._connect_notifications(user=sublayer, provider=below)

        for sublayer in self.sublayers:
            with acting_as(sublayer.name):
                sublayer.on_attach()

    def _connect_notifications(self, user: Sublayer, provider: Sublayer) -> None:
        for channel, notification in provider.notifications.items():
            handler = getattr(user, f"nf_{channel}", None)
            if callable(handler):
                notification.connect(user.name, handler)

    def _make_down_hop(
        self, sender: Sublayer, below: Sublayer | None
    ) -> Callable[..., None]:
        def hop(sdu: Any, **meta: Any) -> None:
            if below is not None:
                self.interface_log.record(
                    InterfaceCall(
                        interface=f"data:{self.name}",
                        primitive="send",
                        caller=sender.name,
                        provider=below.name,
                        arg_count=1,
                    )
                )
                self._tap("down", sender.name, below.name, sdu, meta)
                if self.span_hook is None:
                    with acting_as(below.name):
                        below.from_above(sdu, **meta)
                else:
                    with self.span_hook("down", sender.name, below.name, sdu, meta):
                        with acting_as(below.name):
                            below.from_above(sdu, **meta)
            else:
                self.interface_log.record(
                    InterfaceCall(
                        interface=f"data:{self.name}",
                        primitive="send",
                        caller=sender.name,
                        provider=WIRE,
                        arg_count=1,
                    )
                )
                self._tap("down", sender.name, WIRE, sdu, meta)
                if self.on_transmit is None:
                    raise ConfigurationError(
                        f"stack {self.name!r} has no on_transmit sink"
                    )
                if self.span_hook is None:
                    self.on_transmit(sdu, **meta)
                else:
                    with self.span_hook("down", sender.name, WIRE, sdu, meta):
                        self.on_transmit(sdu, **meta)

        return hop

    def _make_up_hop(
        self, sender: Sublayer, above: Sublayer | None
    ) -> Callable[..., None]:
        def hop(sdu: Any, **meta: Any) -> None:
            if above is not None:
                self.interface_log.record(
                    InterfaceCall(
                        interface=f"data:{self.name}",
                        primitive="deliver",
                        caller=sender.name,
                        provider=above.name,
                        arg_count=1,
                    )
                )
                self._tap("up", sender.name, above.name, sdu, meta)
                if self.span_hook is None:
                    with acting_as(above.name):
                        above.from_below(sdu, **meta)
                else:
                    with self.span_hook("up", sender.name, above.name, sdu, meta):
                        with acting_as(above.name):
                            above.from_below(sdu, **meta)
            else:
                self.interface_log.record(
                    InterfaceCall(
                        interface=f"data:{self.name}",
                        primitive="deliver",
                        caller=sender.name,
                        provider=APP,
                        arg_count=1,
                    )
                )
                self._tap("up", sender.name, APP, sdu, meta)
                if self.on_deliver is not None:
                    if self.span_hook is None:
                        self.on_deliver(sdu, **meta)
                    else:
                        with self.span_hook("up", sender.name, APP, sdu, meta):
                            self.on_deliver(sdu, **meta)

        return hop

    # ------------------------------------------------------------------
    # Application / wire endpoints
    # ------------------------------------------------------------------
    @property
    def top(self) -> Sublayer:
        return self.sublayers[0]

    @property
    def bottom(self) -> Sublayer:
        return self.sublayers[-1]

    def sublayer(self, name: str) -> Sublayer:
        for sublayer in self.sublayers:
            if sublayer.name == name:
                return sublayer
        raise ConfigurationError(f"no sublayer {name!r} in stack {self.name!r}")

    def send(self, data: Any, **meta: Any) -> None:
        """Application hands data to the top sublayer."""
        self.interface_log.record(
            InterfaceCall(
                interface=f"data:{self.name}",
                primitive="send",
                caller=APP,
                provider=self.top.name,
                arg_count=1,
            )
        )
        self._tap("down", APP, self.top.name, data, meta)
        if self.span_hook is None:
            with acting_as(self.top.name):
                self.top.from_above(data, **meta)
        else:
            with self.span_hook("down", APP, self.top.name, data, meta):
                with acting_as(self.top.name):
                    self.top.from_above(data, **meta)

    def receive(self, pdu: Any, **meta: Any) -> None:
        """The wire hands a PDU to the bottom sublayer."""
        self.interface_log.record(
            InterfaceCall(
                interface=f"data:{self.name}",
                primitive="deliver",
                caller=WIRE,
                provider=self.bottom.name,
                arg_count=1,
            )
        )
        self._tap("up", WIRE, self.bottom.name, pdu, meta)
        if self.span_hook is None:
            with acting_as(self.bottom.name):
                self.bottom.from_below(pdu, **meta)
        else:
            with self.span_hook("up", WIRE, self.bottom.name, pdu, meta):
                with acting_as(self.bottom.name):
                    self.bottom.from_below(pdu, **meta)

    # ------------------------------------------------------------------
    def order(self) -> list[str]:
        """Sublayer names, top to bottom (the T1 ordering)."""
        return [s.name for s in self.sublayers]

    def replace(self, old_name: str, new_sublayer: Sublayer) -> "Stack":
        """A new stack with one sublayer swapped out.

        This is the paper's *fungibility* operation (challenge 5): any
        sublayer can be replaced by an implementation honouring the same
        service interface and header contract, without touching the
        others.  The original stack is left untouched.
        """
        replaced = False
        new_layers: list[Sublayer] = []
        for sublayer in self.sublayers:
            if sublayer.name == old_name:
                new_layers.append(new_sublayer)
                replaced = True
            else:
                new_layers.append(sublayer.clone_fresh())
        if not replaced:
            raise ConfigurationError(
                f"no sublayer {old_name!r} to replace in stack {self.name!r}"
            )
        return Stack(self.name, new_layers, clock=self.clock)

    def __repr__(self) -> str:
        return f"Stack({self.name!r}, {' > '.join(self.order())})"
