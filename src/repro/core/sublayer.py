"""The sublayer abstraction — the paper's unit of decomposition.

A :class:`Sublayer` is one slice of a layer, satisfying the paper's
three litmus tests by construction where possible and by measurement
(see :mod:`repro.core.litmus`) where not:

**T1 (ordered, peer-wise):** sublayers live in a totally ordered
:class:`~repro.core.stack.Stack`; each one improves the service of the
sublayer below and communicates with its *peer* sublayer in another
node by reading exactly the header its peer wrote.

**T2 (narrow interfaces):** a sublayer's only handles on its neighbours
are the data path (``send_down`` / ``deliver_up``), one
:class:`~repro.core.interface.BoundPort` onto the service interface of
the sublayer directly below, and upward
:class:`~repro.core.interface.Notification` channels.  There is no way
to reach a non-adjacent sublayer.

**T3 (separate bits, mechanisms, state):** a sublayer's state lives in
its own :class:`~repro.core.instrument.InstrumentedState`; its header
fields are declared in its own :class:`~repro.core.header.HeaderFormat`
and stripped before the SDU is delivered upward, so other sublayers
never see them.

Subclasses override the ``on_*`` hooks; the wiring attributes
(``state``, ``below``, ``clock`` ...) are installed by the stack before
:meth:`on_attach` runs.
"""

from __future__ import annotations

from typing import Any, Callable

from .clock import Clock
from .errors import ConfigurationError
from .header import HeaderFormat
from .instrument import InstrumentedState
from .interface import BoundPort, Notification, ServiceInterface
from .metrics import NULL_METRICS, MetricsSink
from .pdu import Pdu


class Sublayer:
    """Base class for all sublayers.

    Class attributes subclasses may define:

    ``SERVICE``
        The :class:`ServiceInterface` offered to the sublayer above
        (``None`` if the sublayer offers only the data path).
    ``NOTIFICATIONS``
        Names of upward event channels this sublayer can fire.
    ``HEADER``
        The :class:`HeaderFormat` for this sublayer's peer-to-peer
        header (``None`` for header-less sublayers).
    ``TRANSPARENT``
        ``True`` for sublayers that sit on the data path without taking
        part in the layering contract: they offer no service, own no
        header, and their neighbours must not be able to tell they are
        there.  Control wiring (service ports, notifications) skips
        over transparent sublayers, the litmus adjacency checks treat
        the sublayers around them as adjacent, and the compose-time
        layer-order validation ignores them.  Fault-injection sublayers
        (:mod:`repro.faults`) are the canonical use.
    """

    SERVICE: ServiceInterface | None = None
    NOTIFICATIONS: tuple[str, ...] = ()
    HEADER: HeaderFormat | None = None
    TRANSPARENT: bool = False

    def __init__(self, name: str):
        """Create an unattached sublayer; wiring is installed by ``Stack``."""
        if not name:
            raise ConfigurationError("sublayer name must be non-empty")
        self.name = name
        # Wiring installed by Stack.attach():
        self.state: InstrumentedState = None  # type: ignore[assignment]
        self.below: BoundPort | None = None
        self.clock: Clock = None  # type: ignore[assignment]
        self.metrics: MetricsSink = NULL_METRICS
        self.notifications: dict[str, Notification] = {}
        self._send_down: Callable[[Pdu | Any], None] | None = None
        self._deliver_up: Callable[..., None] | None = None
        self.stack_name: str = "?"

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def on_attach(self) -> None:
        """Called once the sublayer is wired into a stack.

        Initialize ``self.state`` fields here.
        """

    def from_above(self, sdu: Any, **meta: Any) -> None:
        """Data arriving from the sublayer above (or the application).

        The default behaviour is transparent pass-through; most
        sublayers override this to wrap the SDU in their header.
        """
        self.send_down(sdu, **meta)

    def from_below(self, pdu: Any, **meta: Any) -> None:
        """Data arriving from the sublayer below (or the wire).

        Override to strip this sublayer's header and act on it.
        """
        self.deliver_up(pdu, **meta)

    # ------------------------------------------------------------------
    # Facilities available to subclasses
    # ------------------------------------------------------------------
    def send_down(self, sdu: Any, **meta: Any) -> None:
        """Hand an SDU/PDU to the sublayer below (data path, downward)."""
        if self._send_down is None:
            raise ConfigurationError(f"sublayer {self.name!r} is not attached")
        self._send_down(sdu, **meta)

    def deliver_up(self, sdu: Any, **meta: Any) -> None:
        """Hand an SDU to the sublayer above (data path, upward)."""
        if self._deliver_up is None:
            raise ConfigurationError(f"sublayer {self.name!r} is not attached")
        self._deliver_up(sdu, **meta)

    def wrap(self, header: dict[str, int], inner: Any) -> Pdu:
        """Build this sublayer's PDU around ``inner``."""
        return Pdu(self.name, self.HEADER, header, inner)

    def count(self, field: str, by: int = 1) -> None:
        """Increment a state counter and mirror it to the metrics sink.

        The counter stays in ``self.state`` (protocol-visible, subject
        to the T3 ownership check like any other state) while the same
        increment reaches whatever metrics backend the stack installed,
        so one bookkeeping site feeds both the litmus instrumentation
        and the observability registry.
        """
        setattr(self.state, field, getattr(self.state, field) + by)
        self.metrics.inc(field, by)

    def notify(self, channel: str, *args: Any, **kwargs: Any) -> Any:
        """Fire an upward notification, if anyone is connected."""
        notification = self.notifications.get(channel)
        if notification is None:
            raise ConfigurationError(
                f"sublayer {self.name!r} declares no notification {channel!r}"
            )
        return notification.fire(*args, **kwargs)

    def clone_fresh(self) -> "Sublayer":
        """A new, unwired instance with the same configuration.

        Used by :meth:`repro.core.stack.Stack.replace` to rebuild the
        unchanged sublayers of a stack.  Subclasses whose constructors
        take configuration beyond ``name`` must override this.
        """
        return type(self)(self.name)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class PassthroughSublayer(Sublayer):
    """A sublayer that forwards data unchanged in both directions.

    Useful as a placement holder in litmus experiments and as the base
    for shims that only translate representations.
    """
