"""The sublayer abstraction — the paper's unit of decomposition.

A :class:`Sublayer` is one slice of a layer, satisfying the paper's
three litmus tests by construction where possible and by measurement
(see :mod:`repro.core.litmus`) where not:

**T1 (ordered, peer-wise):** sublayers live in a totally ordered
:class:`~repro.core.stack.Stack`; each one improves the service of the
sublayer below and communicates with its *peer* sublayer in another
node by reading exactly the header its peer wrote.

**T2 (narrow interfaces):** a sublayer's only handles on its neighbours
are the data path (``send_down`` / ``deliver_up``), one
:class:`~repro.core.interface.BoundPort` onto the service interface of
the sublayer directly below, and upward
:class:`~repro.core.interface.Notification` channels.  There is no way
to reach a non-adjacent sublayer.

**T3 (separate bits, mechanisms, state):** a sublayer's state lives in
its own :class:`~repro.core.instrument.InstrumentedState`; its header
fields are declared in its own :class:`~repro.core.header.HeaderFormat`
and stripped before the SDU is delivered upward, so other sublayers
never see them.

Subclasses override the ``on_*`` hooks; the wiring attributes
(``state``, ``below``, ``clock`` ...) are installed by the stack before
:meth:`on_attach` runs.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .clock import Clock
from .codegen import IDENTITY
from .errors import ConfigurationError
from .header import HeaderFormat
from .instrument import InstrumentedState
from .interface import BoundPort, Notification, ServiceInterface
from .metrics import NULL_METRICS, MetricsSink
from .pdu import Pdu


class Sublayer:
    """Base class for all sublayers.

    Class attributes subclasses may define:

    ``SERVICE``
        The :class:`ServiceInterface` offered to the sublayer above
        (``None`` if the sublayer offers only the data path).
    ``NOTIFICATIONS``
        Names of upward event channels this sublayer can fire.
    ``HEADER``
        The :class:`HeaderFormat` for this sublayer's peer-to-peer
        header (``None`` for header-less sublayers).
    ``TRANSPARENT``
        ``True`` for sublayers that sit on the data path without taking
        part in the layering contract: they offer no service, own no
        header, and their neighbours must not be able to tell they are
        there.  Control wiring (service ports, notifications) skips
        over transparent sublayers, the litmus adjacency checks treat
        the sublayers around them as adjacent, and the compose-time
        layer-order validation ignores them.  Fault-injection sublayers
        (:mod:`repro.faults`) are the canonical use.
    """

    SERVICE: ServiceInterface | None = None
    NOTIFICATIONS: tuple[str, ...] = ()
    HEADER: HeaderFormat | None = None
    TRANSPARENT: bool = False

    def __init__(self, name: str):
        """Create an unattached sublayer; wiring is installed by ``Stack``."""
        if not name:
            raise ConfigurationError("sublayer name must be non-empty")
        self.name = name
        # Wiring installed by Stack.attach():
        self.state: InstrumentedState = None  # type: ignore[assignment]
        self.below: BoundPort | None = None
        self.clock: Clock = None  # type: ignore[assignment]
        self.metrics: MetricsSink = NULL_METRICS
        self.notifications: dict[str, Notification] = {}
        self._send_down: Callable[[Pdu | Any], None] | None = None
        self._deliver_up: Callable[..., None] | None = None
        self._send_down_batch: Callable[..., None] | None = None
        self._deliver_up_batch: Callable[..., None] | None = None
        self.stack_name: str = "?"

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def on_attach(self) -> None:
        """Called once the sublayer is wired into a stack.

        Initialize ``self.state`` fields here.
        """

    def from_above(self, sdu: Any, **meta: Any) -> None:
        """Data arriving from the sublayer above (or the application).

        The default behaviour is transparent pass-through; most
        sublayers override this to wrap the SDU in their header.
        """
        self.send_down(sdu, **meta)

    def from_below(self, pdu: Any, **meta: Any) -> None:
        """Data arriving from the sublayer below (or the wire).

        Override to strip this sublayer's header and act on it.
        """
        self.deliver_up(pdu, **meta)

    # ------------------------------------------------------------------
    # Vector protocol
    # ------------------------------------------------------------------
    def from_above_batch(
        self,
        sdus: Sequence[Any],
        metas: Sequence[dict] | None = None,
    ) -> None:
        """A batch of SDUs arriving from above, in order.

        The default loops the scalar :meth:`from_above` per element, so
        any sublayer is batch-correct for free; hot sublayers override
        this to amortize per-unit work (and typically forward with one
        :meth:`send_down_batch`).  ``metas``, when given, is a parallel
        sequence of per-unit keyword dicts (``len(metas) == len(sdus)``).
        Overrides must preserve per-unit ordering exactly — the
        differential rig compares batch runs against scalar runs byte
        for byte.
        """
        if metas is None:
            for sdu in sdus:
                self.from_above(sdu)
        else:
            for sdu, meta in zip(sdus, metas):
                self.from_above(sdu, **meta)

    def from_below_batch(
        self,
        pdus: Sequence[Any],
        metas: Sequence[dict] | None = None,
    ) -> None:
        """A batch of PDUs arriving from below, in order.

        Same contract as :meth:`from_above_batch`, upward.
        """
        if metas is None:
            for pdu in pdus:
                self.from_below(pdu)
        else:
            for pdu, meta in zip(pdus, metas):
                self.from_below(pdu, **meta)

    # ------------------------------------------------------------------
    # Codegen fusion hooks
    # ------------------------------------------------------------------
    def fuse_down(self) -> Any:
        """Downward fuse step for the tier=off codegen fast path.

        Return ``None`` (the default) to opt out — the stack direction
        then keeps the per-hop chain walk.  Return
        :data:`~repro.core.codegen.IDENTITY` for pure pass-through, or
        a ``step(sdu, meta) -> sdu | DROP`` callable that mirrors
        :meth:`from_above` exactly (state counters, exceptions, drops).
        See :mod:`repro.core.codegen` for the full contract.
        """
        return None

    def fuse_up(self) -> Any:
        """Upward fuse step mirroring :meth:`from_below`; see :meth:`fuse_down`."""
        return None

    # ------------------------------------------------------------------
    # Facilities available to subclasses
    # ------------------------------------------------------------------
    def send_down(self, sdu: Any, **meta: Any) -> None:
        """Hand an SDU/PDU to the sublayer below (data path, downward)."""
        if self._send_down is None:
            raise ConfigurationError(f"sublayer {self.name!r} is not attached")
        self._send_down(sdu, **meta)

    def deliver_up(self, sdu: Any, **meta: Any) -> None:
        """Hand an SDU to the sublayer above (data path, upward)."""
        if self._deliver_up is None:
            raise ConfigurationError(f"sublayer {self.name!r} is not attached")
        self._deliver_up(sdu, **meta)

    def send_down_batch(
        self,
        sdus: Sequence[Any],
        metas: Sequence[dict] | None = None,
    ) -> None:
        """Hand an in-order batch to the sublayer below in one crossing."""
        if self._send_down_batch is None:
            raise ConfigurationError(f"sublayer {self.name!r} is not attached")
        self._send_down_batch(sdus, metas)

    def deliver_up_batch(
        self,
        sdus: Sequence[Any],
        metas: Sequence[dict] | None = None,
    ) -> None:
        """Hand an in-order batch to the sublayer above in one crossing."""
        if self._deliver_up_batch is None:
            raise ConfigurationError(f"sublayer {self.name!r} is not attached")
        self._deliver_up_batch(sdus, metas)

    def wrap(self, header: dict[str, int], inner: Any) -> Pdu:
        """Build this sublayer's PDU around ``inner``."""
        return Pdu(self.name, self.HEADER, header, inner)

    def count(self, field: str, by: int = 1) -> None:
        """Increment a state counter and mirror it to the metrics sink.

        The counter stays in ``self.state`` (protocol-visible, subject
        to the T3 ownership check like any other state) while the same
        increment reaches whatever metrics backend the stack installed,
        so one bookkeeping site feeds both the litmus instrumentation
        and the observability registry.
        """
        setattr(self.state, field, getattr(self.state, field) + by)
        self.metrics.inc(field, by)

    def notify(self, channel: str, *args: Any, **kwargs: Any) -> Any:
        """Fire an upward notification, if anyone is connected."""
        notification = self.notifications.get(channel)
        if notification is None:
            raise ConfigurationError(
                f"sublayer {self.name!r} declares no notification {channel!r}"
            )
        return notification.fire(*args, **kwargs)

    def clone_fresh(self) -> "Sublayer":
        """A new, unwired instance with the same configuration.

        Used by :meth:`repro.core.stack.Stack.replace` to rebuild the
        unchanged sublayers of a stack.  Subclasses whose constructors
        take configuration beyond ``name`` must override this.
        """
        return type(self)(self.name)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class PassthroughSublayer(Sublayer):
    """A sublayer that forwards data unchanged in both directions.

    Useful as a placement holder in litmus experiments and as the base
    for shims that only translate representations.
    """

    def fuse_down(self) -> Any:
        """Pure pass-through: eliminated from the fused fast path.

        Subclasses that override :meth:`from_above` are no longer pure
        pass-through, so the inherited fuse opts out for them.
        """
        if type(self).from_above is not Sublayer.from_above:
            return None
        return IDENTITY

    def fuse_up(self) -> Any:
        """Pure pass-through: eliminated from the fused fast path."""
        if type(self).from_below is not Sublayer.from_below:
            return None
        return IDENTITY
