"""Compiled data-path wiring plans with instrumentation tiers.

Every data-path hop in a :class:`~repro.core.stack.Stack` used to pay
for the full measurement apparatus — an :class:`InterfaceCall`
allocation, a walk of the tap list, a ``span_hook`` check, and an
:func:`~repro.core.instrument.acting_as` context switch — whether or
not anything was watching.  This module makes the observability level
an explicit *compilation* choice: composition is described once, then
compiled to the cheapest hop functions the requested tier allows.

Three tiers:

``full``
    Everything the litmus methodology needs: every crossing is recorded
    in the interface log, every state access in the access log, taps
    and spans fire, and each callback runs under ``acting_as`` so state
    mutations are attributed to the right sublayer.  Litmus tests and
    contract monitors require this tier; it is the default.

``metrics``
    Counters only.  Hops bump cheap per-direction crossing counters
    (:class:`HopCounters`) and nothing else; the interface and access
    logs are replaced by :class:`~repro.core.interface.NullInterfaceLog`
    and :class:`~repro.core.instrument.NullAccessLog`, so per-crossing
    and per-state-access bookkeeping vanishes while "how many crossings
    did we pay for" stays answerable.

``off``
    Hops are direct bound-method chains — a sublayer's ``send_down``
    *is* the next sublayer's ``from_above``.  Both logs are null.  This
    is the "fast as the hardware allows" configuration the C7 hop-cost
    benchmark quantifies.

The tier sets the baseline; attaching an observer *raises* what must be
observed.  When :meth:`repro.obs.SpanTracer.attach` installs a span
hook, or a tap is added to :class:`TapList`, the plan recompiles and
the new hop functions include exactly the extra work the observer
needs — at any tier.  Detaching recompiles back down.  This is the
measure-everything-but-pay-only-when-watching discipline: the
architecture is identical at every tier (same sublayers, same headers,
same virtual-time behaviour); only per-crossing host work changes.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Sequence

from .codegen import compile_fused, fuse_steps
from .errors import ConfigurationError
from .instrument import acting_as
from .interface import InterfaceCall

# NOTE: this module must not import repro.core.stack (layer-order check
# forbids the cycle); the plan holds its Stack untyped.

#: Pseudo-actors for the stack's two ends: the application above the
#: top sublayer and the wire below the bottom one.
APP = "_app"
WIRE = "_wire"

TIER_FULL = "full"
TIER_METRICS = "metrics"
TIER_OFF = "off"

#: All instrumentation tiers, most to least observable.
TIERS = (TIER_FULL, TIER_METRICS, TIER_OFF)


def _scalar_loop(sink: Callable[..., None]) -> Callable[..., None]:
    """Adapt a scalar endpoint/hop into the batch calling convention."""
    def loop(
        sdus: Sequence[Any],
        metas: Sequence[dict] | None = None,
    ) -> None:
        if metas is None:
            for sdu in sdus:
                sink(sdu)
        else:
            for sdu, meta in zip(sdus, metas):
                sink(sdu, **meta)
    return loop


def validate_tier(tier: str) -> str:
    """Return ``tier`` or raise :class:`ConfigurationError`."""
    if tier not in TIERS:
        raise ConfigurationError(
            f"unknown instrumentation tier {tier!r}; choose from {TIERS}"
        )
    return tier


class HopCounters:
    """Cheap crossing counters — the ``metrics`` tier's entire books.

    Plain integer attributes on a slotted object: one ``+= 1`` per hop,
    no allocation, no string formatting.  ``publish`` mirrors the
    totals into a metrics sink on demand (never per hop).
    """

    __slots__ = ("down", "up", "dropped_deliveries")

    def __init__(self) -> None:
        self.down = 0
        self.up = 0
        self.dropped_deliveries = 0

    def total(self) -> int:
        """All data-path crossings, both directions."""
        return self.down + self.up

    def snapshot(self) -> dict[str, int]:
        return {
            "down": self.down,
            "up": self.up,
            "dropped_deliveries": self.dropped_deliveries,
        }

    def reset(self) -> None:
        self.down = 0
        self.up = 0
        self.dropped_deliveries = 0

    def __repr__(self) -> str:
        return (
            f"HopCounters(down={self.down}, up={self.up}, "
            f"dropped_deliveries={self.dropped_deliveries})"
        )


class TapList(list):
    """A list of hop observers that reports every mutation.

    The wiring plan compiles the tap walk into the hop functions only
    when taps exist, so adding or removing one must trigger
    recompilation — the ``on_change`` callback is the stack's hook for
    that.  All the usual list mutators are covered; iteration and
    reads are plain ``list``.
    """

    def __init__(
        self,
        iterable: Any = (),
        on_change: Callable[[], None] | None = None,
    ) -> None:
        super().__init__(iterable)
        self._on_change = on_change

    def _changed(self) -> None:
        if self._on_change is not None:
            self._on_change()

    def append(self, item: Any) -> None:
        super().append(item)
        self._changed()

    def extend(self, items: Any) -> None:
        super().extend(items)
        self._changed()

    def insert(self, index: int, item: Any) -> None:
        super().insert(index, item)
        self._changed()

    def remove(self, item: Any) -> None:
        super().remove(item)
        self._changed()

    def pop(self, index: int = -1) -> Any:
        out = super().pop(index)
        self._changed()
        return out

    def clear(self) -> None:
        super().clear()
        self._changed()

    def __iadd__(self, other: Any) -> "TapList":
        super().extend(other)
        self._changed()
        return self


class WiringPlan:
    """Compiled hop functions for one stack at one instrumentation tier.

    The plan owns no policy: it reads the stack's current observability
    needs (tier, taps, span hook, endpoints) and emits one closure per
    hop.  :meth:`compile` is cheap — a handful of closure allocations —
    so it reruns whenever anything observable changes.
    """

    def __init__(self, stack: Any, tier: str = TIER_FULL) -> None:
        self.stack = stack
        self.tier = validate_tier(tier)
        self.counters = HopCounters()
        #: How many times this plan has been compiled (tests and
        #: debugging; recompilation should track observer changes).
        self.compilations = 0
        self.app_send: Callable[..., None] = self._uncompiled
        self.wire_receive: Callable[..., None] = self._uncompiled
        self.app_send_batch: Callable[..., None] = self._uncompiled
        self.wire_receive_batch: Callable[..., None] = self._uncompiled
        #: Which directions currently run the fused codegen fast path.
        self.fused: dict[str, bool] = {"down": False, "up": False}
        #: Generated source per fused direction (debugging/tests).
        self.codegen_source: dict[str, str | None] = {"down": None, "up": None}

    def _uncompiled(self, *args: Any, **kwargs: Any) -> None:
        raise ConfigurationError(
            f"stack {self.stack.name!r} has no compiled wiring plan"
        )

    # ------------------------------------------------------------------
    def compile(self) -> None:
        """(Re)build every hop closure from the stack's current state."""
        sublayers = self.stack.sublayers
        for index, sublayer in enumerate(sublayers):
            above = sublayers[index - 1] if index > 0 else None
            below = (
                sublayers[index + 1]
                if index + 1 < len(sublayers)
                else None
            )
            if below is not None:
                sublayer._send_down = self._hop(
                    "down", "send", sublayer.name, below.name,
                    below.from_above, acting=below.name,
                )
                sublayer._send_down_batch = self._batch_hop(
                    "down", sublayer.name, sublayer._send_down,
                    below.from_above_batch,
                )
            else:
                sublayer._send_down = self._wire_hop(sublayer.name)
                sublayer._send_down_batch = self._batch_hop(
                    "down", sublayer.name, sublayer._send_down,
                    self._transmit_batch_target(),
                )
            if above is not None:
                sublayer._deliver_up = self._hop(
                    "up", "deliver", sublayer.name, above.name,
                    above.from_below, acting=above.name,
                )
                sublayer._deliver_up_batch = self._batch_hop(
                    "up", sublayer.name, sublayer._deliver_up,
                    above.from_below_batch,
                )
            else:
                sublayer._deliver_up = self._app_hop(sublayer.name)
                sublayer._deliver_up_batch = self._batch_hop(
                    "up", sublayer.name, sublayer._deliver_up,
                    self._deliver_batch_target(),
                )
        top, bottom = sublayers[0], sublayers[-1]
        self.app_send = self._hop(
            "down", "send", APP, top.name, top.from_above, acting=top.name
        )
        self.wire_receive = self._hop(
            "up", "deliver", WIRE, bottom.name, bottom.from_below,
            acting=bottom.name,
        )
        self.app_send_batch = self._batch_hop(
            "down", APP, self.app_send, top.from_above_batch,
        )
        self.wire_receive_batch = self._batch_hop(
            "up", WIRE, self.wire_receive, bottom.from_below_batch,
        )
        self.fused = {"down": False, "up": False}
        self.codegen_source = {"down": None, "up": None}
        self._maybe_fuse()
        self.compilations += 1

    # ------------------------------------------------------------------
    # Endpoint hops
    # ------------------------------------------------------------------
    def _transmit_sink(self) -> Callable[..., None]:
        """The scalar wire endpoint: ``on_transmit`` or a raising stub."""
        stack = self.stack
        sink = stack.on_transmit
        if sink is None:
            def sink(sdu: Any, **meta: Any) -> None:
                raise ConfigurationError(
                    f"stack {stack.name!r} has no on_transmit sink"
                )
        return sink

    def _deliver_sink(self) -> Callable[..., None]:
        """The scalar app endpoint: ``on_deliver``, lossy drop, or raise."""
        stack = self.stack
        sink = stack.on_deliver
        if sink is None:
            if stack.lossy_delivery:
                counters = self.counters
                metrics = stack.metrics

                def sink(sdu: Any, **meta: Any) -> None:
                    counters.dropped_deliveries += 1
                    if metrics is not None:
                        metrics.inc(f"{stack.name}/dropped_deliveries")
            else:
                def sink(sdu: Any, **meta: Any) -> None:
                    raise ConfigurationError(
                        f"stack {stack.name!r} has no on_deliver sink "
                        "(set one, or construct the stack with "
                        "lossy_delivery=True to drop and count instead)"
                    )
        return sink

    def _wire_hop(self, caller: str) -> Callable[..., None]:
        """The bottom sublayer's send_down, bound to ``on_transmit``."""
        return self._hop(
            "down", "send", caller, WIRE, self._transmit_sink(), acting=None
        )

    def _app_hop(self, caller: str) -> Callable[..., None]:
        """The top sublayer's deliver_up, bound to ``on_deliver``."""
        return self._hop(
            "up", "deliver", caller, APP, self._deliver_sink(), acting=None
        )

    def _transmit_batch_target(self) -> Callable[..., None]:
        """The batch wire endpoint: ``on_transmit_batch`` or a scalar loop."""
        batch_sink = getattr(self.stack, "on_transmit_batch", None)
        if batch_sink is not None:
            return batch_sink
        return _scalar_loop(self._transmit_sink())

    def _deliver_batch_target(self) -> Callable[..., None]:
        """The batch app endpoint: ``on_deliver_batch``, lossy, or loop."""
        stack = self.stack
        batch_sink = getattr(stack, "on_deliver_batch", None)
        if batch_sink is not None:
            return batch_sink
        if stack.on_deliver is None and stack.lossy_delivery:
            counters = self.counters
            metrics = stack.metrics
            metric_name = f"{stack.name}/dropped_deliveries"

            def drop_batch(
                sdus: Sequence[Any],
                metas: Sequence[dict] | None = None,
            ) -> None:
                n = len(sdus)
                counters.dropped_deliveries += n
                if metrics is not None:
                    metrics.inc(metric_name, n)
            return drop_batch
        return _scalar_loop(self._deliver_sink())

    # ------------------------------------------------------------------
    # The batch hop compiler
    # ------------------------------------------------------------------
    def _batch_hop(
        self,
        direction: str,
        caller: str,
        scalar_hop: Callable[..., None],
        batch_target: Callable[..., None],
    ) -> Callable[..., None]:
        """One compiled batch crossing (``hop(sdus, metas=None)``).

        At the full tier, or whenever any per-element observer is
        attached (taps, span hook), the batch decays to a loop over the
        already-compiled scalar hop so the books stay byte-identical
        with scalar traffic.  At the metrics tier the crossing counter
        bumps once by ``len(sdus)`` and the endpoint latency clock pays
        one ``perf_counter`` pair for the whole batch (observed as
        ``len(sdus)`` samples of the per-unit mean).  At ``off`` the
        batch hop *is* the neighbour's ``from_*_batch``.
        """
        stack = self.stack
        if self.tier == TIER_FULL or stack.span_hook is not None or stack.taps:
            return _scalar_loop(scalar_hop)
        if self.tier == TIER_METRICS:
            counters = self.counters
            call = batch_target
            if caller in (APP, WIRE):
                latency = getattr(stack, "hop_latency", None)
                if latency is not None:
                    observe = latency.observe
                    timed = batch_target

                    def call(
                        sdus: Sequence[Any],
                        metas: Sequence[dict] | None = None,
                    ) -> None:
                        n = len(sdus)
                        if not n:
                            return
                        start = perf_counter()
                        timed(sdus, metas)
                        observe((perf_counter() - start) / n, n)
            if direction == "down":
                def hop(
                    sdus: Sequence[Any],
                    metas: Sequence[dict] | None = None,
                ) -> None:
                    counters.down += len(sdus)
                    call(sdus, metas)
            else:
                def hop(
                    sdus: Sequence[Any],
                    metas: Sequence[dict] | None = None,
                ) -> None:
                    counters.up += len(sdus)
                    call(sdus, metas)
            return hop
        # TIER_OFF, nothing watching: the crossing is the target.
        return batch_target

    # ------------------------------------------------------------------
    # Codegen fusion
    # ------------------------------------------------------------------
    def _maybe_fuse(self) -> None:
        """Swap the plan's entry points for fused codegen fast paths.

        Attempted only at ``tier=off`` with no taps and no span hook
        and with ``Stack.codegen_enabled`` — fusion is all-or-nothing
        per direction (any sublayer opting out keeps that direction on
        the chain walk).  Only the plan-level entry points
        (``app_send``/``wire_receive`` and their batch forms) are
        swapped; the per-sublayer chain hops stay compiled and wired,
        so mid-stack callers (ARQ timers, notifications) are untouched.
        """
        stack = self.stack
        if (
            self.tier != TIER_OFF
            or stack.span_hook is not None
            or stack.taps
            or not getattr(stack, "codegen_enabled", True)
        ):
            return
        sublayers = stack.sublayers
        down_steps = fuse_steps(sublayers, "down")
        if down_steps is not None:
            fused = compile_fused(
                down_steps, "down", stack.name,
                self._transmit_sink(),
                getattr(stack, "on_transmit_batch", None),
            )
            self.app_send = fused.scalar
            self.app_send_batch = fused.batch
            self.fused["down"] = True
            self.codegen_source["down"] = fused.source
        up_steps = fuse_steps(sublayers, "up")
        if up_steps is not None:
            fused = compile_fused(
                up_steps, "up", stack.name,
                self._deliver_sink(),
                getattr(stack, "on_deliver_batch", None),
            )
            self.wire_receive = fused.scalar
            self.wire_receive_batch = fused.batch
            self.fused["up"] = True
            self.codegen_source["up"] = fused.source

    # ------------------------------------------------------------------
    # The hop compiler
    # ------------------------------------------------------------------
    def _hop(
        self,
        direction: str,
        primitive: str,
        caller: str,
        provider: str,
        target: Callable[..., None],
        acting: str | None,
    ) -> Callable[..., None]:
        """One compiled data-path hop.

        Layering, innermost out: actor attribution (full tier,
        sublayer targets only), span bracket (if a hook is attached),
        tap walk (if taps are attached), then the tier's own
        bookkeeping.  Order on the wire-visible side matches the
        historical behaviour exactly: interface record, taps, span,
        acting_as, call.
        """
        stack = self.stack
        hook = stack.span_hook

        if self.tier == TIER_FULL and acting is not None:
            attributed_target = target

            def call(sdu: Any, **meta: Any) -> None:
                with acting_as(acting):
                    attributed_target(sdu, **meta)
        else:
            call = target

        if hook is not None:
            spanned = call
            # A sampling hook returns None for crossings it is not
            # keeping (head-sampled out): the hop then skips the
            # context-manager protocol entirely.  Sampling hooks also
            # expose a ``gate`` — ``[dropping, skipped]`` — that is
            # True for the whole dynamic extent of a head-dropped
            # activation, letting these hops skip even the hook call:
            # two list indexings instead of a frame, which is what
            # keeps sampled tracing within the C12 overhead budget.
            gate = getattr(hook, "gate", None)

            if gate is None:

                def call(sdu: Any, **meta: Any) -> None:
                    span = hook(direction, caller, provider, sdu, meta)
                    if span is None:
                        spanned(sdu, **meta)
                    else:
                        with span:
                            spanned(sdu, **meta)

            else:

                def call(sdu: Any, **meta: Any) -> None:
                    if gate[0]:
                        gate[1] += 1
                        spanned(sdu, **meta)
                        return
                    span = hook(direction, caller, provider, sdu, meta)
                    if span is None:
                        spanned(sdu, **meta)
                    else:
                        with span:
                            spanned(sdu, **meta)

        # Per-traversal latency clock pair: metrics tier only, endpoint
        # entry hops only (app_send going down, wire_receive coming
        # up), so each PDU costs exactly one perf_counter pair however
        # deep the stack is.  Because hops are synchronous, the pair
        # brackets the PDU's full crossing of this stack — "hop" in the
        # network sense.  Wall-clock, hence strictly opt-in: campaign
        # scenarios must not enable it or their reports stop being
        # deterministic.
        if self.tier == TIER_METRICS and caller in (APP, WIRE):
            latency = getattr(stack, "hop_latency", None)
            if latency is not None:
                observe = latency.observe
                timed = call

                def call(sdu: Any, **meta: Any) -> None:
                    start = perf_counter()
                    timed(sdu, **meta)
                    observe(perf_counter() - start)

        taps = tuple(stack.taps)

        if self.tier == TIER_FULL:
            record = stack.interface_log.record
            interface = f"data:{stack.name}"
            if taps:
                def hop(sdu: Any, **meta: Any) -> None:
                    record(InterfaceCall(interface, primitive, caller, provider, 1))
                    for tap in taps:
                        tap(direction, caller, provider, sdu, meta)
                    call(sdu, **meta)
            else:
                def hop(sdu: Any, **meta: Any) -> None:
                    record(InterfaceCall(interface, primitive, caller, provider, 1))
                    call(sdu, **meta)
            return hop

        if self.tier == TIER_METRICS:
            counters = self.counters
            if direction == "down":
                if taps:
                    def hop(sdu: Any, **meta: Any) -> None:
                        counters.down += 1
                        for tap in taps:
                            tap(direction, caller, provider, sdu, meta)
                        call(sdu, **meta)
                else:
                    def hop(sdu: Any, **meta: Any) -> None:
                        counters.down += 1
                        call(sdu, **meta)
            else:
                if taps:
                    def hop(sdu: Any, **meta: Any) -> None:
                        counters.up += 1
                        for tap in taps:
                            tap(direction, caller, provider, sdu, meta)
                        call(sdu, **meta)
                else:
                    def hop(sdu: Any, **meta: Any) -> None:
                        counters.up += 1
                        call(sdu, **meta)
            return hop

        # TIER_OFF: nothing between the sublayers but the observers
        # someone explicitly attached.
        if taps:
            def hop(sdu: Any, **meta: Any) -> None:
                for tap in taps:
                    tap(direction, caller, provider, sdu, meta)
                call(sdu, **meta)
            return hop
        return call
