"""Data-link sublayers (Fig 2): encoding, framing, error detection,
error recovery (point-to-point branch) or MAC (broadcast branch).

The framing sublayer is itself nested-sublayered into stuffing over
flags (:mod:`repro.datalink.framing`) and carries the verified
bit-stuffing artifact of Section 4.1.
"""

from .arq import (
    ARQ_HEADER,
    ARQ_SCHEMES,
    GoBackNArq,
    NullArq,
    SelectiveRepeatArq,
    StopAndWaitArq,
)
from .crc import CRC8, CRC16_ARC, CRC16_CCITT, CRC32, CRC64_ECMA, CRC_SPECS, CrcSpec
from .errordetect import (
    CrcCode,
    DetectionCode,
    ErrorDetectSublayer,
    InternetChecksum,
    ParityByte,
)
from .mac import BROADCAST, MAC_HEADER, MAC_SCHEMES, ChannelView, CsmaMac, PureAlohaMac
from .stacks import (
    build_hdlc_stack,
    build_wireless_station,
    collect_bytes,
    connect_hdlc_pair,
    send_bytes,
    send_bytes_batch,
)

__all__ = [
    "ARQ_HEADER",
    "ARQ_SCHEMES",
    "BROADCAST",
    "CRC16_ARC",
    "CRC16_CCITT",
    "CRC32",
    "CRC64_ECMA",
    "CRC8",
    "CRC_SPECS",
    "ChannelView",
    "CrcCode",
    "CrcSpec",
    "CsmaMac",
    "DetectionCode",
    "ErrorDetectSublayer",
    "GoBackNArq",
    "NullArq",
    "InternetChecksum",
    "MAC_HEADER",
    "MAC_SCHEMES",
    "ParityByte",
    "PureAlohaMac",
    "SelectiveRepeatArq",
    "StopAndWaitArq",
    "build_hdlc_stack",
    "build_wireless_station",
    "collect_bytes",
    "connect_hdlc_pair",
    "send_bytes",
    "send_bytes_batch",
]
