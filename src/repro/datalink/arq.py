"""The error-recovery sublayer (Fig 2): ARQ over detected-error frames.

"In the case of reliable delivery like HDLC and Fiberchannel, reliable
delivery adds a header with sequence numbers to guarantee delivery
using retransmissions, but depends on error detection."  Three classic
ARQ schemes are provided behind one sublayer shape — stop-and-wait,
go-back-N, and selective repeat — all using the same 3-byte header
(kind, seq, ack) and the same upward service (exactly-once, in-order
frame delivery), so any one can replace another without touching the
sublayers above or below (the F2 replace experiment).

The sublayer consumes the error-detection sublayer's narrow interface:
frames arrive with a ``corrupt`` flag; corrupt frames are counted and
treated as losses, which retransmission then repairs.

Sequence numbers are 8 bits on the wire; senders and receivers keep
unbounded counters internally and fold modulo 256 at the header, with
windows kept well under half the sequence space.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..core.bits import Bits
from ..core.clock import TimerHandle
from ..core.errors import ConfigurationError, FramingError
from ..core.header import Field, HeaderFormat
from ..core.sublayer import PassthroughSublayer, Sublayer

ARQ_HEADER = HeaderFormat(
    "arq",
    [
        Field("kind", 1),   # 0 = data, 1 = ack
        Field("seq", 8),
        Field("ack", 8),
        Field("pad", 7),
    ],
    owner="arq",
)

KIND_DATA = 0
KIND_ACK = 1

MOD = 256


def _fold(value: int) -> int:
    return value % MOD


def _unfold(reference: int, wire_value: int) -> int:
    """Map an 8-bit wire value to the unbounded counter nearest at or
    after ``reference``."""
    return reference + ((wire_value - _fold(reference)) % MOD)


class ArqSublayerBase(Sublayer):
    """Shared header handling, counters, and corrupt-frame policy."""

    HEADER = ARQ_HEADER

    def __init__(
        self,
        name: str = "arq",
        retransmit_timeout: float = 0.2,
        max_retries: int = 50,
    ):
        super().__init__(name)
        if retransmit_timeout <= 0:
            raise ConfigurationError("retransmit_timeout must be positive")
        self.retransmit_timeout = retransmit_timeout
        self.max_retries = max_retries

    def clone_fresh(self) -> "ArqSublayerBase":
        return type(self)(self.name, self.retransmit_timeout, self.max_retries)

    def on_attach(self) -> None:
        self.state.data_sent = 0
        self.state.data_retransmitted = 0
        self.state.acks_sent = 0
        self.state.corrupt_dropped = 0
        self.state.delivered = 0
        self.state.given_up = 0
        # Measurement-side bookkeeping (like the retransmit timers,
        # deliberately *not* protocol state): first-transmission time
        # per outstanding seq, and which seqs were ever retransmitted —
        # Karn's rule: an RTT sample is only taken from a frame that
        # went out exactly once, so retransmission ambiguity never
        # pollutes the distribution.
        self._sent_at: dict[int, float] = {}
        self._resent: set[int] = set()

    # ------------------------------------------------------------------
    # Latency observation (virtual time, so campaign histograms merge
    # deterministically across workers)
    # ------------------------------------------------------------------
    def _note_sent(self, seq: int) -> None:
        self._sent_at[seq] = self.clock.now()

    def _note_retransmit(self, seq: int) -> None:
        self._resent.add(seq)
        sent = self._sent_at.get(seq)
        if sent is not None:
            self.metrics.observe_hist(
                "retransmit_delay", self.clock.now() - sent
            )

    def _note_acked(self, seq: int) -> None:
        sent = self._sent_at.pop(seq, None)
        if sent is not None and seq not in self._resent:
            self.metrics.observe_hist("rtt", self.clock.now() - sent)
        self._resent.discard(seq)

    # ------------------------------------------------------------------
    def _encode(self, kind: int, seq: int, ack: int, payload: Bits) -> Bits:
        header = ARQ_HEADER.pack(
            {"kind": kind, "seq": _fold(seq), "ack": _fold(ack)}
        )
        return header + payload

    def _transmit_data(self, seq: int, payload: Bits) -> None:
        self.send_down(self._encode(KIND_DATA, seq, 0, payload))

    def _transmit_ack(self, ack: int) -> None:
        self.count("acks_sent")
        self.send_down(self._encode(KIND_ACK, 0, ack, Bits()))

    def from_below(self, frame: Any, corrupt: bool = False, **meta: Any) -> None:
        if corrupt:
            # The error-detection interface flagged this frame: treat
            # it as a loss; retransmission will repair it.
            self.count("corrupt_dropped")
            return
        if not isinstance(frame, Bits) or len(frame) < ARQ_HEADER.bit_width:
            self.count("corrupt_dropped")
            return
        header, payload = ARQ_HEADER.split(frame)
        if header["kind"] == KIND_ACK:
            self._on_ack(header["ack"])
        else:
            self._on_data(header["seq"], payload)

    # ------------------------------------------------------------------
    # Batch processing: coalesced window runs
    # ------------------------------------------------------------------
    def _coalesced(self, run: Callable[[], None]) -> None:
        """Run ``run()`` with the data-path hops buffered, flush once.

        ARQ windows are inherently stateful (sequence numbers, timers,
        Karn bookkeeping), so the batch path reuses the *scalar* window
        logic verbatim: ``run`` executes the per-unit loop while
        ``send_down``/``deliver_up`` are temporarily rebound to
        buffering closures, and everything the window emitted then
        crosses the neighbouring boundary in one batch hop.  Every
        state transition, counter, rng draw, and timer arm happens in
        exactly the scalar order — only the hop crossings coalesce.
        """
        down_units: list[Any] = []
        down_metas: list[dict] = []
        up_units: list[Any] = []
        up_metas: list[dict] = []

        def buffer_down(sdu: Any, **meta: Any) -> None:
            down_units.append(sdu)
            down_metas.append(meta)

        def buffer_up(sdu: Any, **meta: Any) -> None:
            up_units.append(sdu)
            up_metas.append(meta)

        real_send, real_deliver = self._send_down, self._deliver_up
        self._send_down = buffer_down
        self._deliver_up = buffer_up
        try:
            run()
        finally:
            self._send_down = real_send
            self._deliver_up = real_deliver
        if up_units:
            self.deliver_up_batch(
                up_units, up_metas if any(up_metas) else None
            )
        if down_units:
            self.send_down_batch(
                down_units, down_metas if any(down_metas) else None
            )

    def from_above_batch(
        self, sdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Window-process the whole batch; transmissions leave together."""
        def run() -> None:
            if metas is None:
                for sdu in sdus:
                    self.from_above(sdu)
            else:
                for sdu, meta in zip(sdus, metas):
                    self.from_above(sdu, **meta)
        self._coalesced(run)

    def from_below_batch(
        self, pdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Receive the whole batch; deliveries and acks leave together."""
        def run() -> None:
            if metas is None:
                for pdu in pdus:
                    self.from_below(pdu)
            else:
                for pdu, meta in zip(pdus, metas):
                    self.from_below(pdu, **meta)
        self._coalesced(run)

    # Scheme-specific hooks -------------------------------------------
    def from_above(self, sdu: Any, **meta: Any) -> None:
        raise NotImplementedError

    def _on_ack(self, wire_ack: int) -> None:
        raise NotImplementedError

    def _on_data(self, wire_seq: int, payload: Bits) -> None:
        raise NotImplementedError


class StopAndWaitArq(ArqSublayerBase):
    """One frame in flight; alternating sequence numbers."""

    def on_attach(self) -> None:
        super().on_attach()
        self.state.snd_seq = 0
        self.state.awaiting_ack = False
        self.state.pending = []        # queued payloads not yet sent
        self.state.inflight = None     # payload awaiting ack
        self.state.retries = 0
        self.state.rcv_expected = 0
        self._timer: TimerHandle | None = None

    def from_above(self, sdu: Any, **meta: Any) -> None:
        if not isinstance(sdu, Bits):
            raise FramingError("ARQ payload must be Bits")
        if self.state.awaiting_ack:
            self.state.pending = self.state.pending + [sdu]
            return
        self._send_frame(sdu)

    def _send_frame(self, payload: Bits) -> None:
        self.state.inflight = payload
        self.state.awaiting_ack = True
        self.state.retries = 0
        self.count("data_sent")
        self._note_sent(self.state.snd_seq)
        self._transmit_data(self.state.snd_seq, payload)
        self._arm_timer()

    def _arm_timer(self) -> None:
        self._timer = self.clock.call_later(self.retransmit_timeout, self._on_timeout)

    def _on_timeout(self) -> None:
        if not self.state.awaiting_ack:
            return
        if self.state.retries >= self.max_retries:
            self.count("given_up")
            self.state.awaiting_ack = False
            self.state.inflight = None
            self._drain_queue()
            return
        self.state.retries = self.state.retries + 1
        self.count("data_retransmitted")
        self._note_retransmit(self.state.snd_seq)
        self._transmit_data(self.state.snd_seq, self.state.inflight)
        self._arm_timer()

    def _on_ack(self, wire_ack: int) -> None:
        if not self.state.awaiting_ack or wire_ack != _fold(self.state.snd_seq):
            return  # stale ack
        if self._timer is not None:
            self._timer.cancel()
        self._note_acked(self.state.snd_seq)
        self.state.awaiting_ack = False
        self.state.inflight = None
        self.state.snd_seq = self.state.snd_seq + 1
        self._drain_queue()

    def _drain_queue(self) -> None:
        if self.state.pending and not self.state.awaiting_ack:
            queue = list(self.state.pending)
            head, rest = queue[0], queue[1:]
            self.state.pending = rest
            self._send_frame(head)

    def _on_data(self, wire_seq: int, payload: Bits) -> None:
        if wire_seq == _fold(self.state.rcv_expected):
            self.count("delivered")
            self.deliver_up(payload)
            self.state.rcv_expected = self.state.rcv_expected + 1
        # Ack the frame we just saw (re-ack duplicates).
        self._transmit_ack(wire_seq)


class GoBackNArq(ArqSublayerBase):
    """Sliding window with cumulative acks; receiver accepts in order."""

    def __init__(
        self,
        name: str = "arq",
        retransmit_timeout: float = 0.2,
        max_retries: int = 50,
        window: int = 8,
    ):
        super().__init__(name, retransmit_timeout, max_retries)
        if not 1 <= window <= 100:
            raise ConfigurationError("window must be in [1, 100]")
        self.window = window

    def clone_fresh(self) -> "GoBackNArq":
        return GoBackNArq(
            self.name, self.retransmit_timeout, self.max_retries, self.window
        )

    def on_attach(self) -> None:
        super().on_attach()
        self.state.base = 0
        self.state.next_seq = 0
        self.state.unacked = {}     # seq -> payload
        self.state.pending = []     # beyond the window
        self.state.retries = 0
        self.state.rcv_expected = 0
        self._timer: TimerHandle | None = None

    def from_above(self, sdu: Any, **meta: Any) -> None:
        if not isinstance(sdu, Bits):
            raise FramingError("ARQ payload must be Bits")
        self.state.pending = self.state.pending + [sdu]
        self._fill_window()

    def _fill_window(self) -> None:
        while self.state.pending and (
            self.state.next_seq - self.state.base < self.window
        ):
            queue = list(self.state.pending)
            payload, rest = queue[0], queue[1:]
            self.state.pending = rest
            seq = self.state.next_seq
            unacked = dict(self.state.unacked)
            unacked[seq] = payload
            self.state.unacked = unacked
            self.state.next_seq = seq + 1
            self.count("data_sent")
            self._note_sent(seq)
            self._transmit_data(seq, payload)
            if self._timer is None or self._timer.cancelled:
                self._arm_timer()

    def _arm_timer(self) -> None:
        self._timer = self.clock.call_later(self.retransmit_timeout, self._on_timeout)

    def _on_timeout(self) -> None:
        if self.state.base == self.state.next_seq:
            return  # nothing outstanding
        if self.state.retries >= self.max_retries:
            self.count("given_up")
            self.state.unacked = {}
            self.state.base = self.state.next_seq
            return
        self.state.retries = self.state.retries + 1
        unacked = self.state.unacked
        for seq in range(self.state.base, self.state.next_seq):
            self.count("data_retransmitted")
            self._note_retransmit(seq)
            self._transmit_data(seq, unacked[seq])
        self._arm_timer()

    def _on_ack(self, wire_ack: int) -> None:
        # Cumulative: wire_ack is the receiver's next expected seq.
        acked_through = _unfold(self.state.base, wire_ack)
        if acked_through > self.state.next_seq:
            return  # implausible: ignore
        if acked_through <= self.state.base:
            return  # duplicate ack
        unacked = dict(self.state.unacked)
        for seq in range(self.state.base, acked_through):
            unacked.pop(seq, None)
            self._note_acked(seq)
        self.state.unacked = unacked
        self.state.base = acked_through
        self.state.retries = 0
        if self._timer is not None:
            self._timer.cancel()
        if self.state.base < self.state.next_seq:
            self._arm_timer()
        self._fill_window()

    def _on_data(self, wire_seq: int, payload: Bits) -> None:
        if wire_seq == _fold(self.state.rcv_expected):
            self.count("delivered")
            self.deliver_up(payload)
            self.state.rcv_expected = self.state.rcv_expected + 1
        self._transmit_ack(self.state.rcv_expected)


class SelectiveRepeatArq(ArqSublayerBase):
    """Sliding window with individual acks and out-of-order buffering."""

    def __init__(
        self,
        name: str = "arq",
        retransmit_timeout: float = 0.2,
        max_retries: int = 50,
        window: int = 8,
    ):
        super().__init__(name, retransmit_timeout, max_retries)
        if not 1 <= window <= 100:
            raise ConfigurationError("window must be in [1, 100]")
        self.window = window

    def clone_fresh(self) -> "SelectiveRepeatArq":
        return SelectiveRepeatArq(
            self.name, self.retransmit_timeout, self.max_retries, self.window
        )

    def on_attach(self) -> None:
        super().on_attach()
        self.state.base = 0
        self.state.next_seq = 0
        self.state.unacked = {}      # seq -> payload
        self.state.retries = {}      # seq -> count
        self.state.pending = []
        self.state.rcv_expected = 0
        self.state.rcv_buffer = {}   # seq -> payload
        self._timers: dict[int, TimerHandle] = {}

    def from_above(self, sdu: Any, **meta: Any) -> None:
        if not isinstance(sdu, Bits):
            raise FramingError("ARQ payload must be Bits")
        self.state.pending = self.state.pending + [sdu]
        self._fill_window()

    def _fill_window(self) -> None:
        while self.state.pending and (
            self.state.next_seq - self.state.base < self.window
        ):
            queue = list(self.state.pending)
            payload, rest = queue[0], queue[1:]
            self.state.pending = rest
            seq = self.state.next_seq
            unacked = dict(self.state.unacked)
            unacked[seq] = payload
            self.state.unacked = unacked
            retries = dict(self.state.retries)
            retries[seq] = 0
            self.state.retries = retries
            self.state.next_seq = seq + 1
            self.count("data_sent")
            self._note_sent(seq)
            self._transmit_data(seq, payload)
            self._arm_timer(seq)

    def _arm_timer(self, seq: int) -> None:
        self._timers[seq] = self.clock.call_later(
            self.retransmit_timeout, lambda: self._on_timeout(seq)
        )

    def _on_timeout(self, seq: int) -> None:
        if seq not in self.state.unacked:
            return
        retries = dict(self.state.retries)
        if retries.get(seq, 0) >= self.max_retries:
            self.count("given_up")
            unacked = dict(self.state.unacked)
            unacked.pop(seq, None)
            self.state.unacked = unacked
            self._slide_base()
            return
        retries[seq] = retries.get(seq, 0) + 1
        self.state.retries = retries
        self.count("data_retransmitted")
        self._note_retransmit(seq)
        self._transmit_data(seq, self.state.unacked[seq])
        self._arm_timer(seq)

    def _on_ack(self, wire_ack: int) -> None:
        seq = _unfold(self.state.base, wire_ack)
        if seq not in self.state.unacked:
            return
        unacked = dict(self.state.unacked)
        unacked.pop(seq)
        self.state.unacked = unacked
        self._note_acked(seq)
        timer = self._timers.pop(seq, None)
        if timer is not None:
            timer.cancel()
        self._slide_base()
        self._fill_window()

    def _slide_base(self) -> None:
        base = self.state.base
        while base < self.state.next_seq and base not in self.state.unacked:
            base += 1
        self.state.base = base

    def _on_data(self, wire_seq: int, payload: Bits) -> None:
        seq = _unfold(self.state.rcv_expected, wire_seq)
        window_end = self.state.rcv_expected + self.window
        if self.state.rcv_expected <= seq < window_end:
            buffer = dict(self.state.rcv_buffer)
            buffer.setdefault(seq, payload)
            self.state.rcv_buffer = buffer
            self._deliver_in_order()
        # Ack whatever we saw (including old duplicates, so the sender
        # can slide past retransmissions whose acks were lost).
        self._transmit_ack(wire_seq)

    def _deliver_in_order(self) -> None:
        buffer = dict(self.state.rcv_buffer)
        expected = self.state.rcv_expected
        while expected in buffer:
            payload = buffer.pop(expected)
            self.count("delivered")
            self.deliver_up(payload)
            expected += 1
        self.state.rcv_expected = expected
        self.state.rcv_buffer = buffer


class NullArq(PassthroughSublayer):
    """The recovery slot with recovery removed: pure pass-through.

    The degenerate end of the ARQ family — no header, no window, no
    timers — for links that are already reliable.  Because it is a
    plain pass-through it also keeps the whole hdlc stack eligible for
    the tier=off codegen fast path (every remaining sublayer provides
    fuse steps), which makes it the replacement the differential rig
    and C11 use to exercise full-stack fusion.
    """


#: Registry for the F2 swap benchmark.
ARQ_SCHEMES = {
    "stop-and-wait": StopAndWaitArq,
    "go-back-n": GoBackNArq,
    "selective-repeat": SelectiveRepeatArq,
}
