"""Cyclic redundancy checks, parameterized the rocksoft way.

The error-detection sublayer's point (Section 2.1) is that "the
sublayer can be changed (to go from say CRC-32 to CRC-64) without
changing other sublayers".  For that demonstration we need an actual
family of interchangeable codes: this module implements the generic
CRC algorithm (polynomial, init, reflection, xor-out) and instantiates
the standard parameter sets — CRC-8, CRC-16/CCITT, CRC-16/ARC, CRC-32
(the IEEE/HDLC one), and CRC-64/ECMA — each validated in the test
suite against its published check value for ``b"123456789"``.
"""

from __future__ import annotations

from dataclasses import dataclass


def _reflect(value: int, width: int) -> int:
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


@dataclass(frozen=True)
class CrcSpec:
    """Rocksoft-model CRC parameters."""

    name: str
    width: int
    poly: int
    init: int
    reflect_in: bool
    reflect_out: bool
    xor_out: int

    def compute(self, data: bytes) -> int:
        """The CRC of ``data`` as an unsigned ``width``-bit integer.

        ``data`` may be any buffer-protocol object (``bytes``,
        ``bytearray``, ``memoryview``); it is only ever iterated, never
        copied.
        """
        mask = (1 << self.width) - 1
        crc = self.init
        if self.reflect_in:
            # Reflected algorithm: process LSB-first with reversed poly.
            poly = _reflect(self.poly, self.width)
            for byte in data:
                crc ^= byte
                for _ in range(8):
                    crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        else:
            top = 1 << (self.width - 1)
            for byte in data:
                crc ^= byte << (self.width - 8)
                for _ in range(8):
                    crc = ((crc << 1) ^ self.poly) if crc & top else crc << 1
                crc &= mask
        if self.reflect_out != self.reflect_in:
            crc = _reflect(crc, self.width)
        return (crc ^ self.xor_out) & mask

    def append(self, data: bytes) -> bytes:
        """``data`` with the big-endian CRC appended as a trailer.

        Accepts any buffer-protocol object without an intermediate
        ``bytes()`` copy of the payload (``join`` reads the buffer
        directly into the result).
        """
        return b"".join(
            (data, self.compute(data).to_bytes(self.width // 8, "big"))
        )

    def verify(self, framed: bytes) -> bool:
        """Check a trailer produced by :meth:`append`.

        A ``memoryview`` argument is sliced as a view, so verification
        never copies the frame body.
        """
        trailer_bytes = self.width // 8
        if len(framed) < trailer_bytes:
            return False
        data, trailer = framed[:-trailer_bytes], framed[-trailer_bytes:]
        return self.compute(data) == int.from_bytes(trailer, "big")


CRC8 = CrcSpec("crc8", 8, 0x07, 0x00, False, False, 0x00)
CRC16_CCITT = CrcSpec("crc16-ccitt", 16, 0x1021, 0xFFFF, False, False, 0x0000)
CRC16_ARC = CrcSpec("crc16-arc", 16, 0x8005, 0x0000, True, True, 0x0000)
CRC32 = CrcSpec("crc32", 32, 0x04C11DB7, 0xFFFFFFFF, True, True, 0xFFFFFFFF)
CRC64_ECMA = CrcSpec(
    "crc64-ecma", 64, 0x42F0E1EBA9EA3693, 0x0000000000000000, False, False, 0x0
)

#: Registry for swap experiments and configuration by name.
CRC_SPECS: dict[str, CrcSpec] = {
    spec.name: spec for spec in (CRC8, CRC16_CCITT, CRC16_ARC, CRC32, CRC64_ECMA)
}
