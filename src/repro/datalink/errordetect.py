"""The error-detection sublayer (Fig 2).

"Error detection builds on framing by adding some form of checksum to
the end of a frame to make the probability of undetected bit errors
very small" and "has a simple interface to error recovery (frames with
a flag indicating a bit error on reception)".

:class:`ErrorDetectSublayer` appends a code trailer on the way down
and verifies/strips it on the way up, delivering each frame with a
``corrupt`` flag — exactly the narrow upward interface the paper
describes.  The code itself is pluggable behind
:class:`DetectionCode`: any CRC from :mod:`repro.datalink.crc`, the
Internet checksum, or simple parity; swapping one for another touches
nothing else in the stack (the F2 benchmark measures this).

The sublayer works on :class:`~repro.core.bits.Bits` because it sits
above bit-oriented framing; payloads must be byte-aligned (the byte
codes define themselves over octets, as on real links).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.bits import Bits
from ..core.errors import ChecksumError
from ..core.sublayer import Sublayer
from .crc import CRC32, CrcSpec


class DetectionCode:
    """Interface: compute/verify a fixed-width trailer over bytes."""

    name: str = "abstract"
    trailer_bytes: int = 0

    def compute(self, data: bytes) -> bytes:
        raise NotImplementedError

    def verify(self, data: bytes, trailer: bytes) -> bool:
        return self.compute(data) == trailer


class CrcCode(DetectionCode):
    """Adapter putting any :class:`~repro.datalink.crc.CrcSpec` behind
    the detection-code interface."""

    def __init__(self, spec: CrcSpec = CRC32):
        self.spec = spec
        self.name = spec.name
        self.trailer_bytes = spec.width // 8

    def compute(self, data: bytes) -> bytes:
        return self.spec.compute(data).to_bytes(self.trailer_bytes, "big")


class InternetChecksum(DetectionCode):
    """RFC 1071 16-bit ones-complement checksum."""

    name = "internet"
    trailer_bytes = 2

    def compute(self, data: bytes) -> bytes:
        # Handle a trailing odd byte in place of the historical
        # ``data + b"\x00"`` pad so buffer-protocol inputs
        # (memoryview) are summed without a copy.
        pairs = len(data) & ~1
        total = 0
        for i in range(0, pairs, 2):
            total += (data[i] << 8) | data[i + 1]
            total = (total & 0xFFFF) + (total >> 16)
        if len(data) % 2 == 1:
            total += data[-1] << 8
            total = (total & 0xFFFF) + (total >> 16)
        return ((~total) & 0xFFFF).to_bytes(2, "big")


class ParityByte(DetectionCode):
    """XOR of all bytes — deliberately weak, for detection-rate
    comparisons in the F2 benchmark."""

    name = "parity"
    trailer_bytes = 1

    def compute(self, data: bytes) -> bytes:
        parity = 0
        for byte in data:
            parity ^= byte
        return bytes([parity])


class ErrorDetectSublayer(Sublayer):
    """Appends a detection trailer down; verifies and flags up."""

    def __init__(self, name: str = "errordetect", code: DetectionCode | None = None):
        super().__init__(name)
        self.code = code if code is not None else CrcCode(CRC32)

    def clone_fresh(self) -> "ErrorDetectSublayer":
        return ErrorDetectSublayer(self.name, self.code)

    def on_attach(self) -> None:
        self.state.protected = 0
        self.state.verified = 0
        self.state.detected_errors = 0

    def from_above(self, sdu: Any, **meta: Any) -> None:
        if not isinstance(sdu, Bits):
            raise ChecksumError(
                f"error detection needs Bits, got {type(sdu).__name__}"
            )
        data = sdu.to_bytes()  # byte codes are defined over octets
        trailer = self.code.compute(data)
        self.state.protected = self.state.protected + 1
        self.send_down(sdu + Bits.from_bytes(trailer), **meta)

    def from_below(self, frame: Any, **meta: Any) -> None:
        trailer_bits = 8 * self.code.trailer_bytes
        if not isinstance(frame, Bits) or len(frame) < trailer_bits or (
            len(frame) % 8 != 0
        ):
            # Mangled beyond parsing: surface as a corrupt frame.
            self.state.detected_errors = self.state.detected_errors + 1
            self.deliver_up(frame if isinstance(frame, Bits) else Bits(),
                            corrupt=True, **meta)
            return
        body = frame[: len(frame) - trailer_bits]
        trailer = frame[len(frame) - trailer_bits :].to_bytes()
        ok = self.code.verify(body.to_bytes(), trailer)
        if ok:
            self.state.verified = self.state.verified + 1
        else:
            self.state.detected_errors = self.state.detected_errors + 1
        # The paper's narrow interface: the frame plus an error flag.
        self.deliver_up(body, corrupt=not ok, **meta)

    # -------------------------------------------------------- batch
    def from_above_batch(
        self, sdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Protect the whole batch, then cross the boundary once."""
        code = self.code
        state = self.state
        out = []
        for sdu in sdus:
            if not isinstance(sdu, Bits):
                raise ChecksumError(
                    f"error detection needs Bits, got {type(sdu).__name__}"
                )
            trailer = code.compute(sdu.to_bytes())
            state.protected = state.protected + 1
            out.append(sdu + Bits.from_bytes(trailer))
        self.send_down_batch(out, metas)

    def from_below_batch(
        self, pdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Verify the batch; each frame goes up with its ``corrupt`` flag."""
        code = self.code
        state = self.state
        trailer_bits = 8 * code.trailer_bytes
        out = []
        out_metas: list[dict] = []
        for index, frame in enumerate(pdus):
            meta = dict(metas[index]) if metas is not None else {}
            if not isinstance(frame, Bits) or len(frame) < trailer_bits or (
                len(frame) % 8 != 0
            ):
                state.detected_errors = state.detected_errors + 1
                out.append(frame if isinstance(frame, Bits) else Bits())
                meta["corrupt"] = True
                out_metas.append(meta)
                continue
            body = frame[: len(frame) - trailer_bits]
            trailer = frame[len(frame) - trailer_bits :].to_bytes()
            ok = code.verify(body.to_bytes(), trailer)
            if ok:
                state.verified = state.verified + 1
            else:
                state.detected_errors = state.detected_errors + 1
            out.append(body)
            meta["corrupt"] = not ok
            out_metas.append(meta)
        self.deliver_up_batch(out, out_metas)

    # ------------------------------------------------------- codegen
    def fuse_down(self) -> Any:
        """Fuse step mirroring :meth:`from_above`."""
        code = self.code
        state = self.state

        def step(sdu: Any, meta: dict) -> Any:
            if not isinstance(sdu, Bits):
                raise ChecksumError(
                    f"error detection needs Bits, got {type(sdu).__name__}"
                )
            trailer = code.compute(sdu.to_bytes())
            state.protected = state.protected + 1
            return sdu + Bits.from_bytes(trailer)
        return step

    def fuse_up(self) -> Any:
        """Fuse step mirroring :meth:`from_below` (writes ``corrupt``)."""
        code = self.code
        state = self.state
        trailer_bits = 8 * code.trailer_bytes

        def step(frame: Any, meta: dict) -> Any:
            if not isinstance(frame, Bits) or len(frame) < trailer_bits or (
                len(frame) % 8 != 0
            ):
                state.detected_errors = state.detected_errors + 1
                meta["corrupt"] = True
                return frame if isinstance(frame, Bits) else Bits()
            body = frame[: len(frame) - trailer_bits]
            trailer = frame[len(frame) - trailer_bits :].to_bytes()
            ok = code.verify(body.to_bytes(), trailer)
            if ok:
                state.verified = state.verified + 1
            else:
                state.detected_errors = state.detected_errors + 1
            meta["corrupt"] = not ok
            return body
        step.writes_meta = True
        return step
