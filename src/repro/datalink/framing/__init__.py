"""Bit-stuffing framing: the verified nested sublayering of Section 4.1.

Exports the rule type and classic rules, the stuff/unstuff and
add/remove-flags mechanisms, the nested framing sublayers, the exact
validity decision procedure, the rule-space search, the overhead
models, and the per-sublayer lemma library.
"""

from .automaton import MatchAutomaton
from .cobs import CobsFramingSublayer, cobs_decode, cobs_encode
from .decide import (
    Verdict,
    check_roundtrip_bounded,
    check_spec_bounded,
    check_stream_bounded,
    decide_no_false_flag,
    decide_no_false_flag_stream,
    decide_valid,
    decide_valid_stream,
)
from .flags import FrameAssembler, add_flags, frame_stream, remove_flags
from .lemmas import build_framing_library
from .overhead import (
    approx_overhead,
    empirical_overhead,
    exact_overhead,
    overhead_report,
)
from .rules import HDLC_RULE, LOW_OVERHEAD_RULE, StuffingRule, prefix_rule
from .search import (
    SearchResult,
    find_valid_rules,
    prefix_rule_space,
    substring_rule_space,
)
from .stuffing import stuff, stuffed_overhead_bits, unstuff
from .sublayers import FlagSublayer, StuffingSublayer

__all__ = [
    "CobsFramingSublayer",
    "FlagSublayer",
    "cobs_decode",
    "cobs_encode",
    "FrameAssembler",
    "HDLC_RULE",
    "LOW_OVERHEAD_RULE",
    "MatchAutomaton",
    "SearchResult",
    "StuffingRule",
    "StuffingSublayer",
    "Verdict",
    "add_flags",
    "approx_overhead",
    "build_framing_library",
    "check_roundtrip_bounded",
    "check_spec_bounded",
    "check_stream_bounded",
    "decide_no_false_flag",
    "decide_no_false_flag_stream",
    "decide_valid",
    "decide_valid_stream",
    "empirical_overhead",
    "exact_overhead",
    "find_valid_rules",
    "frame_stream",
    "overhead_report",
    "prefix_rule",
    "prefix_rule_space",
    "remove_flags",
    "stuff",
    "stuffed_overhead_bits",
    "substring_rule_space",
    "unstuff",
]
