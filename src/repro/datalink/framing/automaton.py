"""KMP pattern-matching automata over bit strings.

Both the stuffing implementation and the exact overhead model need the
same object: a deterministic automaton whose state is "length of the
longest suffix of the stream seen so far that is a prefix of the
pattern".  This is the classic Knuth-Morris-Pratt construction,
specialized to the binary alphabet.
"""

from __future__ import annotations

from ...core.bits import Bits


class MatchAutomaton:
    """DFA tracking partial matches of one bit pattern in a stream."""

    def __init__(self, pattern: Bits):
        if len(pattern) == 0:
            raise ValueError("pattern must be non-empty")
        self.pattern = pattern
        self.size = len(pattern)
        self._delta = self._build()

    def _build(self) -> list[tuple[int, int]]:
        """delta[state] = (next_state_on_0, next_state_on_1).

        States 0..k-1 are partial-match lengths; a transition *to* k
        means the pattern just completed (callers then consult
        :meth:`state_after_match` or keep scanning via :meth:`step`,
        which folds completion into the proper failure state).
        """
        k = self.size
        delta: list[tuple[int, int]] = []
        for state in range(k):
            row = []
            for bit in (0, 1):
                if self.pattern[state] == bit:
                    row.append(state + 1)
                else:
                    # longest proper suffix of pattern[:state]+bit that
                    # is a pattern prefix — brute force is fine at k<=8
                    row.append(self._fallback(state, bit))
            delta.append((row[0], row[1]))
        return delta

    def _fallback(self, state: int, bit: int) -> int:
        seen = list(self.pattern[:state]) + [bit]
        for length in range(min(len(seen), self.size - 1), 0, -1):
            if list(self.pattern[:length]) == seen[-length:]:
                return length
        return 0

    # ------------------------------------------------------------------
    def step(self, state: int, bit: int) -> tuple[int, bool]:
        """Advance one bit.  Returns (new_state, completed).

        On completion the new state is the match length of the stream
        *including* the completed occurrence (so overlapping matches
        are found), i.e. the failure state of the full pattern.
        """
        nxt = self._delta[state][bit]
        if nxt == self.size:
            return self._overlap_state(), True
        return nxt, False

    def _overlap_state(self) -> int:
        """State after a full match: longest proper border of the pattern."""
        for length in range(self.size - 1, 0, -1):
            if self.pattern[:length] == self.pattern[self.size - length :]:
                return length
        return 0

    def state_for(self, stream: Bits) -> int:
        """Match state after scanning ``stream`` from state 0."""
        state = 0
        for bit in stream:
            state, _ = self.step(state, bit)
        return state

    def find_all(self, stream: Bits) -> list[int]:
        """End positions (exclusive) of all pattern occurrences."""
        out = []
        state = 0
        for i, bit in enumerate(stream):
            state, completed = self.step(state, bit)
            if completed:
                out.append(i + 1)
        return out
