"""COBS framing — a byte-stuffing replacement for the bit-stuffed pair.

Consistent Overhead Byte Stuffing (Cheshire & Baker) delimits frames
with zero bytes and re-codes the payload so that no zero byte appears
inside a frame: the frame becomes a chain of blocks, each led by a
code byte giving the distance to the next (removed) zero.  Worst-case
overhead is one byte per 254, plus the leading code byte.

As a *sublayer*, COBS replaces the entire nested framing pair
(stuffing + flags) with one component offering the same service —
"frames in, frames out, delimitation handled" — to the error-detection
sublayer above and the encoding sublayer below.  That makes it the
re-partitioning demonstration promised in DESIGN.md: sublayer
boundaries themselves are design choices, and a stack can swap a
two-sublayer decomposition for a one-sublayer one without any other
sublayer noticing.
"""

from __future__ import annotations

from typing import Any

from ...core.bits import Bits
from ...core.errors import FramingError
from ...core.sublayer import Sublayer


def cobs_encode(data: bytes) -> bytes:
    """Encode so the output contains no zero bytes."""
    out = bytearray()
    block = bytearray()
    for byte in data:
        if byte == 0:
            out.append(len(block) + 1)
            out.extend(block)
            block.clear()
        else:
            block.append(byte)
            if len(block) == 254:
                out.append(255)
                out.extend(block)
                block.clear()
    out.append(len(block) + 1)
    out.extend(block)
    return bytes(out)


def cobs_decode(data: bytes) -> bytes:
    """Invert :func:`cobs_encode`.  Raises on malformed input."""
    out = bytearray()
    position = 0
    while position < len(data):
        code = data[position]
        if code == 0:
            raise FramingError("zero byte inside a COBS frame")
        position += 1
        end = position + code - 1
        if end > len(data):
            raise FramingError("COBS block overruns the frame")
        chunk = data[position:end]
        if 0 in chunk:
            raise FramingError("zero byte inside a COBS block")
        out.extend(chunk)
        position = end
        if code != 255 and position < len(data):
            out.append(0)
    return bytes(out)


class CobsFramingSublayer(Sublayer):
    """One sublayer doing the whole framing job (stuffing + delimiting).

    Downward: byte-aligned frame bits -> COBS bytes + 0x00 delimiter,
    as bits.  Upward: strip the delimiter, decode; malformed frames
    (e.g. after bit errors) are dropped — the same loss-shaped service
    the bit-stuffed pair provides, so error recovery above is
    untouched by the swap.
    """

    def __init__(self, name: str = "framing"):
        super().__init__(name)

    def on_attach(self) -> None:
        self.state.framed = 0
        self.state.recovered = 0
        self.state.framing_errors = 0

    def from_above(self, sdu: Any, **meta: Any) -> None:
        if not isinstance(sdu, Bits):
            raise FramingError("COBS framing needs Bits")
        if len(sdu) % 8 != 0:
            raise FramingError("COBS framing needs byte-aligned frames")
        self.state.framed = self.state.framed + 1
        encoded = cobs_encode(sdu.to_bytes()) + b"\x00"
        self.send_down(Bits.from_bytes(encoded), **meta)

    def from_below(self, framed: Any, **meta: Any) -> None:
        if not isinstance(framed, Bits) or len(framed) % 8 != 0 or len(framed) == 0:
            self.state.framing_errors = self.state.framing_errors + 1
            return
        raw = framed.to_bytes()
        if not raw.endswith(b"\x00"):
            self.state.framing_errors = self.state.framing_errors + 1
            return
        try:
            body = cobs_decode(raw[:-1])
        except FramingError:
            self.state.framing_errors = self.state.framing_errors + 1
            return
        self.state.recovered = self.state.recovered + 1
        self.deliver_up(Bits.from_bytes(body), **meta)
