"""COBS framing — a byte-stuffing replacement for the bit-stuffed pair.

Consistent Overhead Byte Stuffing (Cheshire & Baker) delimits frames
with zero bytes and re-codes the payload so that no zero byte appears
inside a frame: the frame becomes a chain of blocks, each led by a
code byte giving the distance to the next (removed) zero.  Worst-case
overhead is one byte per 254, plus the leading code byte.

As a *sublayer*, COBS replaces the entire nested framing pair
(stuffing + flags) with one component offering the same service —
"frames in, frames out, delimitation handled" — to the error-detection
sublayer above and the encoding sublayer below.  That makes it the
re-partitioning demonstration promised in DESIGN.md: sublayer
boundaries themselves are design choices, and a stack can swap a
two-sublayer decomposition for a one-sublayer one without any other
sublayer noticing.
"""

from __future__ import annotations

from typing import Any, Sequence

from ...core.bits import Bits
from ...core.codegen import DROP
from ...core.errors import FramingError
from ...core.sublayer import Sublayer


def cobs_encode(data: bytes) -> bytes:
    """Encode so the output contains no zero bytes.

    ``data`` may be any buffer-protocol object (``memoryview``
    included); it is only iterated, never copied.
    """
    out = bytearray()
    block = bytearray()
    for byte in data:
        if byte == 0:
            out.append(len(block) + 1)
            out.extend(block)
            block.clear()
        else:
            block.append(byte)
            if len(block) == 254:
                out.append(255)
                out.extend(block)
                block.clear()
    out.append(len(block) + 1)
    out.extend(block)
    return bytes(out)


def cobs_decode(data: bytes) -> bytes:
    """Invert :func:`cobs_encode`.  Raises on malformed input.

    Accepts any buffer-protocol object; block slices of a
    ``memoryview`` input stay views (no per-block copies).
    """
    out = bytearray()
    position = 0
    while position < len(data):
        code = data[position]
        if code == 0:
            raise FramingError("zero byte inside a COBS frame")
        position += 1
        end = position + code - 1
        if end > len(data):
            raise FramingError("COBS block overruns the frame")
        chunk = data[position:end]
        if 0 in chunk:
            raise FramingError("zero byte inside a COBS block")
        out.extend(chunk)
        position = end
        if code != 255 and position < len(data):
            out.append(0)
    return bytes(out)


class CobsFramingSublayer(Sublayer):
    """One sublayer doing the whole framing job (stuffing + delimiting).

    Downward: byte-aligned frame bits -> COBS bytes + 0x00 delimiter,
    as bits.  Upward: strip the delimiter, decode; malformed frames
    (e.g. after bit errors) are dropped — the same loss-shaped service
    the bit-stuffed pair provides, so error recovery above is
    untouched by the swap.
    """

    def __init__(self, name: str = "framing"):
        super().__init__(name)

    def on_attach(self) -> None:
        self.state.framed = 0
        self.state.recovered = 0
        self.state.framing_errors = 0

    def from_above(self, sdu: Any, **meta: Any) -> None:
        if not isinstance(sdu, Bits):
            raise FramingError("COBS framing needs Bits")
        if len(sdu) % 8 != 0:
            raise FramingError("COBS framing needs byte-aligned frames")
        self.state.framed = self.state.framed + 1
        encoded = cobs_encode(sdu.to_bytes()) + b"\x00"
        self.send_down(Bits.from_bytes(encoded), **meta)

    def from_below(self, framed: Any, **meta: Any) -> None:
        body = self._decode(framed)
        if body is None:
            return
        self.deliver_up(body, **meta)

    # -------------------------------------------------------- batch
    def from_above_batch(
        self, sdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Frame the whole batch, then cross the boundary once."""
        state = self.state
        out = []
        for sdu in sdus:
            if not isinstance(sdu, Bits):
                raise FramingError("COBS framing needs Bits")
            if len(sdu) % 8 != 0:
                raise FramingError("COBS framing needs byte-aligned frames")
            state.framed = state.framed + 1
            out.append(Bits.from_bytes(cobs_encode(sdu.to_bytes()) + b"\x00"))
        self.send_down_batch(out, metas)

    def from_below_batch(
        self, pdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Decode the batch; malformed frames drop, survivors go up together."""
        state = self.state
        out = []
        out_metas: list[dict] | None = [] if metas is not None else None
        for index, framed in enumerate(pdus):
            body = self._decode(framed)
            if body is None:
                continue
            out.append(body)
            if out_metas is not None:
                out_metas.append(metas[index])
        if out:
            self.deliver_up_batch(out, out_metas)

    def _decode(self, framed: Any) -> Bits | None:
        """One frame's upward transform (``None`` = dropped), counters included."""
        state = self.state
        if not isinstance(framed, Bits) or len(framed) % 8 != 0 or len(framed) == 0:
            state.framing_errors = state.framing_errors + 1
            return None
        raw = framed.to_bytes()
        if not raw.endswith(b"\x00"):
            state.framing_errors = state.framing_errors + 1
            return None
        try:
            # Slice off the delimiter as a view: decode never copies
            # the frame body.
            body = cobs_decode(memoryview(raw)[:-1])
        except FramingError:
            state.framing_errors = state.framing_errors + 1
            return None
        state.recovered = state.recovered + 1
        return Bits.from_bytes(body)

    # ------------------------------------------------------- codegen
    def fuse_down(self) -> Any:
        """Fuse step mirroring :meth:`from_above`."""
        state = self.state

        def step(sdu: Any, meta: dict) -> Any:
            if not isinstance(sdu, Bits):
                raise FramingError("COBS framing needs Bits")
            if len(sdu) % 8 != 0:
                raise FramingError("COBS framing needs byte-aligned frames")
            state.framed = state.framed + 1
            return Bits.from_bytes(cobs_encode(sdu.to_bytes()) + b"\x00")
        return step

    def fuse_up(self) -> Any:
        """Fuse step mirroring :meth:`from_below` (malformed drops)."""
        decode = self._decode

        def step(framed: Any, meta: dict) -> Any:
            body = decode(framed)
            return DROP if body is None else body
        return step
