"""An exact decision procedure for stuffing-rule validity.

Bounded exhaustive checking (the :mod:`repro.verify.lemma` tactic) is
how the per-sublayer lemmas are stated and checked, but for *searching*
a space of thousands of candidate rules (the paper's "library of
stuffing protocols that our proof deems valid", 66 rules) we want an
exact, fast answer.  Both properties of a valid rule are statements
about finite-state transductions, so both are decidable by automaton
construction — no enumeration of data strings at all:

**Round trip** (``unstuff(stuff(D)) == D`` for all D) holds for every
*progressive* rule: sender and receiver run the same trigger automaton
over the same stuffed stream, so the receiver removes exactly the bits
the sender inserted.  Progressivity is a one-line syntactic check.

**No false flag** (``flag · stuff(D) · flag`` contains the flag only
as the two delimiters, for all D) is decided by breadth-first search
over the product of the trigger automaton (which *generates* all
stuffed streams) and the flag automaton (which *recognizes* flag
occurrences): if no reachable product state completes a flag match
mid-body, or early inside the closing flag, no data string can produce
a false flag.  The search space is at most ``len(trigger) ×
len(flag)`` states.

The test suite cross-validates this procedure against bounded
exhaustive checking on every rule in the 8-bit search space.
"""

from __future__ import annotations

from dataclasses import dataclass

from .automaton import MatchAutomaton
from .rules import StuffingRule


@dataclass(frozen=True)
class Verdict:
    """Outcome of deciding one rule."""

    valid: bool
    reason: str

    def __bool__(self) -> bool:
        return self.valid


def _decide_no_false_flag(rule: StuffingRule, opening_flag_state: int) -> Verdict:
    """Core BFS: no flag occurrence inside ``stuff(D)`` or spanning the
    body/closing-flag boundary, for any data ``D``.

    ``opening_flag_state`` is the flag-automaton state at the start of
    the body — 0 for a receiver that rescans from the body start
    (frame mode), or the flag's overlap state for a continuous-scan
    receiver whose match window can straddle the opening flag
    (stream mode).
    """
    if not rule.progressive:
        return Verdict(False, "not progressive (stuffing would diverge)")
    trig = MatchAutomaton(rule.trigger)
    flag = MatchAutomaton(rule.flag)

    start = (0, opening_flag_state)  # (trigger state over body, flag state)
    reachable: set[tuple[int, int]] = {start}
    frontier = [start]
    while frontier:
        s, f = frontier.pop()
        for bit in (0, 1):
            s2, completed = trig.step(s, bit)
            f2, flagged = flag.step(f, bit)
            if flagged:
                return Verdict(
                    False,
                    f"data bit can complete a false flag "
                    f"(trigger state {s}, flag state {f}, bit {bit})",
                )
            if completed:
                f3, flagged2 = flag.step(f2, rule.stuff_bit)
                if flagged2:
                    return Verdict(
                        False,
                        f"stuffed bit can complete a false flag "
                        f"(trigger state {s}, flag state {f}, bit {bit})",
                    )
                s3, again = trig.step(s2, rule.stuff_bit)
                if again:
                    return Verdict(False, "stuff bit re-completes trigger")
                state = (s3, f3)
            else:
                state = (s2, f2)
            if state not in reachable:
                reachable.add(state)
                frontier.append(state)

    # Closing-flag boundary: from every reachable end-of-body flag
    # state, feeding the closing flag must not complete a match before
    # its final bit (the final-bit completion is the legit delimiter).
    for _s, f in reachable:
        state = f
        for i, bit in enumerate(rule.flag):
            state, flagged = flag.step(state, bit)
            if flagged and i < len(rule.flag) - 1:
                return Verdict(
                    False,
                    f"body suffix plus closing-flag prefix forms a false "
                    f"flag (flag state {f}, at closing bit {i})",
                )
    return Verdict(True, "no reachable false-flag completion")


def decide_no_false_flag(rule: StuffingRule) -> Verdict:
    """Frame-mode variant: the receiver rescans from the body start.

    Matches the semantics of
    :func:`~repro.datalink.framing.flags.remove_flags`, whose search
    starts at the body, so occurrences overlapping the *opening* flag
    are invisible to it and therefore harmless.
    """
    return _decide_no_false_flag(rule, opening_flag_state=0)


def decide_no_false_flag_stream(rule: StuffingRule) -> Verdict:
    """Stream-mode variant: a continuous-scan receiver.

    Matches :class:`~repro.datalink.framing.flags.FrameAssembler`,
    whose flag automaton runs without reset across delimiters, so a
    false flag may also be completed by bits straddling the opening
    flag.  This is the stricter, real-HDLC-receiver semantics; the E2
    benchmark reports rule counts under both.
    """
    flag = MatchAutomaton(rule.flag)
    return _decide_no_false_flag(rule, opening_flag_state=flag._overlap_state())


def decide_valid(rule: StuffingRule) -> Verdict:
    """Frame-mode validity: progressive (round trip) and no false flag."""
    return decide_no_false_flag(rule)


def decide_valid_stream(rule: StuffingRule) -> Verdict:
    """Stream-mode validity (continuous-scan receiver semantics)."""
    return decide_no_false_flag_stream(rule)


def check_roundtrip_bounded(rule: StuffingRule, max_len: int) -> tuple | None:
    """Bounded exhaustive cross-check of the round-trip property.

    Returns the first counterexample ``(data,)`` or None.  Used by the
    test suite to validate :func:`decide_valid` against brute force.
    """
    from ...core.bits import all_bitstrings_up_to
    from .stuffing import stuff, unstuff

    for data in all_bitstrings_up_to(max_len):
        if unstuff(stuff(data, rule), rule) != data:
            return (data,)
    return None


def check_spec_bounded(rule: StuffingRule, max_len: int) -> tuple | None:
    """Bounded exhaustive check of the paper's top-level specification:

    ``Unstuff(RemoveFlags(AddFlags(Stuff(D)))) = D`` for all D up to
    ``max_len`` bits.  Returns the first counterexample or None.
    """
    from ...core.bits import all_bitstrings_up_to
    from ...core.errors import FramingError
    from .flags import add_flags, remove_flags
    from .stuffing import stuff, unstuff

    for data in all_bitstrings_up_to(max_len):
        try:
            result = unstuff(
                remove_flags(add_flags(stuff(data, rule), rule), rule), rule
            )
        except FramingError:
            return (data,)
        if result != data:
            return (data,)
    return None


def check_stream_bounded(
    rule: StuffingRule, max_len: int, frames: int = 2
) -> tuple | None:
    """Bounded exhaustive check of *stream* reception.

    Sends ``frames`` copies of each stuffed body back-to-back through a
    :class:`~repro.datalink.framing.flags.FrameAssembler` and requires
    every body to come back intact and in order.  Cross-validates
    :func:`decide_valid_stream`.
    """
    from ...core.bits import all_bitstrings_up_to
    from ...core.errors import FramingError
    from .flags import FrameAssembler, frame_stream
    from .stuffing import stuff, unstuff

    for data in all_bitstrings_up_to(max_len):
        if len(data) == 0:
            continue  # empty bodies are idle fill by definition
        body = stuff(data, rule)
        stream = frame_stream([body] * frames, rule)
        assembler = FrameAssembler(rule)
        got = assembler.push(stream)
        if len(got) != frames:
            return (data,)
        try:
            if any(unstuff(b, rule) != data for b in got):
                return (data,)
        except FramingError:
            return (data,)
    return None
