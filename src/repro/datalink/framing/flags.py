"""The flag sublayer's mechanisms: add and remove frame delimiters.

This is the *lower* half of the paper's nested framing sublayering:
"the lower sublayer adds flags (at the sender) and removes flags (at
the receiver)".  :func:`remove_flags` behaves like a real receiver —
hunt for the first flag, then take everything up to the *earliest*
subsequent flag occurrence — rather than trusting the frame to be
well formed.  That behavioural fidelity is what lets the exhaustive
lemma checks catch the paper's subtle failure modes ("some flags can
cause a false flag to occur using the data and a prefix of the end
flag"): an invalid rule produces an early false flag and the
round-trip theorem breaks.

:class:`FrameAssembler` extends the same logic to continuous bit
streams carrying many frames separated by idle fill.
"""

from __future__ import annotations

from ...core.bits import Bits
from ...core.errors import FramingError
from .automaton import MatchAutomaton
from .rules import StuffingRule


def add_flags(body: Bits, rule: StuffingRule) -> Bits:
    """Delimit a (stuffed) frame body with opening and closing flags."""
    return rule.flag + body + rule.flag


def remove_flags(framed: Bits, rule: StuffingRule) -> Bits:
    """Recover the frame body between the first flag and the next one.

    The search for the closing flag starts after the opening flag and
    accepts the *earliest* occurrence — the honest receiver behaviour.
    Raises :class:`FramingError` when no opening or closing flag is
    found.
    """
    flag = rule.flag
    start = framed.find(flag)
    if start == -1:
        raise FramingError(f"no opening flag {flag.to_string()} found")
    body_start = start + len(flag)
    end = framed.find(flag, body_start)
    if end == -1:
        raise FramingError(f"no closing flag {flag.to_string()} found")
    return framed[body_start:end]


class FrameAssembler:
    """Incremental frame extraction from a continuous bit stream.

    Feed arriving bits with :meth:`push`; complete frame bodies come
    back.  The assembler is in *hunt* state until it sees a flag, then
    collects body bits until the next flag.  Back-to-back frames
    (``flag body flag body flag``) share their inner delimiter: a
    closing flag immediately opens the next frame, as in HDLC.  Empty
    bodies (idle flag fill) are discarded.
    """

    def __init__(self, rule: StuffingRule):
        self.rule = rule
        self._auto = MatchAutomaton(rule.flag)
        self._state = 0
        self._in_frame = False
        self._body: list[int] = []
        self.frames_emitted = 0

    def push(self, bits: Bits) -> list[Bits]:
        """Process arriving bits; return any completed frame bodies."""
        completed_frames: list[Bits] = []
        for bit in bits:
            if self._in_frame:
                self._body.append(bit)
            self._state, matched = self._auto.step(self._state, bit)
            if matched:
                if self._in_frame:
                    # Strip the flag bits that were collected into body.
                    body = Bits(self._body[: -len(self.rule.flag)])
                    if len(body) > 0:
                        completed_frames.append(body)
                        self.frames_emitted += 1
                # A flag both closes one frame and opens the next.  The
                # automaton continues from its overlap state (a real
                # continuous-scan receiver does not forget flag-border
                # bits), which is the *stream* validity semantics of
                # :func:`repro.datalink.framing.decide.decide_valid_stream`.
                self._body = []
                self._in_frame = True
        return completed_frames

    def reset(self) -> None:
        self._state = 0
        self._in_frame = False
        self._body = []


def frame_stream(bodies: list[Bits], rule: StuffingRule, idle_flags: int = 0) -> Bits:
    """Concatenate framed bodies into one wire stream.

    ``idle_flags`` extra flags are inserted between frames (links idle
    by repeating the flag, as HDLC does).
    """
    stream = Bits()
    for body in bodies:
        stream = stream + rule.flag + body
        for _ in range(idle_flags):
            stream = stream + rule.flag
    if bodies:
        stream = stream + rule.flag
    return stream
