"""The verified bit-stuffing lemma library (Section 4.1 reproduction).

The paper's Coq proof of ``Unstuff(RemoveFlags(AddFlags(Stuff(D)))) =
D`` "had 57 lemmas and 1800 lines of code" and its lesson 1 is that
"the proof uses separate independent correctness lemmas for each
sublayer which allows us to modularly reason about the distributed
protocol".  :func:`build_framing_library` reproduces that artifact's
*structure*: a :class:`~repro.verify.lemma.LemmaLibrary` whose lemmas
are attributed to the ``automaton`` substrate, the ``stuffing``
sublayer, the ``flags`` sublayer, or the narrow ``stuffing/flags``
interface, with the top-level specification depending only on the
interface lemmas — so each sublayer's internals can change without
touching the other's proofs.

Each lemma is checked by bounded exhaustion over all bit strings up to
``max_len`` (a sound decision procedure for these finite-state
properties when combined with the exact automaton-product check in
:mod:`repro.datalink.framing.decide`, which the library also includes
as a lemma).  Lesson-1's measurable claim — most lemmas are local to
one sublayer — comes out of
:meth:`~repro.verify.lemma.LemmaLibrary.modularity_report`.
"""

from __future__ import annotations

from ...core.bits import Bits, all_bitstrings_up_to
from ...verify.lemma import Lemma, LemmaLibrary, exhaustive
from .automaton import MatchAutomaton
from .decide import check_spec_bounded, decide_valid, decide_valid_stream
from .flags import FrameAssembler, add_flags, frame_stream, remove_flags
from .rules import StuffingRule
from .stuffing import stuff, unstuff


def _bitstrings(max_len: int):
    return lambda: all_bitstrings_up_to(max_len)


def _naive_match_state(pattern: Bits, stream: Bits) -> int:
    """Reference implementation: longest suffix of stream that is a
    proper prefix of pattern."""
    for length in range(min(len(stream), len(pattern) - 1), -1, -1):
        if stream[len(stream) - length :] == pattern[:length]:
            return length
    return 0


def _naive_find_all(pattern: Bits, stream: Bits) -> list[int]:
    out = []
    for end in range(len(pattern), len(stream) + 1):
        if stream[end - len(pattern) : end] == pattern:
            out.append(end)
    return out


def build_framing_library(
    rule: StuffingRule,
    max_len: int = 9,
    include_stream: bool = True,
) -> LemmaLibrary:
    """The per-sublayer lemma library proving the framing specification
    for one stuffing rule.

    For an *invalid* rule the library still builds; proving it then
    fails at exactly the interface lemma whose hazard the rule
    triggers — which is the bug-localization story of sublayered
    verification (the E1 benchmark demonstrates this with a
    deliberately broken rule).
    """
    lib = LemmaLibrary(f"framing[{rule.label()}]")
    bits = _bitstrings(max_len)
    trigger_auto = MatchAutomaton(rule.trigger)
    flag_auto = MatchAutomaton(rule.flag)

    # ------------------------------------------------------------------
    # Substrate: the KMP automaton both sublayers' mechanisms rely on.
    # ------------------------------------------------------------------
    lib.add(Lemma(
        "automaton_trigger_state_correct",
        "The trigger automaton's state equals the longest stream suffix "
        "that is a proper trigger prefix.",
        lambda d: trigger_auto.state_for(d) == _naive_match_state(rule.trigger, d),
        exhaustive(bits),
        sublayer="automaton",
    ))
    lib.add(Lemma(
        "automaton_flag_finds_all",
        "The flag automaton reports exactly the (overlapping) flag "
        "occurrences a naive scan finds.",
        lambda d: flag_auto.find_all(d) == _naive_find_all(rule.flag, d),
        exhaustive(bits),
        sublayer="automaton",
    ))

    # ------------------------------------------------------------------
    # Stuffing sublayer: local lemmas, no mention of flags.
    # ------------------------------------------------------------------
    lib.add(Lemma(
        "stuff_progressive",
        "The stuff bit breaks the trigger match, so stuffing terminates.",
        lambda: rule.progressive,
        lambda: [()],
        sublayer="stuffing",
    ))
    lib.add(Lemma(
        "stuff_empty",
        "Stuffing the empty string yields the empty string.",
        lambda: len(stuff(Bits(), rule)) == 0,
        lambda: [()],
        sublayer="stuffing",
        depends_on=["stuff_progressive"],
    ))
    lib.add(Lemma(
        "stuff_length_bounds",
        "len(D) <= len(stuff(D)) <= 2*len(D): at most one stuffed bit "
        "per data bit.",
        lambda d: len(d) <= len(stuff(d, rule)) <= 2 * len(d),
        exhaustive(bits),
        sublayer="stuffing",
        depends_on=["stuff_progressive"],
    ))
    lib.add(Lemma(
        "stuff_online",
        "Stuffing is an online transduction: stuff(D1) is a prefix of "
        "stuff(D1 + D2).",
        lambda d: all(
            stuff(d, rule).startswith(stuff(d[:i], rule))
            for i in range(len(d) + 1)
        ),
        exhaustive(_bitstrings(max(0, max_len - 2))),
        sublayer="stuffing",
        depends_on=["stuff_progressive"],
    ))
    lib.add(Lemma(
        "stuff_trigger_always_stuffed",
        "In stuff(D), every trigger occurrence is immediately followed "
        "by the stuff bit.",
        lambda d: all(
            end < len(stuff(d, rule))
            and stuff(d, rule)[end] == rule.stuff_bit
            for end in trigger_auto.find_all(stuff(d, rule))
        ),
        exhaustive(bits),
        sublayer="stuffing",
        depends_on=["stuff_progressive", "automaton_trigger_state_correct"],
    ))
    lib.add(Lemma(
        "stuff_roundtrip",
        "unstuff(stuff(D)) == D for all D.",
        lambda d: unstuff(stuff(d, rule), rule) == d,
        exhaustive(bits),
        sublayer="stuffing",
        depends_on=["stuff_progressive", "stuff_trigger_always_stuffed"],
    ))

    # ------------------------------------------------------------------
    # Flag sublayer: local lemmas, conditional on a well-behaved body —
    # "the correctness of stuffing depends on the flag: this shows up
    # in the lemmas we proved" (Section 4.1).
    # ------------------------------------------------------------------
    def body_is_flag_safe(body: Bits) -> bool:
        """The interface premise the stuffing sublayer must establish:
        no flag occurrence starting inside the body, even using a
        prefix of the closing flag."""
        return (body + rule.flag).find(rule.flag) == len(body)

    lib.add(Lemma(
        "add_flags_shape",
        "add_flags(B) is exactly flag + B + flag.",
        lambda b: add_flags(b, rule) == rule.flag + b + rule.flag,
        exhaustive(bits),
        sublayer="flags",
    ))
    lib.add(Lemma(
        "flags_roundtrip_conditional",
        "If B is flag-safe then remove_flags(add_flags(B)) == B.",
        lambda b: (not body_is_flag_safe(b))
        or remove_flags(add_flags(b, rule), rule) == b,
        exhaustive(bits),
        sublayer="flags",
        depends_on=["add_flags_shape"],
    ))

    # ------------------------------------------------------------------
    # The narrow interface: stuffing discharges the flag sublayer's
    # premise.  These are the only lemmas mentioning both sublayers.
    # ------------------------------------------------------------------
    lib.add(Lemma(
        "stuffed_body_is_flag_safe",
        "For all D, stuff(D) satisfies the flag sublayer's premise: "
        "no false flag inside the body or spanning the closing flag.",
        lambda d: body_is_flag_safe(stuff(d, rule)),
        exhaustive(bits),
        sublayer="stuffing/flags",
        depends_on=["stuff_progressive", "flags_roundtrip_conditional"],
    ))
    lib.add(Lemma(
        "decision_procedure_agrees",
        "The exact automaton-product decision procedure agrees with "
        "bounded exhaustive checking of the full specification.",
        lambda: bool(decide_valid(rule))
        == (check_spec_bounded(rule, max_len) is None),
        lambda: [()],
        sublayer="stuffing/flags",
        depends_on=["stuffed_body_is_flag_safe"],
    ))

    # ------------------------------------------------------------------
    # Top-level theorem: composes the sublayer lemmas.
    # ------------------------------------------------------------------
    lib.add(Lemma(
        "framing_specification",
        "Unstuff(RemoveFlags(AddFlags(Stuff(D)))) == D for all D "
        "(the paper's main specification).",
        lambda d: unstuff(
            remove_flags(add_flags(stuff(d, rule), rule), rule), rule
        ) == d,
        exhaustive(bits),
        sublayer="stuffing/flags",
        depends_on=[
            "stuff_roundtrip",
            "flags_roundtrip_conditional",
            "stuffed_body_is_flag_safe",
        ],
    ))

    if include_stream:
        def stream_ok(d: Bits) -> bool:
            if len(d) == 0:
                return True
            body = stuff(d, rule)
            assembler = FrameAssembler(rule)
            frames = assembler.push(frame_stream([body, body], rule))
            return frames == [body, body]

        lib.add(Lemma(
            "stream_back_to_back",
            "A continuous-scan receiver recovers back-to-back frames "
            "sharing delimiters (stream semantics).",
            lambda d: (not decide_valid_stream(rule)) or stream_ok(d),
            exhaustive(_bitstrings(max(0, max_len - 1))),
            sublayer="stuffing/flags",
            depends_on=["framing_specification"],
        ))

    return lib
