"""Stuffing overhead under the random-data model (Section 4.1, lesson 2).

The paper ranks stuffing rules by "overhead (using a random model)":
the expected number of stuffed bits per data bit when data bits are
i.i.d. uniform.  It quotes the geometric approximation 2^-k (1 in 32
for HDLC's 5-bit trigger, 1 in 128 for the discovered 7-bit-trigger
rule).  This module computes three progressively more faithful values:

* :func:`approx_overhead` — the paper's 2^-k back-of-envelope number;
* :func:`exact_overhead` — the true stationary rate from the trigger
  automaton's Markov chain (HDLC's is 1/62, not 1/32: completing a run
  of five 1s takes 62 random bits in expectation, because failed
  partial matches restart);
* :func:`empirical_overhead` — a seeded Monte-Carlo measurement, used
  by the benchmarks to confirm the analytic values.

All three produce the same *ranking*, which is what the paper's claim
("less overhead than HDLC") needs.
"""

from __future__ import annotations

import random

import numpy as np

from ...core.bits import Bits
from .automaton import MatchAutomaton
from .rules import StuffingRule
from .stuffing import stuff


def approx_overhead(rule: StuffingRule) -> float:
    """The paper's model: one stuff per 2^k data bits."""
    return rule.approx_overhead


def exact_overhead(rule: StuffingRule) -> float:
    """Exact stationary stuffed-bits-per-data-bit for uniform data.

    The sender's scan state (partial trigger match over the output
    stream) is a Markov chain on {0..k-1}: each data bit moves the
    automaton; a completion additionally emits the stuff bit and moves
    through it.  The overhead is the stationary completion rate.
    """
    auto = MatchAutomaton(rule.trigger)
    k = auto.size
    transition = np.zeros((k, k))
    reward = np.zeros(k)
    for state in range(k):
        for bit in (0, 1):
            nxt, completed = auto.step(state, bit)
            if completed:
                reward[state] += 0.5
                nxt, again = auto.step(nxt, rule.stuff_bit)
                if again:
                    raise ValueError(f"rule is not progressive: {rule.label()}")
            transition[state, nxt] += 0.5
    # Stationary distribution: pi P = pi, sum(pi) = 1.
    system = np.vstack([transition.T - np.eye(k), np.ones(k)])
    rhs = np.zeros(k + 1)
    rhs[-1] = 1.0
    pi, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    return float(pi @ reward)


def empirical_overhead(
    rule: StuffingRule,
    data_bits: int = 100_000,
    rng: random.Random | None = None,
) -> float:
    """Measured stuffed-bits-per-data-bit on seeded random data."""
    rng = rng or random.Random(0)
    data = Bits(rng.randrange(2) for _ in range(data_bits))
    stuffed = stuff(data, rule)
    return (len(stuffed) - len(data)) / data_bits


def overhead_report(rule: StuffingRule, data_bits: int = 50_000) -> dict[str, float]:
    """All three overhead figures for one rule."""
    return {
        "approx": approx_overhead(rule),
        "exact": exact_overhead(rule),
        "empirical": empirical_overhead(rule, data_bits),
    }
