"""Stuffing rules: the (flag, trigger, stuff-bit) triples of Section 4.1.

A bit-stuffing protocol is parameterized by a *flag* pattern that
delimits frames, a *trigger* string, and a *stuff bit*: whenever the
sender has emitted the trigger, it inserts the stuff bit, which
guarantees (for a *valid* rule) that the flag never appears inside
stuffed data.  HDLC is the rule (flag ``01111110``, trigger ``11111``,
stuff ``0``); the paper's discovered low-overhead alternative is
(flag ``00000010``, trigger ``0000001``, stuff ``1``).

This module defines the rule type and its *well-formedness* conditions
(cheap syntactic checks).  Semantic *validity* — the round-trip and
no-false-flag theorems — is established by the verification harness in
:mod:`repro.datalink.framing.lemmas` and searched over in
:mod:`repro.datalink.framing.search`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.bits import Bits
from ...core.errors import ConfigurationError


@dataclass(frozen=True)
class StuffingRule:
    """One bit-stuffing protocol: flag delimiter, trigger, stuff bit."""

    flag: Bits
    trigger: Bits
    stuff_bit: int

    def __post_init__(self) -> None:
        if self.stuff_bit not in (0, 1):
            raise ConfigurationError(f"stuff_bit must be 0 or 1, got {self.stuff_bit}")
        if len(self.flag) == 0:
            raise ConfigurationError("flag must be non-empty")
        if len(self.trigger) == 0:
            raise ConfigurationError("trigger must be non-empty")

    # ------------------------------------------------------------------
    # Well-formedness (syntactic sanity; validity proper is proved)
    # ------------------------------------------------------------------
    @property
    def progressive(self) -> bool:
        """Appending the stuff bit must break the trigger match.

        If ``trigger[1:] + stuff_bit == trigger`` the sender would stuff
        forever (each stuffed bit immediately re-completes the trigger).
        Rules violating this are rejected before any semantic checking.
        """
        return (self.trigger[1:] + Bits([self.stuff_bit])) != self.trigger

    def well_formed(self) -> bool:
        """Cheap syntactic sanity; semantic validity is *proved*, not assumed.

        The paper warns that "subtleties make certain bit-stuffing
        rules fail" — e.g. the stuffed bit forming a flag with
        subsequent data, or data plus a prefix of the end flag forming
        a false flag.  Those hazards are deliberately NOT filtered here
        by heuristics; they are caught by the exhaustive lemma checks
        in :mod:`repro.datalink.framing.lemmas`.
        """
        return self.progressive

    # ------------------------------------------------------------------
    @property
    def approx_overhead(self) -> float:
        """The paper's back-of-envelope overhead model: 2^-len(trigger).

        "an overhead (using a random model) of 1 in 128 compared to
        1 in 32 for the HDLC rule" — i.e. one stuffed bit for every
        2^k data bits, where k is the trigger length.  The exact
        Markov-chain value lives in
        :mod:`repro.datalink.framing.overhead`.
        """
        return 2.0 ** (-len(self.trigger))

    def label(self) -> str:
        return (
            f"flag={self.flag.to_string()} "
            f"trigger={self.trigger.to_string()} stuff={self.stuff_bit}"
        )

    def __repr__(self) -> str:
        return f"StuffingRule({self.label()})"


def prefix_rule(flag: Bits, trigger_len: int) -> StuffingRule:
    """The canonical rule family: trigger = flag prefix, stuff = complement.

    For a flag ``F`` and trigger length ``k`` (1 <= k < len(F)), stuff
    the complement of ``F[k]`` after seeing ``F[:k]``: the stuffed
    stream then never contains ``F[:k+1]``, hence never contains ``F``.
    Both the HDLC-for-its-flag rule and the paper's low-overhead rule
    are members of this family.
    """
    if not 1 <= trigger_len < len(flag):
        raise ConfigurationError(
            f"trigger_len must be in [1, {len(flag) - 1}], got {trigger_len}"
        )
    trigger = flag[:trigger_len]
    stuff_bit = 1 - flag[trigger_len]
    return StuffingRule(flag=flag, trigger=trigger, stuff_bit=stuff_bit)


#: The HDLC rule: flag 01111110, stuff a 0 after five consecutive 1s.
HDLC_RULE = StuffingRule(
    flag=Bits.from_string("01111110"),
    trigger=Bits.from_string("11111"),
    stuff_bit=0,
)

#: The paper's discovered low-overhead rule (Section 4.1, lesson 2):
#: flag 00000010, stuff a 1 after seeing 0000001.
LOW_OVERHEAD_RULE = StuffingRule(
    flag=Bits.from_string("00000010"),
    trigger=Bits.from_string("0000001"),
    stuff_bit=1,
)
