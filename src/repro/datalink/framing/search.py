"""Search for valid stuffing rules (the paper's 66-rule library).

Section 4.1: "We also created a library of stuffing protocols that our
proof deems valid; it found 66 alternate stuffing rules, some of which
had less overhead than HDLC."  This module reproduces that search.

The searched space matters and the paper does not spell its out, so we
define it explicitly and report per-family results (EXPERIMENTS.md
records the measured counts next to the paper's 66):

* :func:`prefix_rule_space` — the canonical family: for every 8-bit
  flag ``F`` and trigger length ``k``, trigger ``F[:k]`` with stuff bit
  ``¬F[k]``.  Both HDLC's own-flag rule and the paper's low-overhead
  rule are members.
* :func:`substring_rule_space` — the wider family: trigger is any
  contiguous substring of the flag, with either stuff bit (classic
  HDLC's ``11111``/0 for flag ``01111110`` is a member: the trigger is
  ``F[1:6]``, not a prefix).

Each candidate is decided exactly by
:func:`repro.datalink.framing.decide.decide_valid` and ranked by the
exact Markov overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ...core.bits import Bits, all_bitstrings
from .decide import decide_valid, decide_valid_stream
from .overhead import exact_overhead
from .rules import StuffingRule, prefix_rule


def prefix_rule_space(
    flag_bits: int = 8,
    trigger_lengths: Iterator[int] | None = None,
) -> Iterator[StuffingRule]:
    """All (flag, prefix-trigger, complement-stuff) candidates."""
    lengths = list(trigger_lengths) if trigger_lengths is not None else list(
        range(1, flag_bits)
    )
    for flag in all_bitstrings(flag_bits):
        for k in lengths:
            yield prefix_rule(flag, k)


def substring_rule_space(flag_bits: int = 8) -> Iterator[StuffingRule]:
    """All (flag, substring-trigger, either-stuff) candidates.

    Only *progressive* rules are yielded (non-progressive ones diverge
    and are rejected syntactically, not semantically).
    """
    for flag in all_bitstrings(flag_bits):
        n = len(flag)
        for start in range(n):
            for end in range(start + 1, n + 1):
                if end - start == n:
                    continue  # trigger == flag is degenerate
                trigger = flag[start:end]
                for stuff_bit in (0, 1):
                    rule = StuffingRule(flag, trigger, stuff_bit)
                    if rule.progressive:
                        yield rule


@dataclass
class SearchResult:
    """Outcome of searching one rule space."""

    candidates: int
    valid: list[StuffingRule]

    @property
    def valid_count(self) -> int:
        return len(self.valid)

    def ranked_by_overhead(self) -> list[tuple[StuffingRule, float]]:
        """Valid rules from lowest to highest exact overhead."""
        scored = [(rule, exact_overhead(rule)) for rule in self.valid]
        scored.sort(key=lambda pair: (pair[1], pair[0].label()))
        return scored

    def better_than(self, reference: StuffingRule) -> list[StuffingRule]:
        """Valid rules with strictly lower exact overhead than ``reference``."""
        bar = exact_overhead(reference)
        return [rule for rule, cost in self.ranked_by_overhead() if cost < bar]

    def distinct_flags(self) -> int:
        return len({rule.flag for rule in self.valid})


def find_valid_rules(
    space: Iterator[StuffingRule], semantics: str = "frame"
) -> SearchResult:
    """Decide every candidate in ``space``; keep the valid ones.

    ``semantics`` selects the receiver model: ``"frame"`` (rescan from
    the body start, matching ``remove_flags``) or ``"stream"``
    (continuous scan, matching ``FrameAssembler`` — the stricter model
    and the closest analogue of the paper's 66-rule library).
    """
    if semantics == "frame":
        decide = decide_valid
    elif semantics == "stream":
        decide = decide_valid_stream
    else:
        raise ValueError(f"unknown semantics {semantics!r}")
    candidates = 0
    valid: list[StuffingRule] = []
    seen: set[tuple[Bits, Bits, int]] = set()
    for rule in space:
        key = (rule.flag, rule.trigger, rule.stuff_bit)
        if key in seen:
            continue
        seen.add(key)
        candidates += 1
        if decide(rule):
            valid.append(rule)
    return SearchResult(candidates=candidates, valid=valid)
