"""Search for valid stuffing rules (the paper's 66-rule library).

Section 4.1: "We also created a library of stuffing protocols that our
proof deems valid; it found 66 alternate stuffing rules, some of which
had less overhead than HDLC."  This module reproduces that search.

The searched space matters and the paper does not spell its out, so we
define it explicitly and report per-family results (EXPERIMENTS.md
records the measured counts next to the paper's 66):

* :func:`prefix_rule_space` — the canonical family: for every 8-bit
  flag ``F`` and trigger length ``k``, trigger ``F[:k]`` with stuff bit
  ``¬F[k]``.  Both HDLC's own-flag rule and the paper's low-overhead
  rule are members.
* :func:`substring_rule_space` — the wider family: trigger is any
  contiguous substring of the flag, with either stuff bit (classic
  HDLC's ``11111``/0 for flag ``01111110`` is a member: the trigger is
  ``F[1:6]``, not a prefix).

Each candidate is decided exactly by
:func:`repro.datalink.framing.decide.decide_valid` and ranked by the
exact Markov overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ...core.bits import Bits, all_bitstrings
from ...par import ProofCache, callable_fingerprint, effective_jobs, fork_map, value_fingerprint
from .decide import Verdict, decide_valid, decide_valid_stream
from .overhead import exact_overhead
from .rules import StuffingRule, prefix_rule


def prefix_rule_space(
    flag_bits: int = 8,
    trigger_lengths: Iterator[int] | None = None,
) -> Iterator[StuffingRule]:
    """All (flag, prefix-trigger, complement-stuff) candidates."""
    lengths = list(trigger_lengths) if trigger_lengths is not None else list(
        range(1, flag_bits)
    )
    for flag in all_bitstrings(flag_bits):
        for k in lengths:
            yield prefix_rule(flag, k)


def substring_rule_space(flag_bits: int = 8) -> Iterator[StuffingRule]:
    """All (flag, substring-trigger, either-stuff) candidates.

    Only *progressive* rules are yielded (non-progressive ones diverge
    and are rejected syntactically, not semantically).
    """
    for flag in all_bitstrings(flag_bits):
        n = len(flag)
        for start in range(n):
            for end in range(start + 1, n + 1):
                if end - start == n:
                    continue  # trigger == flag is degenerate
                trigger = flag[start:end]
                for stuff_bit in (0, 1):
                    rule = StuffingRule(flag, trigger, stuff_bit)
                    if rule.progressive:
                        yield rule


@dataclass
class SearchResult:
    """Outcome of searching one rule space."""

    candidates: int
    valid: list[StuffingRule]

    @property
    def valid_count(self) -> int:
        """How many candidates the decision procedure accepted."""
        return len(self.valid)

    def ranked_by_overhead(self) -> list[tuple[StuffingRule, float]]:
        """Valid rules from lowest to highest exact overhead."""
        scored = [(rule, exact_overhead(rule)) for rule in self.valid]
        scored.sort(key=lambda pair: (pair[1], pair[0].label()))
        return scored

    def better_than(self, reference: StuffingRule) -> list[StuffingRule]:
        """Valid rules with strictly lower exact overhead than ``reference``."""
        bar = exact_overhead(reference)
        return [rule for rule, cost in self.ranked_by_overhead() if cost < bar]

    def distinct_flags(self) -> int:
        """How many different flag patterns appear among the valid rules."""
        return len({rule.flag for rule in self.valid})


def _decider(semantics: str):
    """The receiver-model decision procedure for ``semantics``."""
    if semantics == "frame":
        return decide_valid
    if semantics == "stream":
        return decide_valid_stream
    raise ValueError(f"unknown semantics {semantics!r}")


def _decide_batch(item: tuple[str, list[StuffingRule]]) -> list[Verdict]:
    """Worker-side: decide one chunk of candidate rules."""
    semantics, rules = item
    decide = _decider(semantics)
    return [decide(rule) for rule in rules]


def _chunks(indices: list[int], jobs: int) -> list[list[int]]:
    """Split ``indices`` into contiguous chunks, ~4 per worker."""
    if not indices:
        return []
    target = max(1, len(indices) // max(1, jobs * 4))
    return [indices[i : i + target] for i in range(0, len(indices), target)]


def find_valid_rules(
    space: Iterable[StuffingRule],
    semantics: str = "frame",
    jobs: int | None = None,
    cache: ProofCache | None = None,
) -> SearchResult:
    """Decide every candidate in ``space``; keep the valid ones.

    ``semantics`` selects the receiver model: ``"frame"`` (rescan from
    the body start, matching ``remove_flags``) or ``"stream"``
    (continuous scan, matching ``FrameAssembler`` — the stricter model
    and the closest analogue of the paper's 66-rule library).

    ``jobs`` fans undecided candidates out over forked workers in
    contiguous chunks (``None``/1 serial, 0 = all CPUs); verdicts are
    reassembled in candidate order, so the result is identical to a
    serial run.  ``cache`` memoises each rule's verdict keyed by the
    decision procedure's fingerprint — unlike lemma proofs, *invalid*
    verdicts are cached too (a rejected candidate is a result, not a
    regression to re-examine).
    """
    decide = _decider(semantics)
    rules: list[StuffingRule] = []
    seen: set[tuple[Bits, Bits, int]] = set()
    for rule in space:
        key = (rule.flag, rule.trigger, rule.stuff_bit)
        if key in seen:
            continue
        seen.add(key)
        rules.append(rule)

    verdicts: list[Verdict | None] = [None] * len(rules)
    keys: list[str] = []
    fps: list[str] = []
    if cache is not None:
        decide_fp = callable_fingerprint(decide)
        for index, rule in enumerate(rules):
            keys.append(f"rule:{semantics}:{rule.label()}")
            fps.append(value_fingerprint(decide_fp, rule))
            hit = cache.get(keys[index], fps[index])
            if hit is not None:
                verdicts[index] = Verdict(hit["valid"], hit["reason"])

    pending = [index for index, verdict in enumerate(verdicts) if verdict is None]
    if pending:
        chunks = _chunks(pending, effective_jobs(jobs))
        batches = fork_map(
            _decide_batch,
            [(semantics, [rules[i] for i in chunk]) for chunk in chunks],
            jobs=jobs,
        )
        for chunk, batch in zip(chunks, batches):
            for index, verdict in zip(chunk, batch):
                verdicts[index] = verdict
                if cache is not None:
                    cache.put(
                        keys[index],
                        fps[index],
                        {"valid": verdict.valid, "reason": verdict.reason},
                    )

    valid = [rule for rule, verdict in zip(rules, verdicts) if verdict]
    return SearchResult(candidates=len(rules), valid=valid)
