"""The stuffing sublayer's mechanisms: stuff and unstuff.

This is the *upper* half of the paper's nested framing sublayering
(Section 4.1): "the upper sublayer is a stuffing sublayer that does
stuffing (at the sender) and unstuffing (at the receiver)".  Both
directions scan the *stuffed* stream with the trigger's KMP automaton,
so sender and receiver make identical decisions at identical stream
positions — the invariant the round-trip lemma rests on.
"""

from __future__ import annotations

from ...core.bits import Bits
from ...core.errors import FramingError
from .automaton import MatchAutomaton
from .rules import StuffingRule

_AUTOMATON_CACHE: dict[Bits, MatchAutomaton] = {}


def _automaton(pattern: Bits) -> MatchAutomaton:
    if pattern not in _AUTOMATON_CACHE:
        _AUTOMATON_CACHE[pattern] = MatchAutomaton(pattern)
    return _AUTOMATON_CACHE[pattern]


def stuff(data: Bits, rule: StuffingRule) -> Bits:
    """Insert ``rule.stuff_bit`` after every trigger occurrence.

    The automaton runs over the *output* stream (data plus stuffed
    bits), so a stuffed bit can participate in later trigger matches —
    exactly mirroring what the receiver sees.  Requires a progressive
    rule (otherwise a stuffed bit would immediately re-complete the
    trigger and stuffing would diverge).
    """
    if not rule.progressive:
        raise FramingError(f"rule is not progressive: {rule.label()}")
    auto = _automaton(rule.trigger)
    out: list[int] = []
    state = 0
    for bit in data:
        out.append(bit)
        state, completed = auto.step(state, bit)
        if completed:
            out.append(rule.stuff_bit)
            state, again = auto.step(state, rule.stuff_bit)
            if again:
                raise FramingError(
                    f"stuff bit re-completed trigger: {rule.label()}"
                )
    return Bits(out)


def unstuff(stuffed: Bits, rule: StuffingRule) -> Bits:
    """Remove stuffed bits, the exact inverse of :func:`stuff`.

    Raises :class:`FramingError` if the input is not a valid stuffed
    stream for this rule — a trigger occurrence not followed by the
    stuff bit, or a stream ending where a stuff bit was mandatory.
    These are the receive-side errors a real data link surfaces as
    aborts.
    """
    auto = _automaton(rule.trigger)
    out: list[int] = []
    state = 0
    expecting_stuff = False
    for position, bit in enumerate(stuffed):
        if expecting_stuff:
            if bit != rule.stuff_bit:
                raise FramingError(
                    f"expected stuff bit {rule.stuff_bit} at position "
                    f"{position}, got {bit} ({rule.label()})"
                )
            state, again = auto.step(state, bit)
            if again:
                raise FramingError(
                    f"stuff bit completed trigger at position {position}"
                )
            expecting_stuff = False
            continue
        out.append(bit)
        state, completed = auto.step(state, bit)
        if completed:
            expecting_stuff = True
    if expecting_stuff:
        raise FramingError(
            f"stuffed stream ended where a stuff bit was mandatory "
            f"({rule.label()})"
        )
    return Bits(out)


def stuffed_overhead_bits(data: Bits, rule: StuffingRule) -> int:
    """How many bits stuffing added for this particular data."""
    return len(stuff(data, rule)) - len(data)
