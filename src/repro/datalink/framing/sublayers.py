"""Framing as *nested sublayering*: stuffing over flags.

Section 4.1: "we suggest the following sublayering: the upper sublayer
is a stuffing sublayer that does stuffing (at the sender) and
unstuffing (at the receiver).  The lower sublayer adds flags (at the
sender) and removes flags (at the receiver).  This is a nested
sublayering within framing, which is itself a sublayer of the Data
Link."

Both sublayers are headerless in the :class:`~repro.core.pdu.Pdu`
sense — their peer communication is carried in the bit stream itself
(stuffed bits, flag patterns) — but they still satisfy the litmus
tests: T1 (each improves the lower service and talks to its peer),
T2 (the interface between them is just "a frame without flags"), and
T3 (the stuffing rule's trigger/stuff-bit are invisible to the flag
sublayer, and the flag is invisible to the stuffing sublayer *except*
through the shared rule — which is exactly the caveat the paper notes
under T3: "a change in the interface (i.e., flag) would require a
change in the stuffing rule").
"""

from __future__ import annotations

from typing import Any, Sequence

from ...core.bits import Bits
from ...core.codegen import DROP
from ...core.errors import ConfigurationError, FramingError
from ...core.sublayer import Sublayer
from .flags import FrameAssembler, add_flags, remove_flags
from .rules import HDLC_RULE, StuffingRule
from .stuffing import stuff, unstuff


class StuffingSublayer(Sublayer):
    """Upper framing sublayer: stuff on send, unstuff on receive."""

    def __init__(self, name: str = "stuffing", rule: StuffingRule = HDLC_RULE):
        super().__init__(name)
        self.rule = rule

    def clone_fresh(self) -> "StuffingSublayer":
        return StuffingSublayer(self.name, self.rule)

    def on_attach(self) -> None:
        self.state.stuffed_frames = 0
        self.state.unstuffed_frames = 0
        self.state.unstuff_errors = 0

    def from_above(self, sdu: Any, **meta: Any) -> None:
        if not isinstance(sdu, Bits):
            raise FramingError(
                f"stuffing sublayer needs Bits, got {type(sdu).__name__}"
            )
        self.state.stuffed_frames = self.state.stuffed_frames + 1
        self.send_down(stuff(sdu, self.rule), **meta)

    def from_below(self, body: Any, **meta: Any) -> None:
        try:
            data = unstuff(body, self.rule)
        except FramingError:
            # An invalid stuffed stream is an abort: drop the frame and
            # let error recovery above deal with the loss.
            self.state.unstuff_errors = self.state.unstuff_errors + 1
            return
        self.state.unstuffed_frames = self.state.unstuffed_frames + 1
        self.deliver_up(data, **meta)

    # -------------------------------------------------------- batch
    def from_above_batch(
        self, sdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Stuff the whole batch, then cross the boundary once."""
        rule = self.rule
        state = self.state
        out = []
        for sdu in sdus:
            if not isinstance(sdu, Bits):
                raise FramingError(
                    f"stuffing sublayer needs Bits, got {type(sdu).__name__}"
                )
            state.stuffed_frames = state.stuffed_frames + 1
            out.append(stuff(sdu, rule))
        self.send_down_batch(out, metas)

    def from_below_batch(
        self, pdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Unstuff the batch; aborted frames drop, survivors go up together."""
        rule = self.rule
        state = self.state
        out = []
        out_metas: list[dict] | None = [] if metas is not None else None
        for index, body in enumerate(pdus):
            try:
                data = unstuff(body, rule)
            except FramingError:
                state.unstuff_errors = state.unstuff_errors + 1
                continue
            state.unstuffed_frames = state.unstuffed_frames + 1
            out.append(data)
            if out_metas is not None:
                out_metas.append(metas[index])
        if out:
            self.deliver_up_batch(out, out_metas)

    # ------------------------------------------------------- codegen
    def fuse_down(self) -> Any:
        """Fuse step mirroring :meth:`from_above`."""
        rule = self.rule
        state = self.state

        def step(sdu: Any, meta: dict) -> Any:
            if not isinstance(sdu, Bits):
                raise FramingError(
                    f"stuffing sublayer needs Bits, got {type(sdu).__name__}"
                )
            state.stuffed_frames = state.stuffed_frames + 1
            return stuff(sdu, rule)
        return step

    def fuse_up(self) -> Any:
        """Fuse step mirroring :meth:`from_below` (abort drops)."""
        rule = self.rule
        state = self.state

        def step(body: Any, meta: dict) -> Any:
            try:
                data = unstuff(body, rule)
            except FramingError:
                state.unstuff_errors = state.unstuff_errors + 1
                return DROP
            state.unstuffed_frames = state.unstuffed_frames + 1
            return data
        return step


class FlagSublayer(Sublayer):
    """Lower framing sublayer: delimit with flags, recover bodies.

    ``stream_mode=False`` (the default) treats each unit from below as
    one delimited frame (``remove_flags`` semantics).  With
    ``stream_mode=True`` arriving bits are fed to a continuous-scan
    :class:`FrameAssembler`, so frames may arrive split or
    back-to-back across units — the real-receiver behaviour.
    """

    def __init__(
        self,
        name: str = "flags",
        rule: StuffingRule = HDLC_RULE,
        stream_mode: bool = False,
    ):
        super().__init__(name)
        self.rule = rule
        self.stream_mode = stream_mode
        self._assembler: FrameAssembler | None = None

    def clone_fresh(self) -> "FlagSublayer":
        return FlagSublayer(self.name, self.rule, self.stream_mode)

    def on_attach(self) -> None:
        self.state.framed = 0
        self.state.recovered = 0
        self.state.framing_errors = 0
        if self.stream_mode:
            self._assembler = FrameAssembler(self.rule)

    def from_above(self, body: Any, **meta: Any) -> None:
        if not isinstance(body, Bits):
            raise FramingError(
                f"flag sublayer needs Bits, got {type(body).__name__}"
            )
        self.state.framed = self.state.framed + 1
        self.send_down(add_flags(body, self.rule), **meta)

    def from_below(self, framed: Any, **meta: Any) -> None:
        if self.stream_mode:
            if self._assembler is None:
                raise ConfigurationError(
                    f"flag sublayer {self.name!r} is in stream mode but "
                    f"was never attached (no frame assembler)"
                )
            for body in self._assembler.push(framed):
                self.state.recovered = self.state.recovered + 1
                self.deliver_up(body, **meta)
            return
        try:
            body = remove_flags(framed, self.rule)
        except FramingError:
            self.state.framing_errors = self.state.framing_errors + 1
            return
        self.state.recovered = self.state.recovered + 1
        self.deliver_up(body, **meta)

    # -------------------------------------------------------- batch
    def from_above_batch(
        self, sdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Delimit the whole batch, then cross the boundary once."""
        rule = self.rule
        state = self.state
        out = []
        for body in sdus:
            if not isinstance(body, Bits):
                raise FramingError(
                    f"flag sublayer needs Bits, got {type(body).__name__}"
                )
            state.framed = state.framed + 1
            out.append(add_flags(body, rule))
        self.send_down_batch(out, metas)

    def from_below_batch(
        self, pdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Recover bodies for the batch; stream mode stays scalar.

        In stream mode one arriving unit can yield zero or many frames,
        so the default scalar loop (which preserves that expansion
        exactly) is the correct batch form.
        """
        if self.stream_mode:
            super().from_below_batch(pdus, metas)
            return
        rule = self.rule
        state = self.state
        out = []
        out_metas: list[dict] | None = [] if metas is not None else None
        for index, framed in enumerate(pdus):
            try:
                body = remove_flags(framed, rule)
            except FramingError:
                state.framing_errors = state.framing_errors + 1
                continue
            state.recovered = state.recovered + 1
            out.append(body)
            if out_metas is not None:
                out_metas.append(metas[index])
        if out:
            self.deliver_up_batch(out, out_metas)

    # ------------------------------------------------------- codegen
    def fuse_down(self) -> Any:
        """Fuse step mirroring :meth:`from_above`."""
        rule = self.rule
        state = self.state

        def step(body: Any, meta: dict) -> Any:
            if not isinstance(body, Bits):
                raise FramingError(
                    f"flag sublayer needs Bits, got {type(body).__name__}"
                )
            state.framed = state.framed + 1
            return add_flags(body, rule)
        return step

    def fuse_up(self) -> Any:
        """Fuse step mirroring :meth:`from_below`; stream mode opts out."""
        if self.stream_mode:
            return None
        rule = self.rule
        state = self.state

        def step(framed: Any, meta: dict) -> Any:
            try:
                body = remove_flags(framed, rule)
            except FramingError:
                state.framing_errors = state.framing_errors + 1
                return DROP
            state.recovered = state.recovered + 1
            return body
        return step
