"""Media Access Control sublayers (the 802.11 branch of Fig 2).

"Broadcast links like 802.11 dispense with error recovery and do Media
Access Control (MAC) to guarantee that one sender at a time,
eventually and fairly, gets access to the shared physical channel."

Two contention schemes are provided behind one sublayer shape — pure
ALOHA (transmit immediately, back off on collision) and 1-persistent
CSMA (sense before transmitting) — so either can replace the other
without touching the rest of the stack.

Channel state (carrier sense, collision outcomes) reaches the MAC
through a :class:`ChannelView`, control-plane information that
bypasses the intermediate sublayers.  This mirrors the bypass variant
the paper itself points out in its conclusion: "control sublayers in
the network layer (Figure 3) provide information for the data plane
that bypasses them" — the data path still traverses every sublayer in
order.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from ..core.bits import Bits
from ..core.errors import ConfigurationError, FramingError
from ..core.header import Field, HeaderFormat
from ..core.sublayer import Sublayer

MAC_HEADER = HeaderFormat(
    "mac",
    [Field("src", 8), Field("dst", 8)],
    owner="mac",
)

BROADCAST = 0xFF


class ChannelView:
    """The MAC's control-plane window onto the shared channel.

    Wraps a :class:`~repro.sim.medium.StationPort`'s sensing and
    outcome callbacks without exposing transmission (frames still go
    down the data path).
    """

    def __init__(self, carrier_sense: Callable[[], bool]):
        self._carrier_sense = carrier_sense
        self.on_transmit_done: Callable[[bool], None] | None = None

    def busy(self) -> bool:
        return self._carrier_sense()

    def _transmit_done(self, collided: bool) -> None:
        if self.on_transmit_done is not None:
            self.on_transmit_done(collided)


class MacSublayerBase(Sublayer):
    """Shared queueing, addressing, and backoff machinery."""

    HEADER = MAC_HEADER

    def __init__(
        self,
        name: str = "mac",
        address: int = 1,
        channel: ChannelView | None = None,
        max_attempts: int = 16,
        base_backoff: float = 0.01,
        rng: random.Random | None = None,
    ):
        super().__init__(name)
        if not 0 <= address < BROADCAST:
            raise ConfigurationError(f"address must be in [0, 254], got {address}")
        self.address = address
        self.channel = channel
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.rng = rng or random.Random(address)
        if channel is not None:
            channel.on_transmit_done = self._transmit_done

    def clone_fresh(self) -> "MacSublayerBase":
        return type(self)(
            self.name, self.address, self.channel,
            self.max_attempts, self.base_backoff, self.rng,
        )

    def on_attach(self) -> None:
        self.state.queue = []          # (dst, payload) awaiting channel
        self.state.inflight = None     # (dst, payload) on the air
        self.state.attempts = 0
        self.state.sent = 0
        self.state.collisions = 0
        self.state.abandoned = 0
        self.state.received = 0
        self.state.filtered = 0

    # ------------------------------------------------------------------
    def from_above(self, sdu: Any, dst: int = BROADCAST, **meta: Any) -> None:
        if not isinstance(sdu, Bits):
            raise FramingError("MAC payload must be Bits")
        self.state.queue = self.state.queue + [(dst, sdu)]
        self._try_start()

    def _try_start(self) -> None:
        if self.state.inflight is not None or not self.state.queue:
            return
        queue = list(self.state.queue)
        head, rest = queue[0], queue[1:]
        self.state.queue = rest
        self.state.inflight = head
        self.state.attempts = 0
        self._attempt()

    def _attempt(self) -> None:
        raise NotImplementedError

    def _release_frame(self) -> None:
        """Push the in-flight frame down the data path (onto the air)."""
        dst, payload = self.state.inflight
        frame = MAC_HEADER.pack({"src": self.address, "dst": dst}) + payload
        self.state.sent = self.state.sent + 1
        self.send_down(frame)

    def _transmit_done(self, collided: bool) -> None:
        if self.state.inflight is None:
            return
        if not collided:
            self.state.inflight = None
            self._try_start()
            return
        self.state.collisions = self.state.collisions + 1
        self.state.attempts = self.state.attempts + 1
        if self.state.attempts >= self.max_attempts:
            self.state.abandoned = self.state.abandoned + 1
            self.state.inflight = None
            self._try_start()
            return
        self._backoff_then_retry()

    def _backoff_then_retry(self) -> None:
        # Binary exponential backoff, jittered per-station.
        window = min(2 ** self.state.attempts, 1024)
        delay = self.base_backoff * self.rng.uniform(0, window)
        self.clock.call_later(delay, self._attempt)

    # ------------------------------------------------------------------
    def from_below(self, frame: Any, corrupt: bool = False, **meta: Any) -> None:
        if corrupt or not isinstance(frame, Bits) or len(frame) < MAC_HEADER.bit_width:
            return
        header, payload = MAC_HEADER.split(frame)
        if header["dst"] not in (self.address, BROADCAST):
            self.state.filtered = self.state.filtered + 1
            return
        self.state.received = self.state.received + 1
        self.deliver_up(payload, src=header["src"])


class PureAlohaMac(MacSublayerBase):
    """Transmit as soon as a frame is queued; back off on collision."""

    def _attempt(self) -> None:
        if self.state.inflight is None:
            return
        self._release_frame()


class CsmaMac(MacSublayerBase):
    """1-persistent CSMA: sense first, defer while busy."""

    SENSE_INTERVAL = 0.002

    def _attempt(self) -> None:
        if self.state.inflight is None:
            return
        if self.channel is not None and self.channel.busy():
            # Channel busy: poll again shortly (1-persistent behaviour
            # approximated by a short deferral with jitter).
            self.clock.call_later(
                self.SENSE_INTERVAL * self.rng.uniform(0.5, 1.5), self._attempt
            )
            return
        self._release_frame()


#: Registry for the MAC swap demonstration.
MAC_SCHEMES = {"aloha": PureAlohaMac, "csma": CsmaMac}
