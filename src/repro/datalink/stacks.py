"""Preassembled data-link stacks (the two branches of Fig 2).

:func:`build_hdlc_stack` is the reliable point-to-point branch:
error recovery over error detection over framing (stuffing over flags)
over encoding.  :func:`build_wireless_station` is the broadcast
branch, which "dispenses with error recovery and does Media Access
Control": MAC over error detection over framing over encoding, bound
to a shared :class:`~repro.sim.medium.BroadcastMedium`.

Every knob is a sublayer-local swap: the ARQ scheme, the detection
code, the stuffing rule, the line code, and the MAC scheme can each be
replaced without touching any other sublayer — the F2 benchmark
exercises exactly these swaps.
"""

from __future__ import annotations

import random
from typing import Any

from ..core.bits import Bits
from ..core.errors import ConfigurationError
from ..core.stack import Stack
from ..phys.encodings import LineCode, NRZ
from ..phys.sublayer import EncodingSublayer
from ..sim.engine import Simulator
from ..sim.link import DuplexLink, LinkConfig
from ..sim.medium import BroadcastMedium
from .arq import ARQ_SCHEMES
from .errordetect import CrcCode, DetectionCode, ErrorDetectSublayer
from .framing.cobs import CobsFramingSublayer
from .framing.rules import HDLC_RULE, StuffingRule
from .framing.sublayers import FlagSublayer, StuffingSublayer
from .mac import MAC_SCHEMES, ChannelView


def build_hdlc_stack(
    name: str,
    clock: Any,
    rule: StuffingRule = HDLC_RULE,
    code: DetectionCode | None = None,
    arq: str = "go-back-n",
    line_code: LineCode | None = None,
    retransmit_timeout: float = 0.2,
    window: int = 8,
    framing: str = "bitstuff",
) -> Stack:
    """A reliable point-to-point data link (HDLC-like).

    ``framing`` selects the framing decomposition: ``"bitstuff"`` is
    the paper's nested pair (stuffing over flags); ``"cobs"`` replaces
    the pair with a single COBS sublayer — the re-partitioning swap.
    """
    if arq not in ARQ_SCHEMES:
        raise ConfigurationError(
            f"unknown ARQ scheme {arq!r}; choose from {sorted(ARQ_SCHEMES)}"
        )
    scheme = ARQ_SCHEMES[arq]
    if arq == "stop-and-wait":
        recovery = scheme("recovery", retransmit_timeout=retransmit_timeout)
    else:
        recovery = scheme(
            "recovery", retransmit_timeout=retransmit_timeout, window=window
        )
    if framing == "bitstuff":
        framing_sublayers = [
            StuffingSublayer("stuffing", rule),
            FlagSublayer("flags", rule),
        ]
    elif framing == "cobs":
        framing_sublayers = [CobsFramingSublayer("framing")]
    else:
        raise ConfigurationError(
            f"unknown framing {framing!r}; choose 'bitstuff' or 'cobs'"
        )
    return Stack(
        name,
        [
            recovery,
            ErrorDetectSublayer("errordetect", code or CrcCode()),
            *framing_sublayers,
            EncodingSublayer("encoding", line_code or NRZ()),
        ],
        clock=clock,
    )


def connect_hdlc_pair(
    sim: Simulator,
    link_config: LinkConfig | None = None,
    rng_seed: int = 0,
    **stack_kwargs: Any,
) -> tuple[Stack, Stack, DuplexLink]:
    """Two HDLC stacks joined by an (optionally impaired) duplex link."""
    a = build_hdlc_stack("dl-a", sim.clock(), **stack_kwargs)
    b = build_hdlc_stack("dl-b", sim.clock(), **stack_kwargs)
    duplex = DuplexLink(
        sim,
        link_config,
        rng_forward=random.Random(rng_seed),
        rng_reverse=random.Random(rng_seed + 1),
        name="hdlc",
    )
    duplex.attach(a, b)
    return a, b, duplex


def build_wireless_station(
    sim: Simulator,
    medium: BroadcastMedium,
    address: int,
    mac: str = "csma",
    rule: StuffingRule = HDLC_RULE,
    code: DetectionCode | None = None,
    line_code: LineCode | None = None,
    rng: random.Random | None = None,
) -> Stack:
    """One station of the broadcast branch, attached to a shared medium."""
    if mac not in MAC_SCHEMES:
        raise ConfigurationError(
            f"unknown MAC scheme {mac!r}; choose from {sorted(MAC_SCHEMES)}"
        )
    port = medium.attach(f"station-{address}")
    channel = ChannelView(port.carrier_sense)
    mac_sublayer = MAC_SCHEMES[mac](
        "mac", address=address, channel=channel, rng=rng or random.Random(address)
    )
    stack = Stack(
        f"wl-{address}",
        [
            mac_sublayer,
            ErrorDetectSublayer("errordetect", code or CrcCode()),
            StuffingSublayer("stuffing", rule),
            FlagSublayer("flags", rule),
            EncodingSublayer("encoding", line_code or NRZ()),
        ],
        clock=sim.clock(),
    )
    stack.on_transmit = lambda bits, **meta: port.transmit(bits, len(bits))
    port.on_receive = lambda frame: stack.receive(frame)
    port.on_transmit_done = channel._transmit_done
    return stack


def send_bytes(stack: Stack, payload: bytes, **meta: Any) -> None:
    """Convenience: push application bytes into a data-link stack."""
    stack.send(Bits.from_bytes(payload), **meta)


def collect_bytes(stack: Stack) -> list[bytes]:
    """Attach a byte-collecting sink to a stack; returns the live list."""
    received: list[bytes] = []

    def on_deliver(bits: Bits, **meta: Any) -> None:
        received.append(bits.to_bytes())

    stack.on_deliver = on_deliver
    return received
