"""Preassembled data-link stacks (the two branches of Fig 2).

:func:`build_hdlc_stack` is the reliable point-to-point branch:
error recovery over error detection over framing (stuffing over flags)
over encoding.  :func:`build_wireless_station` is the broadcast
branch, which "dispenses with error recovery and does Media Access
Control": MAC over error detection over framing over encoding, bound
to a shared :class:`~repro.sim.medium.BroadcastMedium`.

Both assemblies instantiate :mod:`repro.compose` profiles ("hdlc" and
"wireless"): the sublayer order lives in the profile, every knob is a
profile parameter, and whole-slot swaps go through
``StackBuilder.with_replacement`` — the F2 benchmark exercises exactly
these swaps.
"""

from __future__ import annotations

import random
from typing import Any

from ..compose.builder import StackBuilder
from ..core.bits import Bits
from ..core.stack import Stack
from ..core.wiring import TIER_FULL
from ..phys.encodings import LineCode
from ..sim.engine import Simulator
from ..sim.link import DuplexLink, LinkConfig
from ..sim.medium import BroadcastMedium
from .errordetect import DetectionCode
from .framing.rules import HDLC_RULE, StuffingRule
from .mac import ChannelView


def build_hdlc_stack(
    name: str,
    clock: Any,
    rule: StuffingRule = HDLC_RULE,
    code: DetectionCode | None = None,
    arq: str = "go-back-n",
    line_code: LineCode | None = None,
    retransmit_timeout: float = 0.2,
    window: int = 8,
    framing: str = "bitstuff",
    tier: str = TIER_FULL,
    replacements: dict[str, Any] | None = None,
    insertions: list[tuple[str, str, Any]] | None = None,
    metrics: Any | None = None,
) -> Stack:
    """A reliable point-to-point data link (HDLC-like).

    ``framing`` selects the framing decomposition: ``"bitstuff"`` is
    the paper's nested pair (stuffing over flags); ``"cobs"`` replaces
    the pair with a single COBS sublayer — the re-partitioning swap.
    ``replacements`` maps profile slot names ("arq", "errordetect",
    "framing", "encoding") to ready sublayers or factories;
    ``insertions`` is a list of ``(slot, where, sublayer)`` extras
    spliced ``"before"``/``"after"`` a slot (fault injection enters
    here).
    """
    builder = StackBuilder(
        "hdlc", name=name, clock=clock, tier=tier, metrics=metrics
    )
    builder.with_params(
        rule=rule,
        code=code,
        arq=arq,
        line_code=line_code,
        retransmit_timeout=retransmit_timeout,
        window=window,
        framing=framing,
    )
    for slot, replacement in (replacements or {}).items():
        builder.with_replacement(slot, replacement)
    for slot, where, extra in insertions or []:
        builder.with_insertion(slot, extra, where=where)
    return builder.build()


def connect_hdlc_pair(
    sim: Simulator,
    link_config: LinkConfig | None = None,
    rng_seed: int = 0,
    **stack_kwargs: Any,
) -> tuple[Stack, Stack, DuplexLink]:
    """Two HDLC stacks joined by an (optionally impaired) duplex link."""
    a = build_hdlc_stack("dl-a", sim.clock(), **stack_kwargs)
    b = build_hdlc_stack("dl-b", sim.clock(), **stack_kwargs)
    duplex = DuplexLink(
        sim,
        link_config,
        rng_forward=random.Random(rng_seed),
        rng_reverse=random.Random(rng_seed + 1),
        name="hdlc",
    )
    duplex.attach(a, b)
    return a, b, duplex


def build_wireless_station(
    sim: Simulator,
    medium: BroadcastMedium,
    address: int,
    mac: str = "csma",
    rule: StuffingRule = HDLC_RULE,
    code: DetectionCode | None = None,
    line_code: LineCode | None = None,
    rng: random.Random | None = None,
    tier: str = TIER_FULL,
    replacements: dict[str, Any] | None = None,
    insertions: list[tuple[str, str, Any]] | None = None,
    metrics: Any | None = None,
) -> Stack:
    """One station of the broadcast branch, attached to a shared medium."""
    port = medium.attach(f"station-{address}")
    channel = ChannelView(port.carrier_sense)
    builder = StackBuilder(
        "wireless",
        name=f"wl-{address}",
        clock=sim.clock(),
        tier=tier,
        metrics=metrics,
    )
    builder.with_params(
        mac=mac,
        address=address,
        channel=channel,
        rng=rng,
        rule=rule,
        code=code,
        line_code=line_code,
    )
    for slot, replacement in (replacements or {}).items():
        builder.with_replacement(slot, replacement)
    for slot, where, extra in insertions or []:
        builder.with_insertion(slot, extra, where=where)
    stack = builder.build()
    stack.on_transmit = lambda bits, **meta: port.transmit(bits, len(bits))
    port.on_receive = lambda frame: stack.receive(frame)
    port.on_transmit_done = channel._transmit_done
    return stack


def send_bytes(stack: Stack, payload: bytes, **meta: Any) -> None:
    """Convenience: push application bytes into a data-link stack."""
    stack.send(Bits.from_bytes(payload), **meta)


def send_bytes_batch(stack: Stack, payloads: list[bytes]) -> None:
    """Convenience: push a batch of application payloads in one call."""
    stack.send_batch([Bits.from_bytes(payload) for payload in payloads])


def collect_bytes(stack: Stack) -> list[bytes]:
    """Attach a byte-collecting sink to a stack; returns the live list."""
    received: list[bytes] = []

    def on_deliver(bits: Bits, **meta: Any) -> None:
        received.append(bits.to_bytes())

    stack.on_deliver = on_deliver
    return received
