"""Deterministic fault injection as a sublayering operation.

The paper's claim is that sublayers are *fungible*: insert, swap, and
verify one without touching its neighbours.  The strongest exercise of
that claim is to make adversity itself a sublayer.  This package does
three things:

* :mod:`repro.faults.sublayers` — a family of
  :class:`~repro.faults.sublayers.FaultSublayer` classes (drop,
  duplicate, reorder, corrupt, delay, truncate, stall/blackhole) that
  are genuine :class:`~repro.core.sublayer.Sublayer` subclasses.  They
  are ``TRANSPARENT``: control wiring, the litmus adjacency checks,
  and the compose-time layer-order validation look straight through
  them, so injecting a fault is literally
  :meth:`~repro.core.stack.Stack.insert` /
  :meth:`~repro.compose.StackBuilder.with_fault`.
* :mod:`repro.faults.scenarios` — a :class:`Scenario` harness that
  composes a stack profile, a fault plan, a traffic generator, and a
  stop condition, runs seeded trials through :mod:`repro.sim`, and
  checks invariant monitors against the telemetry :mod:`repro.obs`
  already collects.
* ``python -m repro.faults`` — a campaign CLI running a scenario
  matrix and emitting a JSON resilience report (nonzero exit on any
  invariant violation).

Every random decision draws from a named :func:`repro.sim.rng` stream,
so a campaign is a pure function of its seed list.
"""

from .schedule import FaultSchedule
from .sublayers import (
    CorruptBitsFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultSublayer,
    NoOpFault,
    ReorderFault,
    StallFault,
    TruncateFault,
)

__all__ = [
    "CorruptBitsFault",
    "DelayFault",
    "DropFault",
    "DuplicateFault",
    "FaultSchedule",
    "FaultSublayer",
    "NoOpFault",
    "ReorderFault",
    "StallFault",
    "TruncateFault",
]
