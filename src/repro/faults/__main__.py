"""Campaign CLI: ``python -m repro.faults``.

Runs a named scenario matrix over N seeds and emits a JSON resilience
report.  Exit status is 0 only when every invariant monitor stayed
green in every trial — CI uses this as the fault-scenario smoke gate.

Examples::

    python -m repro.faults --matrix default --seeds 5
    python -m repro.faults --matrix smoke --seeds 1 --out resilience.json
    python -m repro.faults --scenario tcp-drop-dup --seeds 3
    python -m repro.faults --list
"""

from __future__ import annotations

import argparse
import json
import sys

from ..core.errors import ConfigurationError
from .scenarios import MATRICES, build_matrix


def run_campaign(
    matrix: str, seeds: list[int], only: list[str] | None = None
) -> dict:
    """Run the matrix; returns the JSON-serializable resilience report."""
    scenarios = build_matrix(matrix)
    if only:
        names = {s.name for s in scenarios}
        unknown = [n for n in only if n not in names]
        if unknown:
            raise ConfigurationError(
                f"unknown scenario(s) {unknown}; matrix {matrix!r} has: "
                f"{sorted(names)}"
            )
        scenarios = [s for s in scenarios if s.name in only]
    results = [scenario.run(seeds) for scenario in scenarios]
    return {
        "matrix": matrix,
        "seeds": seeds,
        "ok": all(r.ok for r in results),
        "scenarios": [r.as_dict() for r in results],
    }


def _print_summary(report: dict) -> None:
    print(
        f"fault campaign: matrix={report['matrix']} "
        f"seeds={report['seeds']}"
    )
    for scenario in report["scenarios"]:
        status = "green" if scenario["ok"] else "RED"
        injected = sum(
            t["info"].get("faults_injected", 0) for t in scenario["trials"]
        )
        print(
            f"  {scenario['name']:<24} [{scenario['profile']:<8}] "
            f"{status:>5}  ({len(scenario['trials'])} trials, "
            f"{injected} faults injected)"
        )
        for trial in scenario["trials"]:
            for violation in trial["violations"]:
                print(
                    f"    seed {trial['seed']}: {violation['monitor']}: "
                    f"{violation['detail']}"
                )
    print("resilient" if report["ok"] else "INVARIANT VIOLATIONS")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run fault-injection scenario campaigns.",
    )
    parser.add_argument(
        "--matrix",
        choices=sorted(MATRICES),
        default="default",
        help="scenario matrix to run (default: default)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=5,
        metavar="N",
        help="number of trials per scenario, seeds base..base+N-1",
    )
    parser.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="first trial seed (default 0)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="run only the named scenario (repeatable)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE.json",
        help="write the JSON resilience report here",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list matrices and scenarios, then exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(MATRICES):
            print(f"matrix {name}:")
            for scenario in build_matrix(name):
                print(f"  {scenario.name:<24} [{scenario.profile}]")
        return 0
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")

    seeds = list(range(args.base_seed, args.base_seed + args.seeds))
    try:
        report = run_campaign(args.matrix, seeds, only=args.scenario)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            json.dump(report, fp, indent=1, sort_keys=True)
            fp.write("\n")
    _print_summary(report)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
