"""Campaign CLI: ``python -m repro.faults``.

Runs a named scenario matrix over N seeds and emits a JSON resilience
report.  Exit status is 0 only when every invariant monitor stayed
green in every trial — CI uses this as the fault-scenario smoke gate.

``--jobs`` fans the campaign's (scenario, seed) trials out over forked
workers; trials are reassembled in scenario/seed order and per-worker
metric snapshots are merged deterministically, so the report is
byte-identical to a serial run.  ``--cache`` memoises green trials by
content hash — a re-run with unchanged scenario code replays from the
cache.

Examples::

    python -m repro.faults --matrix default --seeds 5
    python -m repro.faults --matrix smoke --seeds 1 --out resilience.json
    python -m repro.faults --scenario tcp-drop-dup --seeds 3
    python -m repro.faults --matrix smoke --jobs 4 --cache
    python -m repro.faults --list
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from pathlib import Path

from ..core.errors import ConfigurationError
from ..obs import FlightRecorder, MetricsRegistry
from ..par import (
    DEFAULT_CACHE_DIR,
    ForkPool,
    ProofCache,
    callable_fingerprint,
)
from .scenarios import MATRICES, Scenario, ScenarioResult, TrialResult, build_matrix

#: Scenarios inherited by forked campaign workers for the current run.
_SCENARIOS: list[Scenario] = []

#: Flight-recorder bundle root for the current run (None = off),
#: likewise inherited by forked workers.
_RECORDER_DIR: str | None = None


def _campaign_trial(item: tuple[int, int]) -> tuple[TrialResult, dict[str, Any]]:
    """Worker-side: run trial ``item = (scenario_index, seed)``.

    With recording on, each trial gets its own :class:`FlightRecorder`
    aimed at a per-(scenario, seed) bundle directory — workers share a
    filesystem, not memory, so the bundle is written worker-side and
    only its path crosses the pipe (in the trial info).
    """
    index, seed = item
    scenario = _SCENARIOS[index]
    recorder = None
    if _RECORDER_DIR is not None:
        recorder = FlightRecorder(
            directory=Path(_RECORDER_DIR) / f"{scenario.name}-seed{seed}"
        )
    return scenario.run_trial_with_metrics(seed, recorder=recorder)


def run_campaign(
    matrix: str,
    seeds: list[int],
    only: list[str] | None = None,
    jobs: int | None = None,
    cache: ProofCache | None = None,
    recorder_dir: str | None = None,
) -> dict:
    """Run the matrix; returns the JSON-serializable resilience report.

    All (scenario, seed) trials go through one worker pool, so slow
    scenarios don't serialize behind fast ones.  Results are
    reassembled in scenario/seed order and trial metric snapshots are
    merged into the report's ``metrics`` aggregate in that same order,
    making the report identical for any ``jobs`` value — including its
    merged histogram snapshots, whose integer log-buckets merge
    exactly.  With ``cache``, green trials are memoised keyed by the
    scenario's content hash (code + parameters); red trials always
    re-run.  ``recorder_dir`` arms a per-trial flight recorder: red
    trials leave a post-mortem bundle under
    ``recorder_dir/<scenario>-seed<seed>/`` (green trials leave
    nothing; note a cache hit replays a previous green verdict without
    re-running, so it never writes a bundle either).
    """
    global _RECORDER_DIR
    scenarios = build_matrix(matrix)
    if only:
        names = {s.name for s in scenarios}
        unknown = [n for n in only if n not in names]
        if unknown:
            raise ConfigurationError(
                f"unknown scenario(s) {unknown}; matrix {matrix!r} has: "
                f"{sorted(names)}"
            )
        scenarios = [s for s in scenarios if s.name in only]

    items = [
        (index, seed) for index, _ in enumerate(scenarios) for seed in seeds
    ]
    outcomes: dict[tuple[int, int], tuple[TrialResult, dict[str, Any]]] = {}
    keys: dict[tuple[int, int], str] = {}
    fps: dict[tuple[int, int], str] = {}
    if cache is not None:
        scenario_fps = [
            callable_fingerprint(s.run_trial_with_metrics, s.monitors())
            for s in scenarios
        ]
        for index, seed in items:
            scenario = scenarios[index]
            keys[(index, seed)] = f"trial:{matrix}:{scenario.name}:{seed}"
            fps[(index, seed)] = scenario_fps[index]
            hit = cache.get(keys[(index, seed)], fps[(index, seed)])
            if hit is not None:
                outcomes[(index, seed)] = (
                    TrialResult(seed=seed, violations=[], info=hit["info"]),
                    hit["metrics"],
                )

    pending = [item for item in items if item not in outcomes]
    if pending:
        _SCENARIOS.clear()
        _SCENARIOS.extend(scenarios)
        _RECORDER_DIR = recorder_dir
        try:
            with ForkPool(_campaign_trial, jobs=jobs) as pool:
                for item, outcome in zip(pending, pool.map(pending)):
                    outcomes[item] = outcome
                    trial, snapshot = outcome
                    if cache is not None and trial.ok:
                        cache.put(
                            keys[item],
                            fps[item],
                            {"info": trial.info, "metrics": snapshot},
                        )
        finally:
            _SCENARIOS.clear()
            _RECORDER_DIR = None

    registry = MetricsRegistry()
    results: list[ScenarioResult] = []
    for index, scenario in enumerate(scenarios):
        trials = []
        for seed in seeds:
            trial, snapshot = outcomes[(index, seed)]
            trials.append(trial)
            registry.merge_snapshot(snapshot)
        results.append(
            ScenarioResult(
                name=scenario.name, profile=scenario.profile, trials=trials
            )
        )
    merged = registry.snapshot()
    counters = merged["counters"]
    return {
        "matrix": matrix,
        "seeds": seeds,
        "ok": all(r.ok for r in results),
        "scenarios": [r.as_dict() for r in results],
        "metrics": {
            "faults_injected": int(
                sum(
                    value
                    for name, value in counters.items()
                    if name.endswith("/faults_injected")
                )
            ),
            "counters": len(counters),
            "histograms": len(registry.histograms),
            # The campaign-wide latency distributions (ARQ RTT,
            # handshake time, queue residency…), merged exactly from
            # per-trial snapshots in scenario/seed order — so this
            # section is byte-identical for any --jobs value, which CI
            # checks with a straight file compare.
            "hists": merged["hists"],
        },
    }


def _print_summary(report: dict) -> None:
    print(
        f"fault campaign: matrix={report['matrix']} "
        f"seeds={report['seeds']}"
    )
    for scenario in report["scenarios"]:
        status = "green" if scenario["ok"] else "RED"
        injected = sum(
            t["info"].get("faults_injected", 0) for t in scenario["trials"]
        )
        print(
            f"  {scenario['name']:<24} [{scenario['profile']:<8}] "
            f"{status:>5}  ({len(scenario['trials'])} trials, "
            f"{injected} faults injected)"
        )
        for trial in scenario["trials"]:
            for violation in trial["violations"]:
                print(
                    f"    seed {trial['seed']}: {violation['monitor']}: "
                    f"{violation['detail']}"
                )
            if "bundle" in trial["info"]:
                print(
                    f"    seed {trial['seed']}: flight bundle: "
                    f"{trial['info']['bundle']}"
                )
    print("resilient" if report["ok"] else "INVARIANT VIOLATIONS")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run fault-injection scenario campaigns.",
    )
    parser.add_argument(
        "--matrix",
        choices=sorted(MATRICES),
        default="default",
        help="scenario matrix to run (default: default)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=5,
        metavar="N",
        help="number of trials per scenario, seeds base..base+N-1",
    )
    parser.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="first trial seed (default 0)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="run only the named scenario (repeatable)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for trials; 0 = all CPUs (default: 1, serial)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="memoise green trials in the content-hash cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"trial cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--flight-recorder",
        metavar="DIR",
        help="arm a per-trial flight recorder; red trials dump a "
        "post-mortem bundle (spans + metrics + trigger) under DIR",
    )
    parser.add_argument(
        "--out",
        metavar="FILE.json",
        help="write the JSON resilience report here",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list matrices and scenarios, then exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(MATRICES):
            print(f"matrix {name}:")
            for scenario in build_matrix(name):
                print(f"  {scenario.name:<24} [{scenario.profile}]")
        return 0
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")

    seeds = list(range(args.base_seed, args.base_seed + args.seeds))
    cache = (
        ProofCache(root=args.cache_dir, domain="trials") if args.cache else None
    )
    try:
        report = run_campaign(
            args.matrix,
            seeds,
            only=args.scenario,
            jobs=args.jobs,
            cache=cache,
            recorder_dir=args.flight_recorder,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            json.dump(report, fp, indent=1, sort_keys=True)
            fp.write("\n")
    _print_summary(report)
    if cache is not None:
        stats = cache.stats()
        print(
            f"trial cache: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['entries']} entries"
        )
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
