"""Invariant monitors: what must survive the injected adversity.

A monitor is a pure check over the :class:`Evidence` one scenario trial
leaves behind — the traffic ledger (what each flow sent and received),
the :class:`~repro.obs.MetricsRegistry` every stack and link reported
into, any exceptions that escaped a sublayer, and scenario extras
(e.g. routing convergence observations).  Monitors return
:class:`Violation` records; an empty list means the invariant held.

The telemetry the monitors consume is the same the repo already
collects (``Sublayer.count`` → metrics registry, link counters): the
harness adds no private instrumentation channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..obs import MetricsRegistry


@dataclass(frozen=True)
class Violation:
    """One invariant breach in one trial."""

    monitor: str
    detail: str

    def as_dict(self) -> dict[str, str]:
        return {"monitor": self.monitor, "detail": self.detail}


@dataclass
class Evidence:
    """Everything one scenario trial exposes to the monitors.

    ``sent``/``received`` map a flow label to either a list of message
    payloads (datagram-style flows) or a single ``bytes`` stream
    (stream-style flows); a monitor handles both shapes.
    """

    scenario: str
    seed: int
    metrics: MetricsRegistry
    sent: dict[str, Any] = field(default_factory=dict)
    received: dict[str, Any] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)
    links: list[Any] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)


class Monitor:
    """Base: a named invariant check over one trial's evidence."""

    name = "monitor"

    def check(self, evidence: Evidence) -> list[Violation]:
        raise NotImplementedError

    def _violation(self, detail: str) -> Violation:
        return Violation(self.name, detail)


def _counts(items: list[Any]) -> dict[Any, int]:
    out: dict[Any, int] = {}
    for item in items:
        out[item] = out.get(item, 0) + 1
    return out


class NoDataLossMonitor(Monitor):
    """Everything sent above the faulted sublayer arrives at the peer.

    For message flows: every sent payload must be received at least as
    many times as it was sent (loss shows as a missing copy; duplicate
    delivery is :class:`InOrderDeliveryMonitor`'s business).  For
    stream flows: the received byte stream must be at least as long as
    the sent one and start with it.
    """

    name = "no-data-loss"

    def check(self, evidence: Evidence) -> list[Violation]:
        violations: list[Violation] = []
        for flow, sent in evidence.sent.items():
            received = evidence.received.get(flow)
            if isinstance(sent, (bytes, bytearray)):
                got = bytes(received or b"")
                if len(got) < len(sent) or not got.startswith(bytes(sent)):
                    violations.append(
                        self._violation(
                            f"flow {flow!r}: sent {len(sent)} bytes, "
                            f"received {len(got)} "
                            f"({'prefix mismatch' if got else 'nothing'})"
                        )
                    )
                continue
            have = _counts(list(received or []))
            missing = 0
            for payload, copies in _counts(list(sent)).items():
                if have.get(payload, 0) < copies:
                    missing += copies - have.get(payload, 0)
            if missing:
                violations.append(
                    self._violation(
                        f"flow {flow!r}: {missing} of {len(sent)} "
                        "sent units never delivered"
                    )
                )
        return violations


class InOrderDeliveryMonitor(Monitor):
    """Exactly-once, in-order delivery: received equals sent, exactly."""

    name = "in-order-delivery"

    def check(self, evidence: Evidence) -> list[Violation]:
        violations: list[Violation] = []
        for flow, sent in evidence.sent.items():
            received = evidence.received.get(flow)
            if isinstance(sent, (bytes, bytearray)):
                if bytes(received or b"") != bytes(sent):
                    violations.append(
                        self._violation(
                            f"flow {flow!r}: received stream "
                            f"({len(received or b'')} bytes) != sent "
                            f"({len(sent)} bytes)"
                        )
                    )
            elif list(received or []) != list(sent):
                violations.append(
                    self._violation(
                        f"flow {flow!r}: received sequence differs from "
                        f"sent ({len(received or [])} vs {len(sent)} units)"
                    )
                )
        return violations


class NoEscapeMonitor(Monitor):
    """No exception escapes a sublayer into the event loop."""

    name = "no-exception-escape"

    def check(self, evidence: Evidence) -> list[Violation]:
        return [self._violation(error) for error in evidence.errors]


class FaultsInjectedMonitor(Monitor):
    """The adversity actually happened (non-vacuity guard).

    Sums every ``*/faults_injected`` counter in the registry; a trial
    whose faults never fired would vacuously pass the other monitors.
    """

    name = "faults-injected"

    def __init__(self, minimum: int = 1):
        self.minimum = minimum

    def check(self, evidence: Evidence) -> list[Violation]:
        snapshot = evidence.metrics.snapshot()
        total = sum(
            value
            for name, value in snapshot.get("counters", {}).items()
            if name.endswith("/faults_injected")
        )
        if total < self.minimum:
            return [
                self._violation(
                    f"only {int(total)} faults fired "
                    f"(expected >= {self.minimum}): the trial proves nothing"
                )
            ]
        return []


class LinkCorruptionVisibleMonitor(Monitor):
    """Link bit-error corruption is visible to metrics.

    Cross-checks every link's ``stats.corrupted`` against the
    ``link/<name>/bit_errors`` counter the link reports — the metrics
    pipeline may not under-count the adversity it is evidence for.
    """

    name = "link-corruption-visible"

    def check(self, evidence: Evidence) -> list[Violation]:
        counters = evidence.metrics.snapshot().get("counters", {})
        violations: list[Violation] = []
        for link in evidence.links:
            reported = counters.get(f"link/{link.name}/bit_errors", 0)
            if int(reported) != link.stats.corrupted:
                violations.append(
                    self._violation(
                        f"link {link.name!r}: stats.corrupted="
                        f"{link.stats.corrupted} but metrics report "
                        f"{int(reported)} bit_errors"
                    )
                )
        return violations


class ReconvergenceMonitor(Monitor):
    """Routing reconverges (and routes correctly) after a blackhole.

    The routing scenario records named boolean observations in
    ``extras["convergence"]``; each must be true.
    """

    name = "reconvergence"

    def check(self, evidence: Evidence) -> list[Violation]:
        observations = evidence.extras.get("convergence", {})
        if not observations:
            return [self._violation("no convergence observations recorded")]
        return [
            self._violation(f"{label} failed")
            for label, ok in observations.items()
            if not ok
        ]
