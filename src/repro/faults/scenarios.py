"""Resilience scenarios: stack profile × fault plan × traffic × monitors.

A :class:`Scenario` composes four declarative pieces —

* a stack profile from :mod:`repro.compose` (hdlc, wireless, tcp,
  quic) or a routed :class:`~repro.network.topology.Topology`;
* a *fault plan*: :class:`FaultSpec` entries naming where in the stack
  each :class:`~repro.faults.sublayers.FaultSublayer` is inserted and
  how to build it from a seeded rng stream;
* a traffic generator and stop condition run through
  :class:`repro.sim.Simulator`;
* the invariant :mod:`monitors <repro.faults.monitors>` that must hold
  over the evidence the run leaves behind —

and runs N seeded trials.  Every random choice (fault rng, link rng,
MAC backoff) draws from a named :class:`~repro.sim.rng.RngFactory`
stream of the trial seed, so a trial is a pure function of
``(scenario, seed)`` and any red result replays exactly.

The built-in scenarios put each fault *below* the sublayer whose job
is to mask it: drop/duplicate/corrupt below ARQ (hdlc), drop between
ARQ and MAC (wireless), drop/duplicate below RD (tcp), drop below the
QUIC connection sublayer.  The ``arq=False`` wireless variant is the
negative control: with recovery removed the same faults must turn the
no-data-loss monitor red, proving the monitors bite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.errors import ConfigurationError
from ..datalink.stacks import (
    build_hdlc_stack,
    build_wireless_station,
    collect_bytes,
    send_bytes,
)
from ..network import LinkState, Topology
from ..obs import MetricsRegistry
from ..par import fork_map
from ..sim import (
    BroadcastMedium,
    DuplexLink,
    LinkConfig,
    RngFactory,
    Simulator,
)
from ..transport.config import TcpConfig
from ..transport.quic import QuicHost
from ..transport.sublayered import SublayeredTcpHost
from .monitors import (
    Evidence,
    FaultsInjectedMonitor,
    InOrderDeliveryMonitor,
    LinkCorruptionVisibleMonitor,
    Monitor,
    NoDataLossMonitor,
    NoEscapeMonitor,
    ReconvergenceMonitor,
    Violation,
)
from .schedule import FaultSchedule
from .sublayers import CorruptBitsFault, DropFault, DuplicateFault, FaultSublayer

#: Instrumentation tier scenario stacks run at: monitors consume
#: metrics, not the litmus logs, and trials are traffic-heavy.
SCENARIO_TIER = "metrics"


@dataclass(frozen=True)
class FaultSpec:
    """One fault position in a plan: where it goes, how to build it."""

    slot: str
    where: str
    label: str
    make: Callable[[random.Random], FaultSublayer]

    def realise(self, rng: RngFactory, endpoint: str) -> FaultSublayer:
        """A fresh fault instance on its own named rng stream."""
        return self.make(rng.stream(f"fault:{endpoint}:{self.label}"))


def _insertions(
    plan: list[FaultSpec], rng: RngFactory, endpoint: str
) -> list[tuple[str, str, Any]]:
    return [
        (spec.slot, spec.where, spec.realise(rng, endpoint)) for spec in plan
    ]


# ----------------------------------------------------------------------
# Trial / scenario results
# ----------------------------------------------------------------------
@dataclass
class TrialResult:
    """One seeded trial's verdict: monitor violations plus run info."""

    seed: int
    violations: list[Violation]
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no invariant monitor fired."""
        return not self.violations

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable form (deterministic for a given seed)."""
        return {
            "seed": self.seed,
            "ok": self.ok,
            "violations": [v.as_dict() for v in self.violations],
            "info": self.info,
        }


@dataclass
class ScenarioResult:
    """All trials of one scenario, in seed order."""

    name: str
    profile: str
    trials: list[TrialResult]

    @property
    def ok(self) -> bool:
        """True when every trial stayed green."""
        return all(t.ok for t in self.trials)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable form (trial dicts in seed order)."""
        return {
            "name": self.name,
            "profile": self.profile,
            "ok": self.ok,
            "trials": [t.as_dict() for t in self.trials],
        }


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
def run_until(
    sim: Simulator,
    done: Callable[[], bool],
    timeout: float,
    step: float = 1.0,
) -> bool:
    """Drive the simulator until ``done()`` or the timeout; True if done."""
    while sim.now < timeout:
        if done():
            return True
        sim.run(until=min(sim.now + step, timeout))
    return done()


class Scenario:
    """Base: N seeded trials, each checked by the invariant monitors.

    A trial is a pure function of ``(scenario, seed)`` — every random
    choice draws from a named stream of the trial seed — which is what
    makes trials safe to fan out over forked workers (:meth:`run` with
    ``jobs``) and to memoise by content hash (the campaign cache in
    :mod:`repro.faults.__main__`).
    """

    name = "scenario"
    profile = "?"

    #: The trial's flight recorder, set by :meth:`run_trial_with_metrics`
    #: for the duration of one :meth:`execute` (None = not recording).
    recorder: Any = None

    def monitors(self) -> list[Monitor]:
        """The invariant monitors that judge each trial's evidence."""
        raise NotImplementedError

    def execute(self, seed: int) -> Evidence:
        """Build the world, run the traffic, return the evidence."""
        raise NotImplementedError

    def _observe(self, registry: Any, *stacks: Any) -> None:
        """Hand the trial's registry and stacks to the flight recorder.

        Every ``execute`` calls this once its world is built; with no
        recorder installed it is a no-op, so scenarios pay nothing in
        the common unrecorded case.
        """
        if self.recorder is not None:
            self.recorder.observe(registry, *stacks)

    def run_trial(self, seed: int) -> TrialResult:
        """Execute one seeded trial and judge it with the monitors."""
        trial, _ = self.run_trial_with_metrics(seed)
        return trial

    def run_trial_with_metrics(
        self, seed: int, recorder: Any = None
    ) -> tuple[TrialResult, dict[str, Any]]:
        """One trial plus the metrics snapshot its run left behind.

        The snapshot (JSON-serializable, picklable) is what crosses the
        pipe from forked workers; the parent folds the snapshots into a
        campaign-wide registry via
        :meth:`~repro.obs.MetricsRegistry.merge_snapshot`.

        ``recorder`` (a :class:`~repro.obs.FlightRecorder`) rides along
        for the trial: ``execute`` attaches it to the trial's stacks
        and registry, and a red verdict — monitor violations, collected
        errors, or an exception a sublayer let escape — triggers the
        post-mortem bundle dump.  Green trials write nothing.
        """
        self.recorder = recorder
        try:
            evidence = self.execute(seed)
        finally:
            self.recorder = None
        violations = [
            violation
            for monitor in self.monitors()
            for violation in monitor.check(evidence)
        ]
        info = dict(evidence.extras.get("info", {}))
        snapshot = evidence.metrics.snapshot()
        info["faults_injected"] = int(
            sum(
                value
                for name, value in snapshot["counters"].items()
                if name.endswith("/faults_injected")
            )
        )
        if recorder is not None:
            recorder.detach()
            if violations or evidence.errors:
                bundle = recorder.dump(
                    {
                        "scenario": self.name,
                        "seed": seed,
                        "violations": [v.as_dict() for v in violations],
                        "errors": list(evidence.errors),
                    }
                )
                info["bundle"] = str(bundle)
        return TrialResult(seed=seed, violations=violations, info=info), snapshot

    def run(self, seeds: list[int], jobs: int | None = None) -> ScenarioResult:
        """Run one trial per seed; ``jobs`` fans trials over forked workers.

        Trials are returned in seed order whatever finishes first, so a
        parallel run's :class:`ScenarioResult` is identical to a serial
        run's.
        """
        return ScenarioResult(
            name=self.name,
            profile=self.profile,
            trials=fork_map(self.run_trial, seeds, jobs=jobs),
        )

    # ------------------------------------------------------------------
    def _drive(
        self,
        sim: Simulator,
        evidence: Evidence,
        done: Callable[[], bool],
        timeout: float,
    ) -> None:
        """Run the event loop, catching anything a sublayer lets escape."""
        try:
            finished = run_until(sim, done, timeout)
        except Exception as exc:  # noqa: BLE001 — escapes ARE the finding
            evidence.errors.append(f"{type(exc).__name__}: {exc}")
            finished = False
        evidence.extras.setdefault("info", {}).update(
            {"finished": finished, "virtual_time": round(sim.now, 3)}
        )


# ----------------------------------------------------------------------
# HDLC: drop + duplicate + corruption below the ARQ sublayer
# ----------------------------------------------------------------------
class HdlcScenario(Scenario):
    """Point-to-point HDLC under drop, duplication, and bit corruption."""

    name = "hdlc-drop-dup-corrupt"
    profile = "hdlc"

    def __init__(
        self,
        messages: int = 12,
        drop: float = 0.15,
        duplicate: float = 0.1,
        corrupt: float = 0.1,
        timeout: float = 240.0,
    ):
        """Configure traffic volume, fault probabilities, and timeout."""
        self.messages = messages
        self.drop = drop
        self.duplicate = duplicate
        self.corrupt = corrupt
        self.timeout = timeout

    def plan(self) -> list[FaultSpec]:
        """Drop + duplicate below ARQ, corruption below the CRC."""
        return [
            FaultSpec(
                "arq", "after", "drop",
                lambda rng: DropFault(
                    "fault-drop",
                    FaultSchedule.with_probability(self.drop),
                    rng,
                ),
            ),
            FaultSpec(
                "arq", "after", "dup",
                lambda rng: DuplicateFault(
                    "fault-dup",
                    FaultSchedule.with_probability(self.duplicate),
                    rng,
                ),
            ),
            # Below the CRC: flipped bits must be detected there and
            # recovered above, exactly like line noise.
            FaultSpec(
                "errordetect", "after", "corrupt",
                lambda rng: CorruptBitsFault(
                    "fault-corrupt",
                    FaultSchedule.with_probability(self.corrupt),
                    rng,
                    flips=3,
                ),
            ),
        ]

    def monitors(self) -> list[Monitor]:
        """Loss, ordering, escape, injection, and corruption-visibility."""
        return [
            NoDataLossMonitor(),
            InOrderDeliveryMonitor(),
            NoEscapeMonitor(),
            FaultsInjectedMonitor(),
            LinkCorruptionVisibleMonitor(),
        ]

    def execute(self, seed: int) -> Evidence:
        """Two HDLC stacks over a noisy duplex link; a sends, b collects."""
        sim = Simulator()
        rng = RngFactory(seed)
        registry = MetricsRegistry()
        plan = self.plan()
        stacks = [
            build_hdlc_stack(
                f"dl-{end}",
                sim.clock(),
                retransmit_timeout=0.1,
                tier=SCENARIO_TIER,
                insertions=_insertions(plan, rng, end),
                metrics=registry,
            )
            for end in ("a", "b")
        ]
        duplex = DuplexLink(
            sim,
            LinkConfig(delay=0.01, bit_error_rate=0.0005),
            rng_forward=rng.stream("link:fwd"),
            rng_reverse=rng.stream("link:rev"),
            name="hdlc",
            metrics=registry,
        )
        duplex.attach(stacks[0], stacks[1])
        self._observe(registry, *stacks)
        inbox = collect_bytes(stacks[1])
        messages = [f"frame-{seed}-{i}".encode() for i in range(self.messages)]
        for message in messages:
            send_bytes(stacks[0], message)
        evidence = Evidence(
            scenario=self.name,
            seed=seed,
            metrics=registry,
            sent={"a->b": messages},
            received={"a->b": inbox},
            links=[duplex.forward, duplex.reverse],
        )
        self._drive(
            sim, evidence, lambda: len(inbox) >= len(messages), self.timeout
        )
        return evidence


# ----------------------------------------------------------------------
# Wireless: ARQ inserted above the MAC, drop fault between them
# ----------------------------------------------------------------------
class WirelessScenario(Scenario):
    """Broadcast stations with a drop fault between recovery and MAC.

    The wireless profile ships without error recovery; this scenario
    *inserts* a go-back-N ARQ above the MAC — the same sublayering
    operation as the fault itself — so the no-data-loss invariant
    holds.  ``arq=False`` removes only the recovery sublayer and is
    the campaign's negative control: the monitors must turn red.
    """

    profile = "wireless"

    def __init__(
        self,
        messages: int = 10,
        drop: float = 0.25,
        arq: bool = True,
        timeout: float = 120.0,
    ):
        """Configure traffic, drop probability, and the ARQ control."""
        self.messages = messages
        self.drop = drop
        self.arq = arq
        self.timeout = timeout
        self.name = "wireless-drop-arq" if arq else "wireless-drop-noarq"

    def monitors(self) -> list[Monitor]:
        """Loss, ordering, escape, and injection-evidence monitors."""
        return [
            NoDataLossMonitor(),
            InOrderDeliveryMonitor(),
            NoEscapeMonitor(),
            FaultsInjectedMonitor(),
        ]

    def execute(self, seed: int) -> Evidence:
        """Two stations on a broadcast medium; 0 sends, 1 collects."""
        from ..datalink.arq import GoBackNArq

        sim = Simulator()
        rng = RngFactory(seed)
        registry = MetricsRegistry()
        medium = BroadcastMedium(sim, rate_bps=200_000.0)

        def station(address: int) -> Any:
            """One station stack with the ARQ/fault insertions applied."""
            insertions: list[tuple[str, str, Any]] = []
            if self.arq:
                insertions.append(
                    (
                        "mac",
                        "before",
                        GoBackNArq(
                            "recovery",
                            retransmit_timeout=0.12,
                            max_retries=40,
                            window=4,
                        ),
                    )
                )
            insertions.append(
                (
                    "mac",
                    "before",
                    DropFault(
                        "fault-drop",
                        FaultSchedule.with_probability(self.drop),
                        rng.stream(f"fault:{address}:drop"),
                    ),
                )
            )
            return build_wireless_station(
                sim,
                medium,
                address=address,
                rng=rng.stream(f"mac:{address}"),
                tier=SCENARIO_TIER,
                insertions=insertions,
                metrics=registry,
            )

        stacks = [station(0), station(1)]
        self._observe(registry, *stacks)
        inbox = collect_bytes(stacks[1])
        collect_bytes(stacks[0])  # sink station 0's deliveries too
        messages = [f"wl-{seed}-{i}".encode() for i in range(self.messages)]
        for message in messages:
            send_bytes(stacks[0], message)
        evidence = Evidence(
            scenario=self.name,
            seed=seed,
            metrics=registry,
            sent={"0->1": messages},
            received={"0->1": inbox},
        )
        self._drive(
            sim, evidence, lambda: len(inbox) >= len(messages), self.timeout
        )
        return evidence


# ----------------------------------------------------------------------
# TCP: drop + duplicate between RD and CM
# ----------------------------------------------------------------------
class TcpScenario(Scenario):
    """Sublayered TCP transferring a byte stream under drop + duplication."""

    name = "tcp-drop-dup"
    profile = "tcp"

    def __init__(
        self,
        nbytes: int = 20_000,
        drop: float = 0.08,
        duplicate: float = 0.05,
        timeout: float = 300.0,
    ):
        """Configure transfer size, fault probabilities, and timeout."""
        self.nbytes = nbytes
        self.drop = drop
        self.duplicate = duplicate
        self.timeout = timeout

    def plan(self) -> list[FaultSpec]:
        """Drop + duplicate between RD and CM (data path, not handshake)."""
        # Below RD (whose job is reliable delivery), above CM: data
        # segments and acks take the faults, the connection handshake
        # (CM's own segments) does not — the invariant under test is
        # RD's, not CM's.
        return [
            FaultSpec(
                "rd", "after", "drop",
                lambda rng: DropFault(
                    "fault-drop",
                    FaultSchedule.with_probability(self.drop),
                    rng,
                ),
            ),
            FaultSpec(
                "rd", "after", "dup",
                lambda rng: DuplicateFault(
                    "fault-dup",
                    FaultSchedule.with_probability(self.duplicate),
                    rng,
                ),
            ),
        ]

    def monitors(self) -> list[Monitor]:
        """Loss, ordering, escape, and injection-evidence monitors."""
        return [
            NoDataLossMonitor(),
            InOrderDeliveryMonitor(),
            NoEscapeMonitor(),
            FaultsInjectedMonitor(),
        ]

    def execute(self, seed: int) -> Evidence:
        """One TCP transfer a->b over a faulty link; evidence is the bytes."""
        sim = Simulator()
        rng = RngFactory(seed)
        registry = MetricsRegistry()
        plan = self.plan()
        config = TcpConfig(mss=1000)
        hosts = {
            end: SublayeredTcpHost(
                end,
                sim.clock(),
                config,
                metrics=registry,
                tier=SCENARIO_TIER,
                insertions=_insertions(plan, rng, end),
            )
            for end in ("a", "b")
        }
        duplex = DuplexLink(
            sim,
            LinkConfig(delay=0.02, rate_bps=8_000_000),
            rng_forward=rng.stream("link:fwd"),
            rng_reverse=rng.stream("link:rev"),
            name="tcp",
            metrics=registry,
        )
        duplex.attach(hosts["a"], hosts["b"])
        self._observe(registry, hosts["a"], hosts["b"])

        hosts["b"].listen(80)
        data = bytes((seed + i) % 251 for i in range(self.nbytes))
        received: dict[str, bytes] = {"a->b": b""}

        def accept(peer_sock: Any) -> None:
            """Track the receiver-side byte stream as it grows."""
            peer_sock.on_data = lambda _chunk: received.__setitem__(
                "a->b", peer_sock.bytes_received()
            )

        hosts["b"].on_accept = accept
        sock = hosts["a"].connect(12345, 80)
        sock.on_connect = lambda: (sock.send(data), sock.close())

        evidence = Evidence(
            scenario=self.name,
            seed=seed,
            metrics=registry,
            sent={"a->b": data},
            received=received,
            links=[duplex.forward, duplex.reverse],
        )
        self._drive(
            sim,
            evidence,
            lambda: len(received["a->b"]) >= len(data),
            self.timeout,
        )
        return evidence


# ----------------------------------------------------------------------
# QUIC: drop below the record sublayer (loss recovery lives above)
# ----------------------------------------------------------------------
class QuicScenario(Scenario):
    """QUIC streams transferring under packet drop below the record layer."""

    name = "quic-drop"
    profile = "quic"

    def __init__(
        self,
        nbytes: int = 15_000,
        streams: int = 2,
        drop: float = 0.1,
        timeout: float = 300.0,
    ):
        """Configure per-stream size, stream count, drop rate, timeout."""
        self.nbytes = nbytes
        self.streams = streams
        self.drop = drop
        self.timeout = timeout

    def plan(self) -> list[FaultSpec]:
        """Drop every encrypted packet with probability ``drop``."""
        # Below record = every encrypted packet.  start_unit=2 lets the
        # first handshake flight through so trials measure steady-state
        # loss recovery, not handshake-retry luck.
        return [
            FaultSpec(
                "record", "after", "drop",
                lambda rng: DropFault(
                    "fault-drop",
                    FaultSchedule(probability=self.drop, start_unit=2),
                    rng,
                ),
            ),
        ]

    def monitors(self) -> list[Monitor]:
        """Loss, ordering, escape, and injection-evidence monitors."""
        return [
            NoDataLossMonitor(),
            InOrderDeliveryMonitor(),
            NoEscapeMonitor(),
            FaultsInjectedMonitor(),
        ]

    def execute(self, seed: int) -> Evidence:
        """A multi-stream QUIC transfer a->b over a lossy link."""
        sim = Simulator()
        rng = RngFactory(seed)
        registry = MetricsRegistry()
        plan = self.plan()
        hosts = {
            end: QuicHost(
                end,
                sim.clock(),
                metrics=registry,
                tier=SCENARIO_TIER,
                insertions=_insertions(plan, rng, end),
            )
            for end in ("a", "b")
        }
        duplex = DuplexLink(
            sim,
            LinkConfig(delay=0.02, rate_bps=8_000_000),
            rng_forward=rng.stream("link:fwd"),
            rng_reverse=rng.stream("link:rev"),
            name="quic",
            metrics=registry,
        )
        duplex.attach(hosts["a"], hosts["b"])
        self._observe(registry, hosts["a"], hosts["b"])

        hosts["b"].listen(443)
        payloads = {
            sid: bytes((seed + sid + i) % 251 for i in range(self.nbytes))
            for sid in range(1, self.streams + 1)
        }
        conn = hosts["a"].connect(5000, 443)
        conn.on_connect = lambda: [
            conn.send(sid, data, fin=True) for sid, data in payloads.items()
        ]

        def done() -> bool:
            """All stream payloads fully received on the b side."""
            peer = hosts["b"].connection_for(443, 5000)
            return peer is not None and all(
                len(peer.stream_bytes(sid)) >= len(data)
                for sid, data in payloads.items()
            )

        evidence = Evidence(
            scenario=self.name,
            seed=seed,
            metrics=registry,
            sent={f"stream-{sid}": data for sid, data in payloads.items()},
            received={},
            links=[duplex.forward, duplex.reverse],
        )
        self._drive(sim, evidence, done, self.timeout)
        peer = hosts["b"].connection_for(443, 5000)
        for sid in payloads:
            evidence.received[f"stream-{sid}"] = (
                peer.stream_bytes(sid) if peer is not None else b""
            )
        return evidence


# ----------------------------------------------------------------------
# Routing: link blackhole window, reconvergence required
# ----------------------------------------------------------------------
class RoutingScenario(Scenario):
    """A diamond topology rides out a link blackhole window.

    The failed link is the blackhole; the invariant is Zave's "remaining
    improbable" one: the control plane must reconverge to correct
    routes after both the failure and the repair, and data must flow
    again each time.
    """

    name = "routing-blackhole"
    profile = "routing"

    EDGES = [(1, 2), (2, 4), (1, 3), (3, 4)]

    def __init__(self, converge_timeout: float = 30.0):
        """Configure the per-phase convergence timeout."""
        self.converge_timeout = converge_timeout

    def monitors(self) -> list[Monitor]:
        """Reconvergence observations plus the no-escape check."""
        return [ReconvergenceMonitor(), NoEscapeMonitor()]

    def execute(self, seed: int) -> Evidence:
        """Fail and repair a diamond-topology link, recording convergence."""
        sim = Simulator()
        registry = MetricsRegistry()
        # Routed topologies drive router stacks internally; the
        # recorder still gets the registry for its metric checkpoints.
        self._observe(registry)
        evidence = Evidence(
            scenario=self.name, seed=seed, metrics=registry
        )
        observations: dict[str, bool] = {}
        evidence.extras["convergence"] = observations
        try:
            topo = Topology.build(
                sim, self.EDGES, routing_cls=LinkState, seed=seed
            )
            topo.start()
            observations["initial-convergence"] = (
                topo.converge(timeout=self.converge_timeout) is not None
            )
            topo.send_data(1, 4, b"before")
            sim.run(until=sim.now + 2)
            observations["delivery-before-blackhole"] = any(
                (p.src, p.dst) == (1, 4) for p in topo.delivered
            )

            topo.fail_link(1, 2)
            observations["reconvergence-after-blackhole"] = (
                topo.converge(timeout=self.converge_timeout) is not None
            )
            observations["routes-correct-after-blackhole"] = all(
                topo.routes_correct(source) for source in topo.routers
            )
            delivered_before = len(topo.delivered)
            topo.send_data(1, 4, b"during")
            sim.run(until=sim.now + 2)
            observations["delivery-after-blackhole"] = (
                len(topo.delivered) > delivered_before
            )

            topo.restore_link(1, 2)
            observations["reconvergence-after-repair"] = (
                topo.converge(timeout=self.converge_timeout) is not None
            )
            observations["routes-correct-after-repair"] = all(
                topo.routes_correct(source) for source in topo.routers
            )
        except Exception as exc:  # noqa: BLE001 — escapes ARE the finding
            evidence.errors.append(f"{type(exc).__name__}: {exc}")
        evidence.extras.setdefault("info", {})["virtual_time"] = round(
            sim.now, 3
        )
        return evidence


# ----------------------------------------------------------------------
# Matrices
# ----------------------------------------------------------------------
def default_matrix() -> list[Scenario]:
    """The full campaign: every profile, its characteristic faults."""
    return [
        HdlcScenario(),
        WirelessScenario(),
        TcpScenario(),
        QuicScenario(),
        RoutingScenario(),
    ]


def smoke_matrix() -> list[Scenario]:
    """Reduced traffic for CI smoke runs: same shapes, less volume."""
    return [
        HdlcScenario(messages=6, timeout=120.0),
        WirelessScenario(messages=6, timeout=90.0),
        TcpScenario(nbytes=6_000, timeout=180.0),
        QuicScenario(nbytes=5_000, streams=1, timeout=180.0),
        RoutingScenario(),
    ]


def negative_matrix() -> list[Scenario]:
    """The deliberately-red control: recovery removed, monitors must
    fire.  Kept out of ``default``/``smoke`` so a green campaign stays
    meaningful; CI runs it separately to prove the flight recorder
    dumps a bundle when trials go red.  ``drop=0.4`` makes the medium
    hostile enough that every early seed actually loses data, so the
    red comes from the loss monitors rather than the injection-evidence
    backstop."""
    return [
        WirelessScenario(messages=8, drop=0.4, arq=False, timeout=90.0),
    ]


MATRICES: dict[str, Callable[[], list[Scenario]]] = {
    "default": default_matrix,
    "negative": negative_matrix,
    "smoke": smoke_matrix,
}


def build_matrix(name: str) -> list[Scenario]:
    """Instantiate a named scenario matrix (ConfigurationError if unknown)."""
    try:
        return MATRICES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario matrix {name!r}; available: {sorted(MATRICES)}"
        ) from None
