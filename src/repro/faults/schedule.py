"""Declarative fault schedules: *when* a fault sublayer misbehaves.

A :class:`FaultSchedule` is a frozen value deciding, per unit crossing
the fault sublayer, whether the fault fires.  The gates compose (all
must pass):

* a unit-count window (``start_unit`` ≤ index < ``stop_unit``);
* a virtual-time window (``start_time`` ≤ now < ``stop_time``);
* a stride (every ``every``-th eligible unit);
* a predicate over ``(unit, meta)``;
* a probability drawn from the fault's own named rng stream.

The probability draw happens *last* and only when ``probability < 1``,
so adding a deterministic window to a schedule never shifts the rng
stream of another fault — campaigns stay a pure function of the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class FaultSchedule:
    """When a fault fires, as a conjunction of declarative gates."""

    probability: float = 1.0
    start_unit: int = 0
    stop_unit: int | None = None
    every: int = 1
    start_time: float | None = None
    stop_time: float | None = None
    predicate: Callable[[Any, dict[str, Any]], bool] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.start_unit < 0:
            raise ConfigurationError("start_unit must be non-negative")
        if self.stop_unit is not None and self.stop_unit <= self.start_unit:
            raise ConfigurationError("stop_unit must exceed start_unit")
        if self.every < 1:
            raise ConfigurationError("every must be >= 1")
        if (
            self.start_time is not None
            and self.stop_time is not None
            and self.stop_time <= self.start_time
        ):
            raise ConfigurationError("stop_time must exceed start_time")

    # ------------------------------------------------------------------
    def in_window(self, index: int, now: float) -> bool:
        """The unit-count and virtual-time gates alone.

        :class:`~repro.faults.sublayers.StallFault` uses this to decide
        window membership without consuming a probability draw.
        """
        if index < self.start_unit:
            return False
        if self.stop_unit is not None and index >= self.stop_unit:
            return False
        if self.start_time is not None and now < self.start_time:
            return False
        if self.stop_time is not None and now >= self.stop_time:
            return False
        return True

    def fires(
        self,
        index: int,
        now: float,
        rng: random.Random,
        unit: Any = None,
        meta: dict[str, Any] | None = None,
    ) -> bool:
        """Does the fault fire for the ``index``-th unit at time ``now``?"""
        if not self.in_window(index, now):
            return False
        if (index - self.start_unit) % self.every != 0:
            return False
        if self.predicate is not None and not self.predicate(unit, meta or {}):
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        return True

    # ------------------------------------------------------------------
    # Common shapes
    # ------------------------------------------------------------------
    @classmethod
    def always(cls) -> "FaultSchedule":
        """Fire on every crossing."""
        return cls()

    @classmethod
    def with_probability(cls, probability: float) -> "FaultSchedule":
        """Fire on each crossing independently with this probability."""
        return cls(probability=probability)

    @classmethod
    def once(cls, at_unit: int) -> "FaultSchedule":
        """Fire exactly once, on the ``at_unit``-th crossing."""
        return cls(start_unit=at_unit, stop_unit=at_unit + 1)

    @classmethod
    def every_nth(cls, n: int, start: int = 0) -> "FaultSchedule":
        """Fire on every ``n``-th crossing, beginning at ``start``."""
        return cls(every=n, start_unit=start)

    @classmethod
    def unit_window(cls, start: int, stop: int) -> "FaultSchedule":
        """Fire for crossings numbered ``start`` up to (not incl.) ``stop``."""
        return cls(start_unit=start, stop_unit=stop)

    @classmethod
    def time_window(cls, start: float, stop: float) -> "FaultSchedule":
        """Fire for every unit inside a virtual-time window."""
        return cls(start_time=start, stop_time=stop)

    @classmethod
    def when(
        cls, predicate: Callable[[Any, dict[str, Any]], bool]
    ) -> "FaultSchedule":
        """Fire whenever ``predicate(sdu, meta)`` holds."""
        return cls(predicate=predicate)
