"""Fault injectors that are genuine sublayers.

Every class here is a :class:`~repro.core.sublayer.Sublayer` subclass
with ``TRANSPARENT = True``: it offers no service interface, owns no
header, and the control plane wires straight past it — its neighbours
cannot tell it is there.  Inserting one into a stack is therefore a
pure sublayering operation (:meth:`repro.core.stack.Stack.insert`,
:meth:`repro.compose.StackBuilder.with_fault`) and the stack still
passes the litmus tests.

Each fault is driven by a :class:`~repro.faults.schedule.FaultSchedule`
and a dedicated rng (use a named :class:`repro.sim.rng.RngFactory`
stream so campaigns replay bit-for-bit).  ``direction`` selects which
data path the fault afflicts: ``"down"`` (transmit side), ``"up"``
(receive side), or ``"both"``.

Faults keep honest books: every class counts ``units_seen`` and
``faults_injected`` through :meth:`~repro.core.sublayer.Sublayer.count`
so monitors can assert the adversity actually happened (a resilience
run whose faults never fired proves nothing).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from ..core.bits import Bits
from ..core.codegen import IDENTITY
from ..core.errors import ConfigurationError
from ..core.sublayer import Sublayer
from .schedule import FaultSchedule

DIRECTIONS = ("down", "up", "both")


class FaultSublayer(Sublayer):
    """Base class: schedule + rng + direction, and the injection loop.

    Subclasses override :meth:`apply` (what happens when the schedule
    fires) and optionally :meth:`pass_through` (what happens when it
    does not — reorder/stall faults interleave held units there).
    """

    TRANSPARENT = True

    def __init__(
        self,
        name: str,
        schedule: FaultSchedule | None = None,
        rng: random.Random | None = None,
        direction: str = "down",
    ):
        super().__init__(name)
        if direction not in DIRECTIONS:
            raise ConfigurationError(
                f"fault direction must be one of {DIRECTIONS}, got {direction!r}"
            )
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.rng = rng if rng is not None else random.Random(0)
        self.direction = direction

    # ------------------------------------------------------------------
    def on_attach(self) -> None:
        self.state.units_seen = 0
        self.state.faults_injected = 0
        self.extra_state()

    def extra_state(self) -> None:
        """Subclass hook: initialise additional state fields."""

    def clone_fresh(self) -> "FaultSublayer":
        return type(self)(
            self.name,
            schedule=self.schedule,
            rng=self.rng,
            direction=self.direction,
            **self.clone_config(),
        )

    def clone_config(self) -> dict[str, Any]:
        """Subclass hook: extra constructor kwargs to preserve."""
        return {}

    # ------------------------------------------------------------------
    def from_above(self, sdu: Any, **meta: Any) -> None:
        if self.direction == "up":
            self.send_down(sdu, **meta)
            return
        self._process(sdu, meta, self.send_down)

    def from_below(self, pdu: Any, **meta: Any) -> None:
        if self.direction == "down":
            self.deliver_up(pdu, **meta)
            return
        self._process(pdu, meta, self.deliver_up)

    def _process(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        self.count("units_seen")
        index = self.state.units_seen - 1
        if self.schedule.fires(index, self.clock.now(), self.rng, unit, meta):
            self.count("faults_injected")
            self.apply(unit, meta, forward)
        else:
            self.pass_through(unit, meta, forward)

    # ------------------------------------------------------------------
    def apply(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        raise NotImplementedError

    def pass_through(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        forward(unit, **meta)


class NoOpFault(FaultSublayer):
    """A fault slot with the fault removed: pure pass-through.

    The control case for resilience experiments and the C8 overhead
    benchmark — it skips even the bookkeeping so its cost is the cost
    of *having* a fault position, not of any fault logic.
    """

    def from_above(self, sdu: Any, **meta: Any) -> None:
        self.send_down(sdu, **meta)

    def from_below(self, pdu: Any, **meta: Any) -> None:
        self.deliver_up(pdu, **meta)

    def from_above_batch(
        self, sdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Batches pass through whole — the slot stays transparent."""
        self.send_down_batch(sdus, metas)

    def from_below_batch(
        self, pdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Batches pass through whole — the slot stays transparent."""
        self.deliver_up_batch(pdus, metas)

    def fuse_down(self) -> Any:
        """Pure pass-through: eliminated from the fused fast path."""
        return IDENTITY

    def fuse_up(self) -> Any:
        """Pure pass-through: eliminated from the fused fast path."""
        return IDENTITY


class DropFault(FaultSublayer):
    """Silently discard scheduled units."""

    def extra_state(self) -> None:
        self.state.dropped = 0

    def apply(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        self.count("dropped")


class DuplicateFault(FaultSublayer):
    """Forward scheduled units twice, back to back."""

    def extra_state(self) -> None:
        self.state.duplicated = 0

    def apply(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        self.count("duplicated")
        forward(unit, **meta)
        forward(unit, **meta)


class ReorderFault(FaultSublayer):
    """Hold a scheduled unit and release it *after* the next one.

    If no further unit arrives within ``max_hold`` virtual seconds the
    held unit is flushed anyway, so reordering degrades to delay at the
    tail of a flow instead of losing the last unit.
    """

    def __init__(
        self,
        name: str,
        schedule: FaultSchedule | None = None,
        rng: random.Random | None = None,
        direction: str = "down",
        max_hold: float = 0.05,
    ):
        super().__init__(name, schedule=schedule, rng=rng, direction=direction)
        if max_hold <= 0:
            raise ConfigurationError("max_hold must be positive")
        self.max_hold = max_hold

    def clone_config(self) -> dict[str, Any]:
        return {"max_hold": self.max_hold}

    def extra_state(self) -> None:
        self.state.reordered = 0
        self.state.held = None

    def apply(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        if self.state.held is not None:
            # Already holding one: forwarding two out-of-order units at
            # once would just swap the swap back; pass this one through.
            forward(unit, **meta)
            return
        self.count("reordered")
        self.state.held = (unit, meta, forward)
        self.clock.call_later(self.max_hold, self._flush)

    def pass_through(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        forward(unit, **meta)
        self._flush()

    def _flush(self) -> None:
        held = self.state.held
        if held is None:
            return
        self.state.held = None
        unit, meta, forward = held
        forward(unit, **meta)


class CorruptBitsFault(FaultSublayer):
    """Flip ``flips`` random bits in a :class:`Bits` or bytes unit.

    Structured units (:class:`~repro.core.pdu.Pdu`) pass unchanged —
    like the link's bit-error model, corruption applies to serialized
    representations only.
    """

    def __init__(
        self,
        name: str,
        schedule: FaultSchedule | None = None,
        rng: random.Random | None = None,
        direction: str = "down",
        flips: int = 1,
    ):
        super().__init__(name, schedule=schedule, rng=rng, direction=direction)
        if flips < 1:
            raise ConfigurationError("flips must be >= 1")
        self.flips = flips

    def clone_config(self) -> dict[str, Any]:
        return {"flips": self.flips}

    def extra_state(self) -> None:
        self.state.corrupted = 0

    def apply(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        if isinstance(unit, Bits) and len(unit) > 0:
            flipped = list(unit)
            for _ in range(self.flips):
                flipped[self.rng.randrange(len(flipped))] ^= 1
            self.count("corrupted")
            forward(Bits(flipped), **meta)
            return
        if isinstance(unit, (bytes, bytearray)) and len(unit) > 0:
            data = bytearray(unit)
            for _ in range(self.flips):
                position = self.rng.randrange(len(data) * 8)
                data[position // 8] ^= 1 << (position % 8)
            self.count("corrupted")
            forward(bytes(data), **meta)
            return
        forward(unit, **meta)


class TruncateFault(FaultSublayer):
    """Cut a scheduled unit down to a ``keep`` fraction of its length."""

    def __init__(
        self,
        name: str,
        schedule: FaultSchedule | None = None,
        rng: random.Random | None = None,
        direction: str = "down",
        keep: float = 0.5,
    ):
        super().__init__(name, schedule=schedule, rng=rng, direction=direction)
        if not 0.0 <= keep < 1.0:
            raise ConfigurationError("keep must be in [0, 1)")
        self.keep = keep

    def clone_config(self) -> dict[str, Any]:
        return {"keep": self.keep}

    def extra_state(self) -> None:
        self.state.truncated = 0

    def apply(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        if isinstance(unit, Bits) and len(unit) > 0:
            self.count("truncated")
            forward(Bits(list(unit)[: int(len(unit) * self.keep)]), **meta)
            return
        if isinstance(unit, (bytes, bytearray)) and len(unit) > 0:
            self.count("truncated")
            forward(bytes(unit[: int(len(unit) * self.keep)]), **meta)
            return
        forward(unit, **meta)


class DelayFault(FaultSublayer):
    """Hold scheduled units for ``delay`` (+ uniform ``jitter``) seconds."""

    def __init__(
        self,
        name: str,
        schedule: FaultSchedule | None = None,
        rng: random.Random | None = None,
        direction: str = "down",
        delay: float = 0.05,
        jitter: float = 0.0,
    ):
        super().__init__(name, schedule=schedule, rng=rng, direction=direction)
        if delay < 0 or jitter < 0:
            raise ConfigurationError("delay and jitter must be non-negative")
        self.delay = delay
        self.jitter = jitter

    def clone_config(self) -> dict[str, Any]:
        return {"delay": self.delay, "jitter": self.jitter}

    def extra_state(self) -> None:
        self.state.delayed = 0

    def apply(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        self.count("delayed")
        pause = self.delay + (
            self.rng.uniform(0, self.jitter) if self.jitter > 0 else 0.0
        )
        self.clock.call_later(pause, lambda: forward(unit, **meta))


class StallFault(FaultSublayer):
    """A stall / blackhole window.

    While the schedule's window is open, units are buffered
    (``blackhole=False``) or discarded (``blackhole=True``).  Buffered
    units are released in order by the first unit crossing after the
    window closes, or by a timer at ``schedule.stop_time`` when one is
    declared — modelling an outage the protocol above must ride out.
    """

    def __init__(
        self,
        name: str,
        schedule: FaultSchedule | None = None,
        rng: random.Random | None = None,
        direction: str = "down",
        blackhole: bool = False,
    ):
        super().__init__(name, schedule=schedule, rng=rng, direction=direction)
        self.blackhole = blackhole

    def clone_config(self) -> dict[str, Any]:
        return {"blackhole": self.blackhole}

    def extra_state(self) -> None:
        self.state.stalled = 0
        self.state.blackholed = 0
        self.state.buffer = []
        self._flush_armed = False

    def apply(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        if self.blackhole:
            self.count("blackholed")
            return
        self.count("stalled")
        self.state.buffer.append((unit, meta, forward))
        if self.schedule.stop_time is not None and not self._flush_armed:
            self._flush_armed = True
            self.clock.call_later(
                max(0.0, self.schedule.stop_time - self.clock.now()),
                self._flush,
            )

    def pass_through(
        self, unit: Any, meta: dict[str, Any], forward: Callable[..., None]
    ) -> None:
        self._flush()
        forward(unit, **meta)

    def _flush(self) -> None:
        buffered = list(self.state.buffer)
        if not buffered:
            return
        self.state.buffer = []
        for unit, meta, forward in buffered:
            forward(unit, **meta)
