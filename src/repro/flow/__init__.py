"""Symbolic data-plane analysis: StacKAT-style packet-set reachability.

The paper argues each sublayer should stay analyzable in isolation;
this package analyzes the *forwarding* sublayer statically, the way
StacKAT (PAPERS.md) pushes symbolic packet sets through network
programs and Zave/Rexford reason about composed services without
executing them.  No simulation runs: the input is a
:class:`~repro.flow.spec.FlowSpec` — node addresses, live links, and
installed FIBs, snapshotted from a
:class:`~repro.network.topology.Topology` or written declaratively —
and the engine proves (or refutes, with witness packet sets):

* **no-escape** — packets addressed inside a zone never reach nodes
  outside it;
* **isolation** — two tenants' packet sets never meet at the same
  node/port;
* **blackhole-freedom** — every deliverable address has a path;
* **loop-freedom** — no packet set re-enters a node it already
  traversed.

``python -m repro.flow`` runs the four checks over example topologies
or spec files; ``python -m repro.staticcheck --flow`` surfaces the
verdicts as static rules T4/T5.
"""

from .examples import EXAMPLE_SPECS, example_spec
from .properties import ALL_PROPERTIES, FlowViolation, analyze, analyze_all
from .reach import ReachResult, reachability
from .report import FlowReport
from .sets import FIELDS, IntervalSet, PacketSet, cube, ternary_intervals
from .spec import FlowSpec, spec_fingerprint
from .transfer import NodeTransfer, TransferResult, build_transfers

__all__ = [
    "ALL_PROPERTIES",
    "EXAMPLE_SPECS",
    "FIELDS",
    "FlowReport",
    "FlowSpec",
    "FlowViolation",
    "IntervalSet",
    "NodeTransfer",
    "PacketSet",
    "ReachResult",
    "TransferResult",
    "analyze",
    "analyze_all",
    "build_transfers",
    "cube",
    "example_spec",
    "reachability",
    "spec_fingerprint",
    "ternary_intervals",
]
