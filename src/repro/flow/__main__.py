"""Symbolic flow-analysis CLI: ``python -m repro.flow``.

Proves no-escape, isolation, blackhole-freedom, and loop-freedom over
the shipped example topologies (default), named examples
(``--topology``), or declarative spec files (``--spec``).  Exit status
is 0 only when every property holds for every spec — CI runs this as
the static data-plane gate, with ``--cache`` so unchanged forwarding
planes verify from the content-hash cache.

Examples::

    python -m repro.flow                          # all example topologies
    python -m repro.flow --topology mesh6
    python -m repro.flow --spec tests/flow/fixtures/loop.json
    python -m repro.flow --format json --out flow.json
    python -m repro.flow --cache --cache-dir .repro-cache
    python -m repro.flow --list
"""

from __future__ import annotations

import argparse
import json
import sys

from ..core.errors import ConfigurationError
from ..par import DEFAULT_CACHE_DIR, ProofCache
from .examples import EXAMPLE_SPECS, example_spec
from .properties import analyze_all
from .spec import FlowSpec


def _load_specs(args: argparse.Namespace) -> list[FlowSpec]:
    specs: list[FlowSpec] = []
    for name in args.topology or []:
        specs.append(example_spec(name))
    for path in args.spec or []:
        specs.append(FlowSpec.from_file(path))
    if not specs:
        specs = [example_spec(name) for name in sorted(EXAMPLE_SPECS)]
    names = [spec.name for spec in specs]
    if len(names) != len(set(names)):
        raise ConfigurationError(f"duplicate spec names in {names}")
    return specs


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.flow",
        description=(
            "Symbolic data-plane analysis: push packet sets through "
            "installed FIBs to prove no-escape, isolation, "
            "blackhole-freedom, and loop-freedom."
        ),
    )
    parser.add_argument(
        "--topology",
        action="append",
        metavar="NAME",
        help="analyze a shipped example topology (repeatable; "
        "default: all of them)",
    )
    parser.add_argument(
        "--spec",
        action="append",
        metavar="FILE.json",
        help="analyze a declarative flow-spec file (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write the report here instead of stdout",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="memoise verdicts in the content-hash cache, keyed by the "
        "FIB+topology fingerprint",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"verdict cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the example topologies, then exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(EXAMPLE_SPECS):
            spec = example_spec(name)
            print(
                f"{name:<12} {len(spec.nodes)} nodes, "
                f"{len(spec.edges) // 2} links, "
                f"{len(spec.zones)} zones, {len(spec.tenants)} tenants"
            )
        return 0

    cache = (
        ProofCache(root=args.cache_dir, domain="flow") if args.cache else None
    )
    try:
        specs = _load_specs(args)
        reports = analyze_all(specs, cache=cache)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    passed = all(report.passed for report in reports.values())
    document = {
        "passed": passed,
        "specs": {name: report.as_dict() for name, report in reports.items()},
    }
    if cache is not None:
        document["cache"] = cache.stats()

    if args.format == "json":
        rendered = json.dumps(document, indent=1, sort_keys=True) + "\n"
    else:
        lines = []
        for name, report in reports.items():
            verdict = "PROVED" if report.passed else "REFUTED"
            stats = report.stats
            lines.append(
                f"{name:<12} {verdict:<8} "
                f"({stats.get('nodes', '?')} nodes, "
                f"{stats.get('iterations', '?')} fixed-point steps)"
            )
            for violation in report.violations:
                lines.append(f"  {violation.format()}")
        lines.append(
            "all properties hold" if passed else "PROPERTY VIOLATIONS"
        )
        if cache is not None:
            stats = cache.stats()
            lines.append(
                f"flow cache: {stats['hits']} hits, {stats['misses']} "
                f"misses, {stats['entries']} entries"
            )
        rendered = "\n".join(lines) + "\n"

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            fp.write(rendered)
        if args.format == "text":
            sys.stdout.write(rendered)
    else:
        sys.stdout.write(rendered)
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
