"""Shipped example topologies, as statically-built flow specs.

No simulation runs here: FIBs are computed by the same shortest-path
discipline the routing sublayers converge to (BFS distances, next hop
chosen as the neighbor minimising ``(distance-to-dst, address)`` — the
deterministic tie-break `Topology`'s oracle uses), so these specs are
what a converged control plane *would* install.  They give the CLI and
CI something real to prove: every registry entry satisfies all four
properties, and the grid builder scales to the C10 benchmark sizes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..core.errors import ConfigurationError
from ..network.packets import Address
from .spec import FlowSpec


def shortest_path_fibs(
    nodes: list[Address], edges: list[tuple[Address, Address]]
) -> dict[Address, dict[Address, Address]]:
    """Converged-state FIBs over an undirected edge list.

    For each node: BFS distances from every destination, next hop =
    the neighbor minimising ``(dist(nh, dst), nh)``.  Unreachable
    destinations get no entry (the static analogue of a routing
    sublayer that never heard of them).
    """
    adjacency: dict[Address, list[Address]] = {n: [] for n in nodes}
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    for peers in adjacency.values():
        peers.sort()

    def distances(source: Address) -> dict[Address, int]:
        dist = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for peer in adjacency[node]:
                if peer not in dist:
                    dist[peer] = dist[node] + 1
                    queue.append(peer)
        return dist

    dist_from = {n: distances(n) for n in nodes}
    fibs: dict[Address, dict[Address, Address]] = {}
    for node in nodes:
        table: dict[Address, Address] = {}
        for dst in nodes:
            if dst == node or dst not in dist_from[node]:
                continue
            table[dst] = min(
                (nh for nh in adjacency[node] if dst in dist_from[nh]),
                key=lambda nh: (dist_from[nh][dst], nh),
            )
        fibs[node] = table
    return fibs


def _spec(
    name: str,
    edges: list[tuple[Address, Address]],
    zones: list[dict] | None = None,
    tenants: list[dict] | None = None,
) -> FlowSpec:
    nodes = sorted({n for edge in edges for n in edge})
    return FlowSpec.from_dict(
        {
            "name": name,
            "nodes": nodes,
            "edges": [list(e) for e in edges],
            "fibs": {
                str(node): {str(d): nh for d, nh in table.items()}
                for node, table in shortest_path_fibs(nodes, edges).items()
            },
            "zones": zones or [],
            "tenants": tenants or [],
        }
    )


def mesh6() -> FlowSpec:
    """The ``examples/routed_network.py`` mesh, with west/east zones and
    two tenants on the directly-linked pairs."""
    edges = [(1, 2), (2, 5), (5, 6), (6, 3), (3, 2), (3, 4), (4, 1)]
    return _spec(
        "mesh6",
        edges,
        zones=[
            {"name": "west", "nodes": [1, 4]},
            {"name": "east", "nodes": [5, 6]},
        ],
        tenants=[
            {"name": "alpha", "nodes": [1, 4]},
            {"name": "beta", "nodes": [5, 6]},
        ],
    )


def star9() -> FlowSpec:
    """Hub-and-spoke: hub 1, leaves 2..9; the zone includes the hub
    because every leaf-to-leaf path transits it."""
    edges = [(1, leaf) for leaf in range(2, 10)]
    return _spec(
        "star9",
        edges,
        zones=[{"name": "pod", "nodes": [1, 2, 3]}],
        tenants=[
            {"name": "alpha", "nodes": [2, 3]},
            {"name": "beta", "nodes": [8, 9]},
        ],
    )


def ring8() -> FlowSpec:
    """An 8-node ring; the zone is a contiguous arc (shortest paths
    between arc members stay on the arc)."""
    edges = [(i, i % 8 + 1) for i in range(1, 9)]
    return _spec(
        "ring8",
        edges,
        zones=[{"name": "arc", "nodes": [1, 2, 3]}],
        tenants=[
            {"name": "alpha", "nodes": [1, 2]},
            {"name": "beta", "nodes": [5, 6]},
        ],
    )


def grid(side: int) -> FlowSpec:
    """A ``side`` × ``side`` grid (row-major addresses from 1), zoned by
    first row and last row — shortest paths within a row stay in the
    row under the deterministic tie-break, so both zones hold."""
    if side < 2:
        raise ConfigurationError("grid side must be >= 2")

    def addr(row: int, col: int) -> Address:
        return row * side + col + 1

    edges: list[tuple[Address, Address]] = []
    for row in range(side):
        for col in range(side):
            if col + 1 < side:
                edges.append((addr(row, col), addr(row, col + 1)))
            if row + 1 < side:
                edges.append((addr(row, col), addr(row + 1, col)))
    first_row = [addr(0, c) for c in range(side)]
    last_row = [addr(side - 1, c) for c in range(side)]
    return _spec(
        f"grid{side}x{side}",
        edges,
        zones=[
            {"name": "north", "nodes": first_row},
            {"name": "south", "nodes": last_row},
        ],
        tenants=[
            {"name": "alpha", "nodes": first_row},
            {"name": "beta", "nodes": last_row},
        ],
    )


#: The registry the CLI, staticcheck ``--flow``, and CI iterate.
EXAMPLE_SPECS: dict[str, Callable[[], FlowSpec]] = {
    "mesh6": mesh6,
    "star9": star9,
    "ring8": ring8,
    "grid4": lambda: grid(4),
}


def example_spec(name: str) -> FlowSpec:
    """Build one registry entry by name."""
    try:
        builder = EXAMPLE_SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown example topology {name!r}; have {sorted(EXAMPLE_SPECS)}"
        ) from None
    return builder()
