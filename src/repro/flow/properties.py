"""The four data-plane properties, decided symbolically.

Each check reads the shared :class:`~repro.flow.reach.ReachResult`
(one fixed point per spec, not per property) and returns violations
with witness packet sets small enough to paste into a bug report.
:func:`analyze` is the cached entry point: verdicts are memoised in a
:class:`~repro.par.ProofCache` keyed by the spec name and guarded by
the FIB+topology fingerprint, so re-verifying an unchanged forwarding
plane costs one hash lookup (the C10 benchmark gates this).
"""

from __future__ import annotations

from typing import Any

from ..par.cache import ProofCache
from .reach import ReachResult, default_injections, find_loops, reachability
from .report import ALL_PROPERTIES, FlowReport, FlowViolation, build_flow_report
from .sets import IntervalSet, PacketSet, cube
from .spec import FlowSpec, spec_fingerprint
from .transfer import DROP_NO_INTERFACE, DROP_NO_ROUTE


def check_no_escape(spec: FlowSpec, reach: ReachResult) -> list[FlowViolation]:
    """Packets addressed inside a zone never reach nodes outside it.

    For every zone: the set {src ∈ zone nodes, dst ∈ zone space} must
    have empty intersection with the ``seen`` set of every non-member
    node.  A non-empty meet is the escape witness.
    """
    violations: list[FlowViolation] = []
    for zone in spec.zones:
        if zone.space.is_empty or not zone.nodes:
            continue
        internal = cube(
            src=IntervalSet.of(*zone.nodes), dst=zone.space
        )
        for node in spec.nodes:
            if node in zone.nodes:
                continue
            escaped = reach.seen[node].intersect(internal)
            if not escaped.is_empty:
                sample = escaped.sample()
                violations.append(
                    FlowViolation(
                        property="no-escape",
                        spec=spec.name,
                        node=node,
                        message=(
                            f"zone {zone.name!r} traffic reaches outside "
                            f"node {node} (e.g. src={sample['src']} "
                            f"dst={sample['dst']})"
                        ),
                        witness=escaped.as_dict(),
                    )
                )
    return violations


def check_blackhole_freedom(
    spec: FlowSpec, reach: ReachResult
) -> list[FlowViolation]:
    """Every deliverable address has a path: no packet addressed to an
    assigned node address is dropped for want of a route or interface.

    (TTL expiry from FIB cycles is the loop check's finding — reported
    once, there.)
    """
    deliverable = spec.deliverable()
    violations: list[FlowViolation] = []
    for node in spec.nodes:
        lost = PacketSet.empty()
        for kind in (DROP_NO_ROUTE, DROP_NO_INTERFACE):
            lost = lost.union(reach.dropped[node][kind])
        lost = lost.constrain("dst", deliverable)
        if lost.is_empty:
            continue
        sample = lost.sample()
        dsts = lost.project("dst")
        violations.append(
            FlowViolation(
                property="blackhole-freedom",
                spec=spec.name,
                node=node,
                message=(
                    f"node {node} blackholes deliverable destinations "
                    f"{dsts!r} (e.g. src={sample['src']} "
                    f"dst={sample['dst']})"
                ),
                witness=lost.as_dict(),
            )
        )
    return violations


def check_loop_freedom(spec: FlowSpec) -> list[FlowViolation]:
    """No packet set re-enters a node it already traversed.

    Decided on destination classes: inside one class forwarding is a
    functional graph, so loops are exactly its cycles (see
    :func:`~repro.flow.reach.find_loops`).
    """
    violations: list[FlowViolation] = []
    for loop in find_loops(spec):
        violations.append(
            FlowViolation(
                property="loop-freedom",
                spec=spec.name,
                node=loop.cycle[0],
                message=(
                    f"FIB loop {' -> '.join(map(str, loop.cycle))} -> "
                    f"{loop.cycle[0]} for destinations {loop.destinations!r}"
                ),
                witness=loop.as_dict(),
            )
        )
    return violations


def check_isolation(spec: FlowSpec, reach: ReachResult) -> list[FlowViolation]:
    """Two tenants' packet sets never meet at the same node/port.

    Two obligations: claimed address spaces are pairwise disjoint (an
    overlap means one delivered packet set belongs to both tenants —
    they meet at the delivery port by construction), and one tenant's
    intra-tenant traffic is never seen at a node owned exclusively by
    another tenant.
    """
    violations: list[FlowViolation] = []
    for i, a in enumerate(spec.tenants):
        for b in spec.tenants[i + 1:]:
            overlap = a.space.intersect(b.space)
            if not overlap.is_empty:
                violations.append(
                    FlowViolation(
                        property="isolation",
                        spec=spec.name,
                        node=None,
                        message=(
                            f"tenants {a.name!r} and {b.name!r} claim "
                            f"overlapping address space {overlap!r}: their "
                            f"packet sets meet at every delivery port in it"
                        ),
                        witness=[list(p) for p in overlap.intervals],
                    )
                )
    for a in spec.tenants:
        if not a.nodes or a.space.is_empty:
            continue
        intra = cube(src=IntervalSet.of(*a.nodes), dst=a.space)
        for b in spec.tenants:
            if b.name == a.name:
                continue
            exclusive = b.nodes - a.nodes
            for node in sorted(exclusive):
                met = reach.seen[node].intersect(intra)
                if not met.is_empty:
                    sample = met.sample()
                    violations.append(
                        FlowViolation(
                            property="isolation",
                            spec=spec.name,
                            node=node,
                            message=(
                                f"tenant {a.name!r} traffic meets tenant "
                                f"{b.name!r} at node {node} (e.g. "
                                f"src={sample['src']} dst={sample['dst']})"
                            ),
                            witness=met.as_dict(),
                        )
                    )
    return violations


# ----------------------------------------------------------------------
# The cached entry point
# ----------------------------------------------------------------------
def _analyze_uncached(spec: FlowSpec) -> FlowReport:
    reach = reachability(spec, default_injections(spec))
    violations = (
        check_no_escape(spec, reach)
        + check_blackhole_freedom(spec, reach)
        + check_loop_freedom(spec)
        + check_isolation(spec, reach)
    )
    stats = {
        "nodes": len(spec.nodes),
        "edges": len({(min(a, b), max(a, b)) for a, b in spec.edges}),
        "iterations": reach.iterations,
        "seen_cubes": sum(len(s.cubes) for s in reach.seen.values()),
        "delivered_packets": sum(
            s.count() for s in reach.delivered.values()
        ),
    }
    return build_flow_report(spec.name, violations, stats)


def analyze(spec: FlowSpec, cache: ProofCache | None = None) -> FlowReport:
    """Prove (or refute) all four properties for one spec.

    With ``cache``, the canonical report dict is memoised under
    ``flow:<spec name>`` guarded by :func:`spec_fingerprint` — any FIB,
    wiring, or annotation change invalidates exactly this entry.  Both
    green and red verdicts are cached: the witness is part of the
    report, so a cached refutation replays its evidence.
    """
    if cache is None:
        return _analyze_uncached(spec)
    key = f"flow:{spec.name}"
    fingerprint = spec_fingerprint(spec)
    hit = cache.get(key, fingerprint)
    if hit is not None:
        return _report_from_dict(hit)
    report = _analyze_uncached(spec)
    cache.put(key, fingerprint, report.as_dict())
    return report


def analyze_all(
    specs: list[FlowSpec], cache: ProofCache | None = None
) -> dict[str, FlowReport]:
    """Analyze several specs; reports keyed by spec name, input order."""
    return {spec.name: analyze(spec, cache=cache) for spec in specs}


def _report_from_dict(data: dict[str, Any]) -> FlowReport:
    """Rebuild a :class:`FlowReport` from its canonical dict (cache hit)."""
    violations = [
        FlowViolation(
            property=v["property"],
            spec=v["spec"],
            node=v["node"],
            message=v["message"],
            witness=v["witness"],
        )
        for v in data.get("violations", [])
    ]
    return build_flow_report(
        data.get("spec", ""), violations, dict(data.get("stats", {}))
    )


__all__ = [
    "ALL_PROPERTIES",
    "FlowReport",
    "FlowViolation",
    "analyze",
    "analyze_all",
    "check_blackhole_freedom",
    "check_isolation",
    "check_loop_freedom",
    "check_no_escape",
]
