"""Fixed-point reachability over the node graph.

The engine injects one symbolic packet set per ingress node (source
address pinned to the injecting node, destination unconstrained, TTL
at the spec's initial value) and pushes sets through the per-node
transfer functions with a worklist until nothing new arrives anywhere.
Because every arrival is subtracted against the node's accumulated
``seen`` set — and forwarding strictly decrements TTL — the iteration
terminates even on topologies whose FIBs loop: a looping set re-enters
with a smaller TTL until it expires, and every expiry is recorded.

Two artifacts come out:

* a :class:`ReachResult` — per-node ``seen`` / ``delivered`` / drop
  sets and per-edge flows, which the no-escape, isolation, and
  blackhole checks read directly;
* destination *classes* (:func:`destination_classes`) — the partition
  of the ``dst`` universe by the vector of FIB decisions across all
  nodes.  Within a class every node forwards identically, so FIB loops
  are exactly cycles of the class's next-hop functional graph
  (:func:`find_loops`) — the symbolic equivalent of "a packet set
  re-enters a node with non-decreasing TTL" under TTL-erased
  semantics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..network.packets import Address
from .sets import IntervalSet, PacketSet, cube
from .spec import FlowSpec
from .transfer import DROP_NO_INTERFACE, DROP_NO_ROUTE, DROP_TTL, TransferGraph, build_transfers


@dataclass
class ReachResult:
    """Everything the fixed point learned about a spec."""

    spec: FlowSpec
    #: Every packet set ever *seen arriving* at a node (including its
    #: own injected set — the node is on the packet's path).
    seen: dict[Address, PacketSet]
    #: Sets consumed at each node (``dst`` == node address).
    delivered: dict[Address, PacketSet]
    #: Drop sets per node per kind (``ttl_expired`` etc.).
    dropped: dict[Address, dict[str, PacketSet]]
    #: Aggregate flow per directed edge ``(node, next_hop)``.
    flows: dict[tuple[Address, Address], PacketSet]
    #: Worklist iterations until the fixed point closed.
    iterations: int = 0

    def dropped_total(self, kind: str) -> PacketSet:
        """Union of one drop kind across all nodes."""
        total = PacketSet.empty()
        for drops in self.dropped.values():
            total = total.union(drops.get(kind, PacketSet.empty()))
        return total


def default_injections(spec: FlowSpec) -> dict[Address, PacketSet]:
    """The standard ingress model: every node originates packets with
    ``src`` = its own address, any destination, TTL = ``spec.ttl`` —
    so per-ingress attribution survives in the ``src`` field (the data
    plane never rewrites it)."""
    return {
        node: cube(src=node, ttl=spec.ttl)
        for node in spec.nodes
    }


def reachability(
    spec: FlowSpec,
    injections: dict[Address, PacketSet] | None = None,
    graph: TransferGraph | None = None,
) -> ReachResult:
    """Run the worklist fixed point; see the module docstring."""
    graph = graph if graph is not None else build_transfers(spec)
    injections = (
        injections if injections is not None else default_injections(spec)
    )
    result = ReachResult(
        spec=spec,
        seen={node: PacketSet.empty() for node in spec.nodes},
        delivered={node: PacketSet.empty() for node in spec.nodes},
        dropped={
            node: {
                DROP_TTL: PacketSet.empty(),
                DROP_NO_ROUTE: PacketSet.empty(),
                DROP_NO_INTERFACE: PacketSet.empty(),
            }
            for node in spec.nodes
        },
        flows={},
    )

    # Worklist entries: (node, arriving set, originate?).  Injected sets
    # go through origination semantics (no TTL decrement at the source),
    # matching ForwardingSublayer.originate.
    work: deque[tuple[Address, PacketSet, bool]] = deque()
    for node in spec.nodes:
        injected = injections.get(node, PacketSet.empty())
        if not injected.is_empty:
            work.append((node, injected, True))

    while work:
        node, arriving, originate = work.popleft()
        fresh = arriving.subtract(result.seen[node])
        if fresh.is_empty:
            continue
        result.iterations += 1
        result.seen[node] = result.seen[node].union(fresh)
        step = graph.at(node).apply(fresh, originate=originate)
        result.delivered[node] = result.delivered[node].union(step.delivered)
        for kind, dropped in step.dropped.items():
            if not dropped.is_empty:
                result.dropped[node][kind] = result.dropped[node][kind].union(
                    dropped
                )
        for next_hop, out in step.forwarded.items():
            edge = (node, next_hop)
            result.flows[edge] = result.flows.get(
                edge, PacketSet.empty()
            ).union(out)
            work.append((next_hop, out, False))
    return result


# ----------------------------------------------------------------------
# Destination classes and FIB loops
# ----------------------------------------------------------------------
def destination_classes(spec: FlowSpec) -> list[IntervalSet]:
    """Partition the ``dst`` universe by FIB behaviour.

    Start from the whole space and refine with every node's next-hop
    groups *and* its own address (delivery is a FIB decision too: the
    owner consumes what everyone else forwards); two destinations land
    in the same class iff *every* node treats them identically.  The
    partition size is bounded by the number of distinct FIB entries
    plus nodes, not by the 2^16 address space.
    """
    universe = IntervalSet.span(0, 0xFFFF)
    classes: list[IntervalSet] = [universe]
    graph = build_transfers(spec)
    for node in spec.nodes:
        transfer = graph.at(node)
        splitters = [IntervalSet.of(node), *transfer.groups.values()]
        refined: list[IntervalSet] = []
        for cls in classes:
            remainder = cls
            for dsts in splitters:
                inside = remainder.intersect(dsts)
                if not inside.is_empty:
                    refined.append(inside)
                    remainder = remainder.subtract(dsts)
                if remainder.is_empty:
                    break
            if not remainder.is_empty:
                refined.append(remainder)
        classes = refined
    return classes


@dataclass(frozen=True)
class Loop:
    """One FIB loop: the nodes of the cycle and the destinations caught."""

    cycle: tuple[Address, ...]
    destinations: IntervalSet

    def as_dict(self) -> dict[str, object]:
        """Canonical JSON form."""
        return {
            "cycle": list(self.cycle),
            "destinations": [list(p) for p in self.destinations.intervals],
        }


def find_loops(spec: FlowSpec) -> list[Loop]:
    """FIB loops, per destination class (exact for dst-keyed FIBs).

    Within one destination class the next hop is a *function* of the
    node, so the forwarding relation is a functional graph; a loop is a
    cycle not containing the destination's owner.  Three-color walk per
    class, O(nodes) each.
    """
    graph = build_transfers(spec)
    loops: dict[tuple[Address, ...], IntervalSet] = {}
    for cls in destination_classes(spec):
        # Next hop per node for this class (None: deliver-or-drop here).
        step: dict[Address, Address | None] = {}
        for node in spec.nodes:
            transfer = graph.at(node)
            hop = None
            for next_hop, dsts in transfer.groups.items():
                if not cls.intersect(dsts).is_empty:
                    hop = next_hop if next_hop in transfer.resolvable else None
                    break
            step[node] = hop
        # A destination inside the class that is also a node delivers at
        # itself — its owner never forwards it onward.
        owners = {node for node in spec.nodes if node in cls}
        color: dict[Address, int] = {}  # 0 visiting path, 1 done
        for start in spec.nodes:
            path: list[Address] = []
            node: Address | None = start
            while node is not None and color.get(node) is None:
                color[node] = 0
                path.append(node)
                node = step[node] if node not in owners else None
            if node is not None and color.get(node) == 0:
                cycle = tuple(path[path.index(node):])
                # Canonical rotation so the same loop dedups.
                pivot = cycle.index(min(cycle))
                canon = cycle[pivot:] + cycle[:pivot]
                # Every destination in the class is trapped: inside a
                # class the step function is identical for all of them
                # (the owner cannot sit on the cycle — it delivers).
                loops[canon] = loops.get(canon, IntervalSet.empty()).union(cls)
            for visited in path:
                color[visited] = 1
    return [
        Loop(cycle=cycle, destinations=dsts)
        for cycle, dsts in sorted(loops.items())
    ]
