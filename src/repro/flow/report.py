"""The flow analyzer's report: property verdicts in the shared format.

Same pattern as the static checker and the litmus harness: one
:class:`~repro.core.report.CheckResult` per property folded into a
:class:`~repro.core.report.Report` subclass, plus the flat violation
list with symbolic witnesses.  ``as_dict()`` is canonical (sorted, no
wall-clock), so reports are diff-clean and cacheable byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.report import CheckResult, Report

#: The four properties, in report order, with the staticcheck rule each
#: feeds (T4 = reachability family, T5 = isolation).
ALL_PROPERTIES: tuple[tuple[str, str], ...] = (
    ("no-escape", "T4"),
    ("blackhole-freedom", "T4"),
    ("loop-freedom", "T4"),
    ("isolation", "T5"),
)


@dataclass(frozen=True)
class FlowViolation:
    """One refuted property, with its symbolic witness."""

    property: str  # one of ALL_PROPERTIES names
    spec: str  # spec name
    node: int | None  # node the violation manifests at (None: spec-wide)
    message: str
    #: JSON-shaped witness packet set / cycle (already canonical).
    witness: Any = None

    def format(self) -> str:
        """One-line rendering for text reports."""
        where = f"node {self.node}" if self.node is not None else "spec"
        return f"{self.spec}: {where}: [{self.property}] {self.message}"

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON form."""
        return {
            "property": self.property,
            "spec": self.spec,
            "node": self.node,
            "message": self.message,
            "witness": self.witness,
        }


@dataclass
class FlowReport(Report):
    """Per-property results plus the flat violation list for one spec."""

    spec_name: str = ""
    violations: list[FlowViolation] = field(default_factory=list)
    #: Engine statistics (iterations, cubes, classes) — informational.
    stats: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON form (stable across runs and machines)."""
        return {
            "spec": self.spec_name,
            "passed": self.passed,
            "results": [r.to_dict() for r in self.results],
            "violations": [v.as_dict() for v in self.violations],
            "stats": dict(sorted(self.stats.items())),
        }

    def text(self) -> str:
        """Human-readable emitter: one line per violation, then summary."""
        lines = [v.format() for v in self.violations]
        lines.append(self.summary())
        return "\n".join(lines)


def build_flow_report(
    spec_name: str,
    violations: list[FlowViolation],
    stats: dict[str, Any],
) -> FlowReport:
    """Fold violations into per-property :class:`CheckResult` entries."""
    ordered = sorted(
        violations, key=lambda v: (v.property, v.node is None, v.node, v.message)
    )
    results = []
    for prop, litmus in ALL_PROPERTIES:
        mine = [v for v in ordered if v.property == prop]
        results.append(
            CheckResult(
                name=prop,
                passed=not mine,
                details=[v.format() for v in mine],
                metrics={"litmus": litmus, "violations": len(mine)},
            )
        )
    return FlowReport(
        results=results,
        spec_name=spec_name,
        violations=ordered,
        stats=stats,
    )
