"""Symbolic packet sets: predicates over header fields.

The atoms are :class:`IntervalSet` values — unions of disjoint
inclusive integer intervals over one header field's universe — built
from ranges, single values, or ternary (value/mask) patterns.  A
:class:`PacketSet` is a union of *cubes*, each cube constraining every
field of the data-plane header (:data:`FIELDS`: ``src``/``dst`` are
16-bit addresses, ``ttl`` is 8 bits) by one interval set.  The algebra
is closed under union, intersection, negation and subtraction, and
``is_empty`` is decidable — which is all the reachability engine needs
to run a fixed point (see :mod:`repro.flow.reach`).

The representation mirrors how the forwarding sublayer actually
branches: FIB lookups partition the ``dst`` space, TTL handling splits
``ttl`` at a threshold, and nothing in the data plane reads ``src`` —
so cubes stay few and the fixed point converges quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..core.errors import ConfigurationError

#: Data-plane header fields the symbolic analysis tracks, with their
#: bit widths (the ``IP_HEADER`` fields forwarding semantics touch).
FIELDS: dict[str, int] = {"src": 16, "dst": 16, "ttl": 8}

#: Inclusive upper bound of each field's universe.
FIELD_MAX: dict[str, int] = {name: (1 << bits) - 1 for name, bits in FIELDS.items()}


@dataclass(frozen=True)
class IntervalSet:
    """A union of disjoint, sorted, inclusive integer intervals."""

    intervals: tuple[tuple[int, int], ...]

    # -- constructors --------------------------------------------------
    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set."""
        return _EMPTY

    @classmethod
    def of(cls, *values: int) -> "IntervalSet":
        """The set holding exactly ``values``."""
        return cls.from_intervals((v, v) for v in values)

    @classmethod
    def span(cls, lo: int, hi: int) -> "IntervalSet":
        """The inclusive interval ``[lo, hi]`` (empty when ``lo > hi``)."""
        if lo > hi:
            return _EMPTY
        return cls(((lo, hi),))

    @classmethod
    def from_intervals(
        cls, pairs: Iterable[tuple[int, int]]
    ) -> "IntervalSet":
        """Normalise arbitrary ``(lo, hi)`` pairs: sort, merge, drop empties."""
        cleaned = sorted((lo, hi) for lo, hi in pairs if lo <= hi)
        merged: list[tuple[int, int]] = []
        for lo, hi in cleaned:
            if merged and lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return cls(tuple(merged))

    # -- predicates ----------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when no value is in the set."""
        return not self.intervals

    def __contains__(self, value: int) -> bool:
        return any(lo <= value <= hi for lo, hi in self.intervals)

    def __len__(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.intervals)

    def __iter__(self) -> Iterator[int]:
        for lo, hi in self.intervals:
            yield from range(lo, hi + 1)

    def min(self) -> int:
        """Smallest member (raises on the empty set)."""
        if self.is_empty:
            raise ValueError("empty interval set has no minimum")
        return self.intervals[0][0]

    # -- algebra -------------------------------------------------------
    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return IntervalSet.from_intervals(self.intervals + other.intervals)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection (two-pointer sweep over sorted intervals)."""
        if self.is_empty or other.is_empty:
            return _EMPTY
        out: list[tuple[int, int]] = []
        a, b = self.intervals, other.intervals
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(tuple(out))

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """Members of ``self`` not in ``other``."""
        if self.is_empty or other.is_empty:
            return self
        out: list[tuple[int, int]] = []
        for lo, hi in self.intervals:
            cursor = lo
            for olo, ohi in other.intervals:
                if ohi < cursor:
                    continue
                if olo > hi:
                    break
                if olo > cursor:
                    out.append((cursor, olo - 1))
                cursor = max(cursor, ohi + 1)
                if cursor > hi:
                    break
            if cursor <= hi:
                out.append((cursor, hi))
        return IntervalSet(tuple(out))

    def complement(self, lo: int, hi: int) -> "IntervalSet":
        """Members of the universe ``[lo, hi]`` not in ``self``."""
        return IntervalSet.span(lo, hi).subtract(self)

    def shift(self, delta: int, lo: int, hi: int) -> "IntervalSet":
        """Every member moved by ``delta``, clipped to ``[lo, hi]``.

        This is the TTL decrement: ``shift(-1, 0, 255)``.
        """
        return IntervalSet.from_intervals(
            (max(a + delta, lo), min(b + delta, hi))
            for a, b in self.intervals
        )

    def __repr__(self) -> str:
        if self.is_empty:
            return "{}"
        return "{" + ",".join(
            (str(lo) if lo == hi else f"{lo}-{hi}")
            for lo, hi in self.intervals
        ) + "}"


_EMPTY = IntervalSet(())


def ternary_intervals(pattern: str) -> IntervalSet:
    """The interval set matching a ternary bit ``pattern``.

    ``pattern`` is a string over ``{'0', '1', 'x'}``, most significant
    bit first — the classic TCAM match.  A don't-care suffix is a
    single interval; interior don't-cares split into at most
    ``2**(interior x's)`` intervals, built by recursive bifurcation so
    adjacent ranges merge back together.
    """
    for ch in pattern:
        if ch not in "01x":
            raise ConfigurationError(
                f"ternary pattern {pattern!r}: only '0', '1', 'x' allowed"
            )

    def expand(bits: str, base: int) -> list[tuple[int, int]]:
        # Strip a fully-wild suffix in one step: it is one interval.
        width = len(bits)
        if "0" not in bits and "1" not in bits:
            return [(base, base + (1 << width) - 1)]
        head, rest = bits[0], bits[1:]
        half = 1 << (width - 1)
        if head == "0":
            return expand(rest, base) if rest else [(base, base)]
        if head == "1":
            return expand(rest, base + half) if rest else [(base + half, base + half)]
        low = expand(rest, base) if rest else [(base, base)]
        high = expand(rest, base + half) if rest else [(base + half, base + half)]
        return low + high

    return IntervalSet.from_intervals(expand(pattern, 0))


# ----------------------------------------------------------------------
# Packet sets: unions of per-field cubes
# ----------------------------------------------------------------------
Cube = tuple[tuple[str, IntervalSet], ...]
"""One cube: ``((field, interval_set), ...)`` in :data:`FIELDS` order.

Every field is present; an unconstrained field carries its full
universe.  The tuple form keeps cubes hashable for dedup.
"""


def _full(field: str) -> IntervalSet:
    return IntervalSet.span(0, FIELD_MAX[field])


def cube(**constraints: IntervalSet | int | tuple[int, int]) -> "PacketSet":
    """One-cube packet set from keyword field constraints.

    Each value may be an :class:`IntervalSet`, a single int, or a
    ``(lo, hi)`` pair; unnamed fields are unconstrained::

        cube(dst=IntervalSet.span(8, 15), ttl=32)
    """
    entries: list[tuple[str, IntervalSet]] = []
    for field in FIELDS:
        value = constraints.pop(field, None)
        if value is None:
            entries.append((field, _full(field)))
        elif isinstance(value, IntervalSet):
            entries.append((field, value))
        elif isinstance(value, tuple):
            entries.append((field, IntervalSet.span(*value)))
        else:
            entries.append((field, IntervalSet.of(value)))
    if constraints:
        raise ConfigurationError(
            f"unknown packet fields {sorted(constraints)}; "
            f"have {sorted(FIELDS)}"
        )
    c = tuple(entries)
    return PacketSet(()) if _cube_empty(c) else PacketSet((c,))


def _cube_empty(c: Cube) -> bool:
    return any(s.is_empty for _, s in c)


def _cube_intersect(a: Cube, b: Cube) -> Cube | None:
    out: list[tuple[str, IntervalSet]] = []
    for (field, sa), (_, sb) in zip(a, b):
        s = sa.intersect(sb)
        if s.is_empty:
            return None
        out.append((field, s))
    return tuple(out)


def _cube_subtract(a: Cube, b: Cube) -> list[Cube]:
    """``a`` minus ``b`` as disjoint cubes (standard cube splitting).

    Peel one field at a time: the part of ``a`` outside ``b`` in that
    field survives whole; the part inside continues to the next field.
    """
    if _cube_intersect(a, b) is None:
        return [a]
    pieces: list[Cube] = []
    remainder = list(a)
    for index, (field, sa) in enumerate(a):
        sb = dict(b)[field]
        outside = sa.subtract(sb)
        if not outside.is_empty:
            piece = list(remainder)
            piece[index] = (field, outside)
            pieces.append(tuple(piece))
        remainder[index] = (field, sa.intersect(sb))
    return pieces


@dataclass(frozen=True)
class PacketSet:
    """A union of cubes — the symbolic packet-set predicate."""

    cubes: tuple[Cube, ...]

    # -- constructors --------------------------------------------------
    @classmethod
    def empty(cls) -> "PacketSet":
        """The empty packet set."""
        return cls(())

    @classmethod
    def all(cls) -> "PacketSet":
        """Every packet (all fields unconstrained)."""
        return cube()

    # -- predicates ----------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the predicate matches no packet."""
        return not self.cubes

    def contains(self, packet: Mapping[str, int]) -> bool:
        """Does a concrete packet (field -> value) satisfy the predicate?"""
        return any(
            all(packet[field] in s for field, s in c) for c in self.cubes
        )

    def count(self) -> int:
        """Number of concrete packets matched (inclusion–exclusion-free:
        cubes from this module's operations are kept disjoint)."""
        total = 0
        for c in self.cubes:
            n = 1
            for _, s in c:
                n *= len(s)
            total += n
        return total

    # -- algebra -------------------------------------------------------
    def union(self, other: "PacketSet") -> "PacketSet":
        """Set union; ``other``'s overlap with ``self`` is carved off so
        the cube list stays disjoint (keeps ``count`` exact and bounds
        growth in the fixed point)."""
        added = other.subtract(self)
        return PacketSet(self.cubes + added.cubes)

    def intersect(self, other: "PacketSet") -> "PacketSet":
        """Set intersection (pairwise cube meet)."""
        out: list[Cube] = []
        for a in self.cubes:
            for b in other.cubes:
                c = _cube_intersect(a, b)
                if c is not None:
                    out.append(c)
        return PacketSet(tuple(out))

    def subtract(self, other: "PacketSet") -> "PacketSet":
        """Members of ``self`` not in ``other``."""
        cubes = list(self.cubes)
        for b in other.cubes:
            if not cubes:
                break
            next_cubes: list[Cube] = []
            for a in cubes:
                next_cubes.extend(_cube_subtract(a, b))
            cubes = next_cubes
        return PacketSet(tuple(cubes))

    def negate(self) -> "PacketSet":
        """The complement within the full packet universe."""
        return PacketSet.all().subtract(self)

    # -- field surgery (what the transfer function needs) --------------
    def constrain(self, field: str, allowed: IntervalSet) -> "PacketSet":
        """Cubes narrowed so ``field`` lies inside ``allowed``."""
        out: list[Cube] = []
        for c in self.cubes:
            entries = []
            empty = False
            for name, s in c:
                if name == field:
                    s = s.intersect(allowed)
                    if s.is_empty:
                        empty = True
                        break
                entries.append((name, s))
            if not empty:
                out.append(tuple(entries))
        return PacketSet(tuple(out))

    def shift_field(self, field: str, delta: int) -> "PacketSet":
        """``field`` moved by ``delta`` in every cube (TTL decrement),
        clipped to the field's universe."""
        out: list[Cube] = []
        for c in self.cubes:
            entries = []
            empty = False
            for name, s in c:
                if name == field:
                    s = s.shift(delta, 0, FIELD_MAX[field])
                    if s.is_empty:
                        empty = True
                        break
                entries.append((name, s))
            if not empty:
                out.append(tuple(entries))
        return PacketSet(tuple(out))

    def project(self, field: str) -> IntervalSet:
        """The union of ``field``'s values across all cubes."""
        out = IntervalSet.empty()
        for c in self.cubes:
            out = out.union(dict(c)[field])
        return out

    def sample(self) -> dict[str, int]:
        """One concrete witness packet (raises on the empty set)."""
        if self.is_empty:
            raise ValueError("empty packet set has no witness")
        return {field: s.min() for field, s in self.cubes[0]}

    # -- emitters ------------------------------------------------------
    def as_dict(self) -> list[dict[str, list[list[int]]]]:
        """JSON-shaped cube list (field -> interval pairs), canonical order."""
        shaped = [
            {field: [list(pair) for pair in s.intervals] for field, s in c}
            for c in self.cubes
        ]
        return sorted(shaped, key=lambda c: sorted(c.items()))

    def __repr__(self) -> str:
        if self.is_empty:
            return "PacketSet(∅)"
        parts = []
        for c in self.cubes[:4]:
            constrained = [
                f"{field}={s!r}"
                for field, s in c
                if s != _full(field)
            ]
            parts.append("{" + " ".join(constrained) + "}" if constrained else "{*}")
        if len(self.cubes) > 4:
            parts.append(f"... +{len(self.cubes) - 4} cubes")
        return "PacketSet(" + " ∪ ".join(parts) + ")"
