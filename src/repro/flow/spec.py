"""The analysis input: a static snapshot of the forwarding plane.

A :class:`FlowSpec` is everything the symbolic engine needs and nothing
it doesn't: node addresses, live directed adjacency, one installed FIB
per node, and the property annotations (zones for no-escape, tenants
for isolation).  No behaviour, no simulator — it is pure data, loadable
from JSON, exportable to JSON, and snapshottable from a running
:class:`~repro.network.topology.Topology` via the network layer's
:meth:`~repro.network.topology.Topology.flow_spec` hook (the dashed
control arrow from the dynamic world into the static analyzer).

:func:`spec_fingerprint` canonicalises the spec into the content hash
that keys :class:`~repro.par.ProofCache` entries: two runs over the
same FIBs and wiring share verdicts; touching a route invalidates
exactly that spec's entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..core.errors import ConfigurationError
from ..network.packets import Address
from ..par.fingerprint import value_fingerprint
from .sets import IntervalSet

#: Default initial TTL for injected packet sets (DataPacket.make default).
DEFAULT_TTL = 32


def _spans(pairs: Any, what: str) -> IntervalSet:
    """An :class:`IntervalSet` from JSON ``[[lo, hi], ...]`` pairs."""
    if not isinstance(pairs, (list, tuple)):
        raise ConfigurationError(f"{what}: expected a list of [lo, hi] pairs")
    out = []
    for pair in pairs:
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not all(isinstance(v, int) for v in pair)
        ):
            raise ConfigurationError(f"{what}: bad interval {pair!r}")
        out.append((pair[0], pair[1]))
    return IntervalSet.from_intervals(out)


@dataclass(frozen=True)
class Zone:
    """A named set of nodes plus the address space considered "inside".

    ``space`` defaults to exactly the member nodes' addresses.  The
    no-escape property says: packets originated inside the zone with a
    destination in ``space`` must never be seen at a node outside
    ``nodes``.
    """

    name: str
    nodes: frozenset[Address]
    space: IntervalSet

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON form."""
        return {
            "name": self.name,
            "nodes": sorted(self.nodes),
            "space": [list(pair) for pair in self.space.intervals],
        }


@dataclass(frozen=True)
class Tenant:
    """A named traffic owner: its nodes and its claimed address space.

    Isolation says tenants' address spaces are pairwise disjoint and
    one tenant's intra-tenant traffic never appears at a node owned
    exclusively by another.
    """

    name: str
    nodes: frozenset[Address]
    space: IntervalSet

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON form."""
        return {
            "name": self.name,
            "nodes": sorted(self.nodes),
            "space": [list(pair) for pair in self.space.intervals],
        }


@dataclass(frozen=True)
class FlowSpec:
    """A forwarding-plane snapshot: the unit of symbolic analysis."""

    name: str
    #: Node addresses (each node's own address is its identity).
    nodes: tuple[Address, ...]
    #: Live *directed* edges ``(node, peer)``; an undirected link
    #: contributes both directions.
    edges: frozenset[tuple[Address, Address]]
    #: Installed forwarding tables: ``node -> {dst -> next_hop}``.
    fibs: Mapping[Address, Mapping[Address, Address]] = field(
        default_factory=dict
    )
    zones: tuple[Zone, ...] = ()
    tenants: tuple[Tenant, ...] = ()
    #: Initial TTL of injected packet sets.
    ttl: int = DEFAULT_TTL

    def __post_init__(self) -> None:
        """Validate referential integrity once, so the engine never has to."""
        members = set(self.nodes)
        if len(self.nodes) != len(members):
            raise ConfigurationError(f"spec {self.name}: duplicate node address")
        for a, b in self.edges:
            if a not in members or b not in members:
                raise ConfigurationError(
                    f"spec {self.name}: edge ({a}, {b}) references unknown node"
                )
        for node in self.fibs:
            if node not in members:
                raise ConfigurationError(
                    f"spec {self.name}: FIB for unknown node {node}"
                )
        for zone in self.zones:
            if not zone.nodes <= members:
                raise ConfigurationError(
                    f"spec {self.name}: zone {zone.name!r} has unknown nodes "
                    f"{sorted(zone.nodes - members)}"
                )
        for tenant in self.tenants:
            if not tenant.nodes <= members:
                raise ConfigurationError(
                    f"spec {self.name}: tenant {tenant.name!r} has unknown "
                    f"nodes {sorted(tenant.nodes - members)}"
                )

    # ------------------------------------------------------------------
    def neighbors(self, node: Address) -> frozenset[Address]:
        """Peers ``node`` can currently send to (live out-edges)."""
        return frozenset(b for a, b in self.edges if a == node)

    def fib_of(self, node: Address) -> dict[Address, Address]:
        """The installed FIB of ``node`` (empty when none installed)."""
        return dict(self.fibs.get(node, {}))

    def deliverable(self) -> IntervalSet:
        """The address space that *should* be reachable: all node addresses."""
        return IntervalSet.of(*self.nodes)

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any], name: str = "") -> "FlowSpec":
        """Build from the JSON shape (see ``tests/flow/fixtures`` for
        examples); ``edges`` entries are undirected pairs."""
        try:
            nodes = tuple(int(n) for n in data["nodes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"flow spec: bad 'nodes': {exc}") from exc
        directed: set[tuple[Address, Address]] = set()
        for pair in data.get("edges", []):
            if len(pair) != 2:
                raise ConfigurationError(f"flow spec: bad edge {pair!r}")
            a, b = int(pair[0]), int(pair[1])
            directed.add((a, b))
            directed.add((b, a))
        fibs = {
            int(node): {int(d): int(nh) for d, nh in table.items()}
            for node, table in data.get("fibs", {}).items()
        }
        zones = tuple(
            Zone(
                name=z["name"],
                nodes=frozenset(int(n) for n in z["nodes"]),
                space=(
                    _spans(z["space"], f"zone {z['name']!r} space")
                    if "space" in z
                    else IntervalSet.of(*(int(n) for n in z["nodes"]))
                ),
            )
            for z in data.get("zones", [])
        )
        tenants = tuple(
            Tenant(
                name=t["name"],
                nodes=frozenset(int(n) for n in t["nodes"]),
                space=(
                    _spans(t["space"], f"tenant {t['name']!r} space")
                    if "space" in t
                    else IntervalSet.of(*(int(n) for n in t["nodes"]))
                ),
            )
            for t in data.get("tenants", [])
        )
        return cls(
            name=data.get("name", name or "spec"),
            nodes=nodes,
            edges=frozenset(directed),
            fibs=fibs,
            zones=zones,
            tenants=tenants,
            ttl=int(data.get("ttl", DEFAULT_TTL)),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "FlowSpec":
        """Load a JSON spec file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot load flow spec {path}: {exc}") from exc
        return cls.from_dict(data, name=path.stem)

    @classmethod
    def from_topology(cls, topology: Any, name: str = "", **annotations: Any) -> "FlowSpec":
        """Snapshot a live :class:`~repro.network.topology.Topology`.

        Reads the topology's :meth:`flow_spec` export (installed FIBs,
        alive links) — the analysis then runs with no further contact
        with the simulation.  ``annotations`` may add ``zones`` /
        ``tenants`` / ``ttl`` in the JSON shape.
        """
        data = dict(topology.flow_spec())
        data.update(annotations)
        if name:
            data["name"] = name
        return cls.from_dict(data)

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON form (sorted, undirected edge list)."""
        undirected = sorted(
            {(min(a, b), max(a, b)) for a, b in self.edges}
        )
        return {
            "name": self.name,
            "nodes": sorted(self.nodes),
            "edges": [list(pair) for pair in undirected],
            "fibs": {
                str(node): {
                    str(dst): self.fibs[node][dst]
                    for dst in sorted(self.fibs[node])
                }
                for node in sorted(self.fibs)
            },
            "zones": [z.as_dict() for z in self.zones],
            "tenants": [t.as_dict() for t in self.tenants],
            "ttl": self.ttl,
        }


def spec_fingerprint(spec: FlowSpec) -> str:
    """Content hash guarding cached verdicts for ``spec``.

    Derived from the canonical dict — FIBs, wiring, annotations — so
    any change to the forwarding plane or the properties invalidates
    the cache entry, while node/edge declaration order does not.
    """
    return value_fingerprint(json.dumps(spec.as_dict(), sort_keys=True))
