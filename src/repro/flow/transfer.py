"""Per-node symbolic transfer functions, extracted from forwarding semantics.

Each :class:`NodeTransfer` is the symbolic mirror of one
:class:`~repro.network.forwarding.ForwardingSublayer`: the same
branch structure — deliver-local, FIB lookup, TTL check, next-hop
interface resolution — applied to a whole :class:`PacketSet` at once
instead of one packet.  The branches are *exactly* the runtime ones
(``tests/flow/test_transfer.py`` cross-validates symbolic verdicts
against a concrete ``ForwardingSublayer`` packet by packet), so a
symbolic verdict is a statement about the shipped code, not about a
re-implementation.

The drop categories carry the runtime metric names
(``ttl_expired`` / ``no_route`` / ``no_interface``) so flow-analysis
verdicts can be cross-checked against the counters the sublayer
dual-counts into its :class:`~repro.core.metrics.MetricsSink`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..network.packets import Address
from .sets import IntervalSet, PacketSet
from .spec import FlowSpec

#: Drop kinds, named after the forwarding sublayer's runtime counters.
DROP_TTL = "ttl_expired"
DROP_NO_ROUTE = "no_route"
DROP_NO_INTERFACE = "no_interface"


@dataclass
class TransferResult:
    """What one symbolic step at a node does to an arriving packet set."""

    #: Packets whose ``dst`` is this node: consumed here.
    delivered: PacketSet
    #: Dropped sets by kind (:data:`DROP_TTL` / :data:`DROP_NO_ROUTE` /
    #: :data:`DROP_NO_INTERFACE`).
    dropped: dict[str, PacketSet]
    #: Sets leaving on each live out-edge, TTL already decremented.
    forwarded: dict[Address, PacketSet]


class NodeTransfer:
    """The forwarding sublayer of one node as a packet-set function."""

    def __init__(self, spec: FlowSpec, address: Address):
        self.address = address
        fib = spec.fib_of(address)
        neighbors = spec.neighbors(address)
        #: dst values grouped by the FIB's chosen next hop.
        self.groups: dict[Address, IntervalSet] = {}
        for dst, next_hop in fib.items():
            self.groups[next_hop] = self.groups.get(
                next_hop, IntervalSet.empty()
            ).union(IntervalSet.of(dst))
        #: Next hops the node can actually reach (live adjacency) —
        #: the static mirror of ``resolve_interface`` returning None.
        self.resolvable = frozenset(self.groups) & neighbors
        self.unresolvable = frozenset(self.groups) - neighbors
        self.routed: IntervalSet = IntervalSet.empty()
        for dsts in self.groups.values():
            self.routed = self.routed.union(dsts)

    def apply(self, arriving: PacketSet, originate: bool = False) -> TransferResult:
        """One symbolic step, mirroring ``ForwardingSublayer.forward``.

        With ``originate=True`` the TTL branch is skipped and nothing is
        decremented — the semantics of locally-generated packets
        (``ForwardingSublayer.originate``).
        """
        local = IntervalSet.of(self.address)
        delivered = arriving.constrain("dst", local)
        transit = arriving.constrain("dst", local.complement(0, 0xFFFF))

        no_route = transit.constrain("dst", self.routed.complement(0, 0xFFFF))
        routed = transit.constrain("dst", self.routed)

        dropped: dict[str, PacketSet] = {
            DROP_NO_ROUTE: no_route,
            DROP_TTL: PacketSet.empty(),
            DROP_NO_INTERFACE: PacketSet.empty(),
        }
        if not originate:
            # forward(): TTL <= 1 expires *before* interface resolution.
            dropped[DROP_TTL] = routed.constrain("ttl", IntervalSet.span(0, 1))
            routed = routed.constrain("ttl", IntervalSet.span(2, 255))

        forwarded: dict[Address, PacketSet] = {}
        for next_hop in sorted(self.groups):
            out = routed.constrain("dst", self.groups[next_hop])
            if out.is_empty:
                continue
            if next_hop in self.unresolvable:
                dropped[DROP_NO_INTERFACE] = dropped[
                    DROP_NO_INTERFACE
                ].union(out)
                continue
            if not originate:
                out = out.shift_field("ttl", -1)
            forwarded[next_hop] = out
        return TransferResult(
            delivered=delivered, dropped=dropped, forwarded=forwarded
        )


@dataclass
class TransferGraph:
    """All node transfers of a spec, built once per analysis."""

    spec: FlowSpec
    transfers: dict[Address, NodeTransfer] = field(default_factory=dict)

    @property
    def nodes(self) -> tuple[Address, ...]:
        """The spec's nodes, in declaration order."""
        return self.spec.nodes

    def at(self, node: Address) -> NodeTransfer:
        """The transfer function of ``node``."""
        return self.transfers[node]


def build_transfers(spec: FlowSpec) -> TransferGraph:
    """Extract a :class:`NodeTransfer` per node from the spec's FIBs."""
    graph = TransferGraph(spec=spec)
    for node in spec.nodes:
        graph.transfers[node] = NodeTransfer(spec, node)
    return graph
