"""`repro.net` — the live-UDP asyncio runtime for sublayer stacks.

Every profile the :class:`~repro.compose.builder.StackBuilder` knows
(hdlc/wireless/tcp/quic) composes runtime-agnostic sublayers: each one
sees only the data path, the service port below it, and the narrow
:class:`~repro.core.clock.Clock` protocol.  The deterministic simulator
(:mod:`repro.sim`) is one host environment for those compositions; this
package is the other — the *same* stacks driven by an asyncio event
loop, wall-clock timers, and real UDP sockets, so two OS processes (or
hosts) interoperate using the identical sublayered TCP profile.

The pieces mirror the simulator's, one for one:

========================  =======================================
 simulator (virtual)       net (wall clock)
========================  =======================================
 ``Simulator`` heap        the asyncio event loop
 ``SimClock``              :class:`~repro.net.clock.LoopClock`
 ``DuplexLink``            :class:`~repro.net.endpoint.UDPEndpoint`
 structured ``Pdu`` units  :class:`~repro.net.codec.WireCodec` bytes
 ``sim.run(until=...)``    ``loop.run_until_complete(...)``
========================  =======================================

The simulator remains the deterministic twin: the same
:class:`~repro.net.scenario.TransferSpec` runs on either backend
(``backend="sim"`` / ``backend="net"``) with matching delivery
semantics, and ``python -m repro.net {serve,load,twin}`` exposes a
server, a concurrent load generator reporting latency percentiles from
:mod:`repro.obs` histograms, and the twin-run comparison.  See
docs/RUNTIME.md for the architecture.
"""

from __future__ import annotations

from .clock import LoopClock, LoopTimerHandle
from .codec import CodecError, WireCodec, codec_for_profile, tcp_codec
from .endpoint import UDPEndpoint
from .load import LoadGenerator, LoadReport
from .scenario import TransferResult, TransferSpec, run_transfer
from .server import NetServer

__all__ = [
    "CodecError",
    "LoadGenerator",
    "LoadReport",
    "LoopClock",
    "LoopTimerHandle",
    "NetServer",
    "TransferResult",
    "TransferSpec",
    "UDPEndpoint",
    "WireCodec",
    "codec_for_profile",
    "run_transfer",
    "tcp_codec",
]
