"""Live-runtime CLI: ``python -m repro.net``.

Three subcommands:

* ``serve`` — host one listening sublayered TCP stack on a UDP socket
  and serve accepted connections (echo or sink) until the duration
  elapses or the process is interrupted.  Prints the bound address as
  the first output line so scripts can scrape an ephemeral port.
* ``load`` — run N concurrent client stacks against a running server
  and write a JSON report with throughput and p50/p95/p99 round-trip
  latency from the :mod:`repro.obs` histograms.  CI's loopback smoke
  step asserts zero data loss on it.
* ``twin`` — run the same :class:`~repro.compose.backends.TransferSpec`
  on the deterministic simulator and on the live runtime and compare
  delivered bytes (the two-runtime parity check from docs/RUNTIME.md).

Examples::

    python -m repro.net serve --udp-port 9000 --duration 30
    python -m repro.net load --server 127.0.0.1:9000 --clients 8 \\
        --messages 32 --size 2048 --out report.json
    python -m repro.net twin --payload-bytes 30000 --json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..core.errors import ReproError
from .load import LoadGenerator
from .server import MODES, NetServer


def _parse_address(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` into an address tuple."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ReproError(f"expected HOST:PORT, got {text!r}")
    return (host or "127.0.0.1", int(port))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Live asyncio/UDP runtime for the sublayered stacks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser("serve", help="host a listening stack over UDP")
    serve_p.add_argument(
        "--bind",
        default="127.0.0.1",
        metavar="HOST",
        help="UDP bind address (default: 127.0.0.1)",
    )
    serve_p.add_argument(
        "--udp-port",
        type=int,
        default=0,
        help="UDP port to bind (default: 0 = ephemeral, printed on start)",
    )
    serve_p.add_argument(
        "--tcp-port",
        type=int,
        default=80,
        help="stack listening port clients connect to (default: 80)",
    )
    serve_p.add_argument(
        "--mode",
        choices=MODES,
        default="echo",
        help="echo chunks back or sink them (default: echo)",
    )
    serve_p.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for this long then exit (default: until interrupted)",
    )
    serve_p.add_argument(
        "--json",
        action="store_true",
        help="print final server stats as JSON on exit",
    )

    load_p = sub.add_parser("load", help="drive client stacks at a server")
    load_p.add_argument(
        "--server",
        default="127.0.0.1:9000",
        metavar="HOST:PORT",
        help="server UDP address (default: 127.0.0.1:9000)",
    )
    load_p.add_argument(
        "--tcp-port",
        type=int,
        default=80,
        help="server stack listening port (default: 80)",
    )
    load_p.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="concurrent client stacks (default: 4)",
    )
    load_p.add_argument(
        "--messages",
        type=int,
        default=16,
        metavar="N",
        help="ping-pong messages per client (default: 16)",
    )
    load_p.add_argument(
        "--size",
        type=int,
        default=1024,
        metavar="BYTES",
        help="payload bytes per message (default: 1024)",
    )
    load_p.add_argument(
        "--base-port",
        type=int,
        default=40000,
        help="first client stack port; client i uses base+i (default: 40000)",
    )
    load_p.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-client completion deadline (default: 60)",
    )
    load_p.add_argument(
        "--out",
        metavar="FILE.json",
        help="write the full JSON report here",
    )
    load_p.add_argument(
        "--json",
        action="store_true",
        help="print the full JSON report to stdout instead of a summary",
    )
    load_p.add_argument(
        "--no-metrics",
        action="store_true",
        help="omit the raw metrics snapshot from the report",
    )

    twin_p = sub.add_parser("twin", help="run one spec on both runtimes")
    twin_p.add_argument(
        "--backend",
        choices=("sim", "net", "both"),
        default="both",
        help="which runtime(s) to run the spec on (default: both)",
    )
    twin_p.add_argument(
        "--payload-bytes",
        type=int,
        default=30_000,
        help="client payload size (default: 30000)",
    )
    twin_p.add_argument(
        "--mss",
        type=int,
        default=1000,
        help="stack segment size (default: 1000)",
    )
    twin_p.add_argument(
        "--time-limit",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="transfer deadline, virtual or wall (default: 60)",
    )
    twin_p.add_argument(
        "--json",
        action="store_true",
        help="print per-backend results as JSON",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "load":
            return _cmd_load(args)
        return _cmd_twin(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    server = NetServer(tcp_port=args.tcp_port, mode=args.mode)

    async def serve() -> None:
        endpoint = await server.start(
            bind_host=args.bind, udp_port=args.udp_port
        )
        host, port = endpoint.local_address
        # First line of output; scripts scrape the ephemeral port here.
        print(f"listening {host}:{port} tcp-port {args.tcp_port}", flush=True)
        try:
            await server.run(args.duration)
        finally:
            # Close while the loop is still alive; the datagram
            # transport cannot be released after asyncio.run returns.
            server.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    if args.json:
        print(json.dumps(server.stats(), indent=1, sort_keys=True))
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    generator = LoadGenerator(
        _parse_address(args.server),
        tcp_port=args.tcp_port,
        clients=args.clients,
        messages=args.messages,
        size=args.size,
        base_port=args.base_port,
        timeout=args.timeout,
        include_metrics=not args.no_metrics,
    )
    report = asyncio.run(generator.run())
    document = report.as_dict()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            json.dump(document, fp, indent=1, sort_keys=True)
            fp.write("\n")
    if args.json:
        print(json.dumps(document, indent=1, sort_keys=True))
    else:
        latency = report.latency
        print(
            f"{report.clients} clients x {report.messages} msgs x "
            f"{report.size}B: {'lossless' if report.lossless else 'LOSSY'} "
            f"in {report.duration_s:.3f}s"
        )
        print(
            f"  throughput {report.throughput_bps / 1e6:.2f} Mbit/s, "
            f"{report.msgs_per_sec:.1f} msg/s"
        )
        print(
            f"  rtt p50 {latency['p50'] * 1e3:.2f}ms "
            f"p95 {latency['p95'] * 1e3:.2f}ms "
            f"p99 {latency['p99'] * 1e3:.2f}ms "
            f"(n={latency['count']})"
            if latency["count"]
            else "  rtt: no samples"
        )
        for error in report.errors:
            print(f"  error: {error}")
        if args.out:
            print(f"  report: {args.out}")
    return 0 if report.ok else 1


def _cmd_twin(args: argparse.Namespace) -> int:
    from ..compose.backends import TransferSpec, run_transfer

    spec = TransferSpec(
        payload_bytes=args.payload_bytes,
        mss=args.mss,
        time_limit=args.time_limit,
    )
    backends = ("sim", "net") if args.backend == "both" else (args.backend,)
    results = [run_transfer(spec, backend=name) for name in backends]
    ok = all(result.ok for result in results)
    if len(results) == 2:
        ok = ok and results[0].received == results[1].received
    if args.json:
        document = {
            "ok": ok,
            "spec": {
                "payload_bytes": spec.payload_bytes,
                "mss": spec.mss,
                "time_limit": spec.time_limit,
            },
            "results": [result.as_dict() for result in results],
        }
        print(json.dumps(document, indent=1, sort_keys=True))
    else:
        for result in results:
            print(
                f"{result.backend}: "
                f"{'ok' if result.ok else 'INCOMPLETE'} — "
                f"{len(result.received)}/{len(result.sent)} bytes "
                f"in {result.duration_s:.3f}s "
                f"({'virtual' if result.backend == 'sim' else 'wall'})"
            )
        print("parity: ok" if ok else "parity: MISMATCH")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
