"""Wall-clock timers for stacks: the asyncio face of the Clock protocol.

Sublayers that retransmit (ARQ, RD, CM) arm timers exclusively through
the :class:`~repro.core.clock.Clock` protocol — ``now()`` plus
``call_later()`` returning a cancelable handle.  Inside the simulator
that protocol is backed by the event heap
(:class:`~repro.sim.engine.SimClock`); here it is backed by a live
asyncio event loop, so the *same* sublayer code schedules its
retransmissions on wall-clock time.  Nothing in ``datalink`` or
``transport`` can tell the difference — which is the point, and what
``tests/net/test_clock_parametrized.py`` and the ``netleak``
static-check fixture hold true.
"""

from __future__ import annotations

import asyncio
from typing import Callable


class LoopTimerHandle:
    """Cancelable handle for a callback scheduled on an asyncio loop.

    Mirrors :class:`repro.core.clock.TimerHandle`'s surface (``when``,
    ``cancel()``, ``cancelled``) over an :class:`asyncio.TimerHandle`,
    so sublayer code that stores and cancels timers works unchanged on
    either runtime.
    """

    __slots__ = ("when", "callback", "_handle", "_cancelled")

    def __init__(
        self,
        when: float,
        callback: Callable[[], None],
        handle: asyncio.TimerHandle,
    ):
        """Wrap an asyncio timer (``when`` is in loop-time seconds)."""
        self.when = when
        self.callback = callback
        self._handle = handle
        self._cancelled = False

    def cancel(self) -> None:
        """Cancel the scheduled callback (idempotent)."""
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled


class LoopClock:
    """The :class:`~repro.core.clock.Clock` protocol over an asyncio loop.

    ``now()`` is the loop's monotonic clock (``loop.time()``), and
    ``call_later`` lands on ``loop.call_later`` — so ARQ/CM/RD timers
    that the simulator would put on its event heap fire as real
    wall-clock callbacks instead.  One ``LoopClock`` may serve any
    number of stacks on the same loop.
    """

    __slots__ = ("_loop",)

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None):
        """Bind to ``loop`` (default: the currently running loop)."""
        self._loop = loop if loop is not None else asyncio.get_event_loop()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The event loop timers schedule on."""
        return self._loop

    def now(self) -> float:
        """Current loop time in seconds (monotonic, not wall epoch)."""
        return self._loop.time()

    def call_later(
        self, delay: float, callback: Callable[[], None]
    ) -> LoopTimerHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        handle = self._loop.call_later(delay, callback)
        return LoopTimerHandle(self._loop.time() + delay, callback, handle)
