"""Serializing structured PDUs to UDP datagrams and back.

Inside the simulator, units in flight stay structured
:class:`~repro.core.pdu.Pdu` trees — headers as dicts, typed by their
:class:`~repro.core.header.HeaderFormat` — because the litmus checker
wants to see which sublayer attached which bits.  A real socket wants
bytes.  The bridge is already declared: every sublayer header is a
bit-exact :class:`HeaderFormat`, so a profile's wire format is just the
concatenation of its packed subheaders (the right-hand side of the
paper's Fig 2/Fig 6), and a :class:`WireCodec` needs only the ordered
``(owner, format)`` list to flatten a PDU into a datagram on one host
and rebuild the identical structure on another.

Frame layout (all byte-aligned)::

    [magic:1] [present:1] [payload?:1] [header 0] ... [header n-1] [payload]

``magic`` names the profile (so a stray datagram for the wrong stack
is dropped, not misparsed), ``present`` is how many leading layers of
the declared order carry a header (a TCP handshake is DM|CM, a pure
ack DM|CM|RD, data DM|CM|RD|OSR), and ``payload?`` distinguishes an
absent inner SDU (``None``) from an empty one (``b""`` — OSR window
updates and probes).
"""

from __future__ import annotations

from typing import Sequence

from ..core.errors import ReproError
from ..core.header import HeaderFormat
from ..core.pdu import Pdu


class CodecError(ReproError):
    """A unit (or datagram) does not match the codec's wire format."""


class WireCodec:
    """Bidirectional PDU <-> datagram translation for one profile.

    ``layers`` is the profile's header order, outermost first; every
    format must be byte-aligned (they all are — the Fig 6 subheaders
    pad to byte boundaries).  Encoding walks the PDU's header chain and
    requires it to be a prefix of the declared order; decoding rebuilds
    the nested :class:`Pdu` structure a native stack would have built.
    """

    def __init__(
        self,
        name: str,
        magic: int,
        layers: Sequence[tuple[str, HeaderFormat]],
    ):
        """Declare a codec: profile ``name``, one-byte ``magic``, layers."""
        if not 0 <= magic <= 0xFF:
            raise CodecError(f"magic must be one byte, got {magic}")
        if not layers:
            raise CodecError(f"codec {name!r} declares no layers")
        if len(layers) > 0x7F:
            raise CodecError(f"codec {name!r} declares too many layers")
        self.name = name
        self.magic = magic
        self.layers: tuple[tuple[str, HeaderFormat], ...] = tuple(layers)
        for owner, fmt in self.layers:
            # byte_width raises HeaderError for unaligned formats —
            # surface that at declaration time, not per packet.
            fmt.byte_width
        self._owners = [owner for owner, _ in self.layers]

    # ------------------------------------------------------------------
    def encode(self, unit: Pdu) -> bytes:
        """Flatten one wire unit into a datagram."""
        if not isinstance(unit, Pdu):
            raise CodecError(
                f"codec {self.name!r} can only encode Pdu units, "
                f"got {type(unit).__name__}"
            )
        chain = list(unit.header_chain())
        if len(chain) > len(self.layers):
            raise CodecError(
                f"unit has {len(chain)} headers; codec {self.name!r} "
                f"declares {len(self.layers)} layers"
            )
        parts = [bytes((self.magic, len(chain), 0))]
        for index, pdu in enumerate(chain):
            owner, fmt = self.layers[index]
            if pdu.owner != owner:
                raise CodecError(
                    f"header {index} belongs to {pdu.owner!r}; codec "
                    f"{self.name!r} expects {owner!r} there"
                )
            parts.append(fmt.pack_bytes(pdu.header))
        payload = chain[-1].inner
        if payload is None:
            pass
        elif isinstance(payload, (bytes, bytearray, memoryview)):
            parts[0] = bytes((self.magic, len(chain), 1))
            parts.append(bytes(payload))
        else:
            raise CodecError(
                f"innermost SDU must be bytes or None to cross a socket, "
                f"got {type(payload).__name__}"
            )
        return b"".join(parts)

    def decode(self, data: bytes) -> Pdu:
        """Rebuild the nested PDU structure from one datagram."""
        if len(data) < 3:
            raise CodecError(f"datagram too short ({len(data)} bytes)")
        if data[0] != self.magic:
            raise CodecError(
                f"magic {data[0]:#04x} is not codec {self.name!r} "
                f"({self.magic:#04x})"
            )
        present = data[1]
        has_payload = data[2]
        if not 1 <= present <= len(self.layers):
            raise CodecError(
                f"datagram claims {present} headers; codec {self.name!r} "
                f"declares {len(self.layers)}"
            )
        if has_payload not in (0, 1):
            raise CodecError(f"bad payload flag {has_payload}")
        offset = 3
        headers: list[dict[str, int]] = []
        for index in range(present):
            _owner, fmt = self.layers[index]
            width = fmt.byte_width
            if len(data) < offset + width:
                raise CodecError(
                    f"datagram truncated inside header {index} "
                    f"({len(data)} bytes)"
                )
            headers.append(fmt.unpack_bytes(data[offset : offset + width]))
            offset += width
        inner = bytes(data[offset:]) if has_payload else None
        if not has_payload and len(data) != offset:
            raise CodecError(
                f"{len(data) - offset} trailing bytes on a payload-less "
                "datagram"
            )
        unit: Pdu | bytes | None = inner
        for index in range(present - 1, -1, -1):
            owner, fmt = self.layers[index]
            unit = Pdu(owner, fmt, headers[index], unit)
        return unit  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"WireCodec({self.name!r}, {' | '.join(self._owners)})"


# ----------------------------------------------------------------------
# Profile codecs
# ----------------------------------------------------------------------
def tcp_codec() -> WireCodec:
    """The wire codec for the Fig 5/Fig 6 sublayered TCP profile.

    DM | CM | RD | OSR, exactly the native header concatenation of
    :mod:`repro.transport.sublayered.headers`.  (Import is deferred so
    ``repro.net`` stays importable without pulling the transport tier
    until a TCP codec is actually needed.)
    """
    from ..transport.sublayered.headers import (
        CM_HEADER,
        DM_HEADER,
        OSR_HEADER,
        RD_HEADER,
    )

    return WireCodec(
        "tcp",
        magic=0x54,  # 'T'
        layers=(
            ("dm", DM_HEADER),
            ("cm", CM_HEADER),
            ("rd", RD_HEADER),
            ("osr", OSR_HEADER),
        ),
    )


#: Profile name -> codec factory.  Only profiles whose wire units are
#: pure header-chains over byte payloads can cross a socket today; the
#: datalink profiles emit :class:`~repro.core.bits.Bits` frames and get
#: their codec when the phys boundary grows one.
CODECS = {"tcp": tcp_codec}


def codec_for_profile(profile: str) -> WireCodec:
    """The :class:`WireCodec` for a stack profile (CodecError if none)."""
    try:
        factory = CODECS[profile]
    except KeyError:
        raise CodecError(
            f"no wire codec for profile {profile!r}; "
            f"available: {sorted(CODECS)}"
        ) from None
    return factory()
