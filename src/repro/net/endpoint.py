"""UDP datagram endpoints: the wire a live stack transmits into.

Where the simulator wires a stack's ``on_transmit`` into a
:class:`~repro.sim.link.DuplexLink` and schedules ``receive`` calls on
the event heap, a :class:`UDPEndpoint` wires the same two hooks onto a
datagram socket: ``on_transmit`` encodes the unit with the profile's
:class:`~repro.net.codec.WireCodec` and ``sendto``-s it, and each
datagram received feeds the decoded unit straight into the stack's
``from_below`` path via ``host.receive``.

Addressing rides on the profile's own demultiplexing header — the DM
sublayer is "essentially UDP" (ports only), so the endpoint reads the
outermost header's source port to learn which socket address a peer
port lives at, and routes replies by destination port.  A *client*
endpoint skips the table: its socket is connected to one remote
address.  Malformed or foreign datagrams are counted and dropped, never
raised into the loop — a real socket receives whatever the network
feels like delivering.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from ..core.metrics import MetricsSink, scoped
from .codec import CodecError, WireCodec

#: Socket address (host, port) as asyncio hands it to datagram callbacks.
Address = tuple[str, int]


class UDPEndpoint(asyncio.DatagramProtocol):
    """Bridge one stack-bearing host onto one UDP socket.

    ``host`` is anything with a ``receive(unit)`` method and a settable
    ``on_transmit`` attribute — a :class:`~repro.core.stack.Stack`, a
    :class:`~repro.transport.sublayered.host.SublayeredTcpHost`, or a
    test double.  ``route_fields`` names the (source, destination)
    fields of the outermost header used for peer-address learning and
    reply routing; the default matches the DM subheader.
    """

    def __init__(
        self,
        host: Any,
        codec: WireCodec,
        name: str = "udp",
        metrics: MetricsSink | None = None,
        route_fields: tuple[str, str] = ("sport", "dport"),
    ):
        """Prepare the bridge; call :func:`open_endpoint` to go live."""
        self.host = host
        self.codec = codec
        self.name = name
        self.metrics = scoped(metrics, f"net/{name}")
        self._source_field, self._dest_field = route_fields
        self.transport: asyncio.DatagramTransport | None = None
        self._connected = False  # socket bound to one remote address
        #: peer port (the outermost header's source field) -> last
        #: socket address it was seen at.  NAT-rebinding style address
        #: changes simply overwrite the entry.
        self.peers: dict[int, Address] = {}
        self.datagrams_in = 0
        self.datagrams_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.decode_errors = 0
        self.unroutable = 0
        self.on_error: Callable[[Exception], None] | None = None
        host.on_transmit = self._transmit

    # ------------------------------------------------------------------
    # asyncio.DatagramProtocol
    # ------------------------------------------------------------------
    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        """Capture the datagram transport once the socket is up."""
        self.transport = transport  # type: ignore[assignment]
        self._connected = transport.get_extra_info("peername") is not None

    def datagram_received(self, data: bytes, addr: Address) -> None:
        """Decode one datagram and feed it up the stack."""
        self.datagrams_in += 1
        self.bytes_in += len(data)
        try:
            unit = self.codec.decode(data)
        except CodecError:
            self.decode_errors += 1
            self.metrics.inc("decode_errors")
            return
        source = unit.header.get(self._source_field)
        if source is not None:
            self.peers[source] = addr
        self.host.receive(unit)

    def error_received(self, exc: Exception) -> None:
        """Surface socket-level errors (e.g. ICMP port unreachable)."""
        self.metrics.inc("socket_errors")
        if self.on_error is not None:
            self.on_error(exc)

    def connection_lost(self, exc: Exception | None) -> None:
        """Drop the transport reference once the socket closes."""
        self.transport = None

    # ------------------------------------------------------------------
    # The stack's wire sink
    # ------------------------------------------------------------------
    def _transmit(self, unit: Any, **meta: Any) -> None:
        if self.transport is None:
            self.unroutable += 1
            self.metrics.inc("unroutable")
            return
        data = self.codec.encode(unit)
        if self._connected:
            self.transport.sendto(data)
        else:
            dest = unit.header.get(self._dest_field)
            addr = self.peers.get(dest) if dest is not None else None
            if addr is None:
                # No datagram from that peer port yet: nowhere to send.
                self.unroutable += 1
                self.metrics.inc("unroutable")
                return
            self.transport.sendto(data, addr)
        self.datagrams_out += 1
        self.bytes_out += len(data)

    # ------------------------------------------------------------------
    @property
    def local_address(self) -> Address:
        """The socket's bound (host, port)."""
        if self.transport is None:
            raise CodecError(f"endpoint {self.name!r} is not open")
        return self.transport.get_extra_info("sockname")[:2]

    def close(self) -> None:
        """Close the socket (idempotent, safe after the loop is gone)."""
        if self.transport is not None:
            try:
                self.transport.close()
            except RuntimeError:
                # The event loop already closed under the transport;
                # the socket died with it, nothing left to release.
                pass
            self.transport = None

    def stats(self) -> dict[str, int]:
        """Datagram/byte/error counters as a JSON-ready dict."""
        return {
            "datagrams_in": self.datagrams_in,
            "datagrams_out": self.datagrams_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "decode_errors": self.decode_errors,
            "unroutable": self.unroutable,
        }

    def __repr__(self) -> str:
        state = "open" if self.transport is not None else "closed"
        return f"UDPEndpoint({self.name!r}, {state})"


async def open_endpoint(
    endpoint: UDPEndpoint,
    local_addr: Address | None = None,
    remote_addr: Address | None = None,
) -> UDPEndpoint:
    """Bind an endpoint's socket and return it once live.

    Servers pass ``local_addr`` (port 0 picks a free port — read it
    back from :attr:`UDPEndpoint.local_address`); clients pass
    ``remote_addr`` to get a connected socket that needs no routing
    table.
    """
    if local_addr is None and remote_addr is None:
        raise CodecError("open_endpoint needs local_addr and/or remote_addr")
    loop = asyncio.get_running_loop()
    await loop.create_datagram_endpoint(
        lambda: endpoint, local_addr=local_addr, remote_addr=remote_addr
    )
    return endpoint
