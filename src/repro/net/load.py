"""The load generator: N concurrent client stacks against one server.

This is the "heavy traffic from real users" workload from ROADMAP item
2: every client is a full sublayered TCP stack on its own connected
UDP socket, all sharing one asyncio loop in the load process, all
hammering a single :class:`~repro.net.server.NetServer` (usually in
another OS process).  Each client plays ping-pong with the echo
server — send one ``size``-byte message, wait for the full echo,
record the round trip — so the report's latency percentiles come
straight out of a :class:`repro.obs.Histogram` fed one sample per
message, and losslessness is checked by comparing the echoed byte
stream against the sent pattern.

``python -m repro.net load`` wraps this class and writes the JSON
report; the CI loopback smoke step asserts zero data loss and a
non-empty latency histogram on it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from ..obs import MetricsRegistry
from .clock import LoopClock
from .codec import codec_for_profile
from .endpoint import Address, UDPEndpoint, open_endpoint

#: Histogram name every client's round trips feed (one per message).
RTT_HIST = "net/load/rtt"


def pattern(nbytes: int) -> bytes:
    """The deterministic payload pattern (same as the sim test suites)."""
    return bytes(i % 251 for i in range(nbytes))


@dataclass
class LoadReport:
    """The load generator's JSON-ready result."""

    clients: int
    messages: int
    size: int
    duration_s: float
    bytes_sent: int
    bytes_echoed: int
    lossless: bool
    throughput_bps: float
    msgs_per_sec: float
    latency: dict[str, Any]
    per_client: list[dict[str, Any]] = field(default_factory=list)
    endpoint: dict[str, int] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every byte came back and no client errored."""
        return self.lossless and not self.errors

    def as_dict(self) -> dict[str, Any]:
        """The report as one JSON-serializable dict."""
        return {
            "ok": self.ok,
            "clients": self.clients,
            "messages": self.messages,
            "size": self.size,
            "duration_s": self.duration_s,
            "bytes_sent": self.bytes_sent,
            "bytes_echoed": self.bytes_echoed,
            "lossless": self.lossless,
            "throughput_bps": self.throughput_bps,
            "msgs_per_sec": self.msgs_per_sec,
            "latency": self.latency,
            "per_client": self.per_client,
            "endpoint": self.endpoint,
            "errors": self.errors,
            "metrics": self.metrics,
        }


class LoadGenerator:
    """Drive N concurrent client stacks at one server and measure."""

    def __init__(
        self,
        server_addr: Address,
        tcp_port: int = 80,
        clients: int = 4,
        messages: int = 16,
        size: int = 1024,
        base_port: int = 40000,
        profile: str = "tcp",
        config: Any | None = None,
        metrics: MetricsRegistry | None = None,
        tier: str = "metrics",
        timeout: float = 60.0,
        include_metrics: bool = True,
    ):
        """Configure the run; :meth:`run` executes it on a live loop.

        Each client binds stack port ``base_port + i`` — unique per
        client so the server's DM sublayer can demultiplex them; two
        concurrent load processes against one server must use disjoint
        ``base_port`` ranges.
        """
        self.server_addr = server_addr
        self.tcp_port = tcp_port
        self.clients = clients
        self.messages = messages
        self.size = size
        self.base_port = base_port
        self.profile = profile
        self.config = config
        self.tier = tier
        self.timeout = timeout
        self.include_metrics = include_metrics
        self.registry = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    async def run(self) -> LoadReport:
        """Run every client to completion and assemble the report."""
        from ..transport.sublayered.host import SublayeredTcpHost

        loop = asyncio.get_running_loop()
        clock = LoopClock(loop)
        payload = pattern(self.size)
        endpoints: list[UDPEndpoint] = []
        errors: list[str] = []
        per_client: list[dict[str, Any]] = []

        async def one_client(index: int) -> dict[str, Any]:
            host = SublayeredTcpHost(
                f"client{index}",
                clock,
                self.config,
                metrics=self.registry.scoped(f"net/client{index}"),
                tier=self.tier,
            )
            endpoint = UDPEndpoint(
                host,
                codec_for_profile(self.profile),
                name=f"client{index}",
                metrics=self.registry,
            )
            await open_endpoint(endpoint, remote_addr=self.server_addr)
            endpoints.append(endpoint)

            connected: asyncio.Future = loop.create_future()
            closed: asyncio.Future = loop.create_future()
            progress = {"echoed": 0, "target": 0, "waiter": None}

            def on_connect() -> None:
                if not connected.done():
                    connected.set_result(True)

            def on_error(reason: str) -> None:
                for future in (connected, closed):
                    if not future.done():
                        future.set_exception(
                            ConnectionError(f"client{index}: {reason}")
                        )

            def on_data(chunk: bytes) -> None:
                progress["echoed"] += len(chunk)
                waiter = progress["waiter"]
                if (
                    waiter is not None
                    and not waiter.done()
                    and progress["echoed"] >= progress["target"]
                ):
                    waiter.set_result(True)

            def on_close() -> None:
                if not closed.done():
                    closed.set_result(True)

            sock = host.connect(self.base_port + index, self.tcp_port)
            sock.on_connect = on_connect
            sock.on_error = on_error
            sock.on_data = on_data
            sock.on_close = on_close
            await connected

            rtts = self.registry  # shorthand; one hist feeds all clients
            for message in range(self.messages):
                progress["target"] = self.size * (message + 1)
                waiter: asyncio.Future = loop.create_future()
                progress["waiter"] = waiter
                started = clock.now()
                sock.send(payload)
                if progress["echoed"] < progress["target"]:
                    await waiter
                elapsed = clock.now() - started
                rtts.observe_hist(RTT_HIST, elapsed)
                rtts.observe_hist(f"net/client{index}/rtt", elapsed)

            sock.close()
            try:
                await asyncio.wait_for(closed, timeout=5.0)
            except asyncio.TimeoutError:
                # The FIN handshake straggling does not affect the
                # measured transfer; note it and move on.
                errors.append(f"client{index}: close handshake timed out")
            echoed = sock.bytes_received()
            return {
                "client": index,
                "port": self.base_port + index,
                "bytes_echoed": len(echoed),
                "intact": echoed == payload * self.messages,
            }

        started_at = loop.time()
        results = await asyncio.gather(
            *(
                asyncio.wait_for(one_client(i), timeout=self.timeout)
                for i in range(self.clients)
            ),
            return_exceptions=True,
        )
        duration = loop.time() - started_at
        for index, result in enumerate(results):
            if isinstance(result, BaseException):
                errors.append(f"client{index}: {result!r}")
            else:
                per_client.append(result)
        for endpoint in endpoints:
            endpoint.close()

        bytes_sent = self.clients * self.messages * self.size
        bytes_echoed = sum(c["bytes_echoed"] for c in per_client)
        lossless = (
            len(per_client) == self.clients
            and bytes_echoed == bytes_sent
            and all(c["intact"] for c in per_client)
        )
        endpoint_totals: dict[str, int] = {}
        for endpoint in endpoints:
            for key, value in endpoint.stats().items():
                endpoint_totals[key] = endpoint_totals.get(key, 0) + value
        return LoadReport(
            clients=self.clients,
            messages=self.messages,
            size=self.size,
            duration_s=duration,
            bytes_sent=bytes_sent,
            bytes_echoed=bytes_echoed,
            lossless=lossless,
            throughput_bps=8 * bytes_echoed / duration if duration > 0 else 0.0,
            msgs_per_sec=(
                sum(1 for _ in per_client) * self.messages / duration
                if duration > 0
                else 0.0
            ),
            latency=self.registry.hist_summary(RTT_HIST),
            per_client=per_client,
            endpoint=endpoint_totals,
            errors=errors,
            metrics=self.registry.snapshot() if self.include_metrics else {},
        )
