"""The live half of the two-runtime story: TransferSpec on real sockets.

:mod:`repro.compose.backends` defines the runtime-agnostic
:class:`~repro.compose.backends.TransferSpec` and runs it on the
deterministic simulator; this module registers the ``"net"`` backend
that runs the *same* spec over localhost UDP — two full sublayered TCP
stacks on one asyncio loop, each behind its own
:class:`~repro.net.endpoint.UDPEndpoint`, timers on the wall clock.
``python -m repro.net twin`` runs a spec on both backends and compares
the delivered bytes; ``tests/net/test_scenario_twin.py`` pins the
parity.
"""

from __future__ import annotations

import asyncio
from typing import Any

from ..compose.backends import (
    Backend,
    TransferResult,
    TransferSpec,
    register_backend,
)
from ..core.errors import ConfigurationError
from .clock import LoopClock
from .codec import codec_for_profile
from .endpoint import UDPEndpoint, open_endpoint

__all__ = ["TransferResult", "TransferSpec", "run_transfer"]


async def _transfer_on_loop(spec: TransferSpec) -> TransferResult:
    """Run one spec as two live stacks over a localhost UDP pair."""
    from ..transport.config import TcpConfig
    from ..transport.sublayered.host import SublayeredTcpHost

    if spec.profile != "tcp":
        raise ConfigurationError(
            f"the transfer scenario runs the 'tcp' profile; "
            f"got {spec.profile!r}"
        )
    loop = asyncio.get_running_loop()
    clock = LoopClock(loop)
    config = TcpConfig(mss=spec.mss)
    codec = codec_for_profile(spec.profile)

    server = SublayeredTcpHost("server", clock, config)
    server_ep = UDPEndpoint(server, codec, name="twin-server")
    await open_endpoint(server_ep, local_addr=("127.0.0.1", 0))

    client = SublayeredTcpHost("client", clock, config)
    client_ep = UDPEndpoint(client, codec, name="twin-client")
    await open_endpoint(client_ep, remote_addr=server_ep.local_address)

    payload = bytes(i % 251 for i in range(spec.payload_bytes))
    done: asyncio.Future = loop.create_future()
    received: list[bytes] = []

    def accepted(sock: Any) -> None:
        def on_data(chunk: bytes) -> None:
            received.append(chunk)
            if (
                not done.done()
                and sum(len(c) for c in received) >= len(payload)
            ):
                done.set_result(True)

        sock.on_data = on_data
        sock.on_peer_close = sock.close

    server.on_accept = accepted
    server.listen(spec.rport)

    sock = client.connect(spec.lport, spec.rport)
    sock.on_connect = lambda: (sock.send(payload), sock.close())
    sock.on_error = lambda reason: (
        None if done.done() else done.set_exception(ConnectionError(reason))
    )

    started = loop.time()
    try:
        await asyncio.wait_for(done, timeout=spec.time_limit)
    except asyncio.TimeoutError:
        pass  # report whatever arrived; the result's ok flag goes false
    duration = loop.time() - started
    # One final turn of the loop lets the FIN exchange settle before
    # the sockets close under it.
    await asyncio.sleep(0)
    client_ep.close()
    server_ep.close()
    return TransferResult(
        backend="net",
        sent=payload,
        received=b"".join(received),
        duration_s=duration,
        details={
            "client_endpoint": client_ep.stats(),
            "server_endpoint": server_ep.stats(),
        },
    )


def _run_net_transfer(spec: TransferSpec) -> TransferResult:
    """Backend entry point: spin up a loop and run the live transfer."""
    return asyncio.run(_transfer_on_loop(spec))


register_backend(
    Backend(
        name="net",
        description="live asyncio runtime over localhost UDP (wall clock)",
        run_transfer=_run_net_transfer,
    )
)


def run_transfer(spec: TransferSpec, backend: str = "net") -> TransferResult:
    """Run a spec on either runtime (convenience re-export for net users)."""
    from ..compose.backends import run_transfer as _dispatch

    return _dispatch(spec, backend=backend)
