"""A live server process hosting one sublayered TCP stack over UDP.

One :class:`NetServer` is one OS process's worth of the paper's Fig 5
stack: a :class:`~repro.transport.sublayered.host.SublayeredTcpHost`
(built through the unmodified ``tcp`` profile) whose timers run on a
:class:`~repro.net.clock.LoopClock` and whose wire is a
:class:`~repro.net.endpoint.UDPEndpoint`.  Any number of remote client
stacks connect to its listening port; each accepted connection is
served in ``echo`` mode (every chunk sent straight back — what the
load generator measures round trips against) or ``sink`` mode (bytes
counted and discarded).

``python -m repro.net serve`` wraps this class; see docs/RUNTIME.md
for the two-runtime architecture.
"""

from __future__ import annotations

import asyncio
from typing import Any

from ..core.errors import ConfigurationError
from ..obs import MetricsRegistry
from .clock import LoopClock
from .codec import codec_for_profile
from .endpoint import UDPEndpoint, open_endpoint

#: Accepted-connection handling modes.
MODES = ("echo", "sink")


class NetServer:
    """Serve one listening sublayered TCP stack on a UDP socket."""

    def __init__(
        self,
        tcp_port: int = 80,
        mode: str = "echo",
        profile: str = "tcp",
        config: Any | None = None,
        metrics: MetricsRegistry | None = None,
        tier: str = "metrics",
        name: str = "server",
    ):
        """Configure a server; :meth:`start` binds the socket.

        ``tcp_port`` is the *stack's* listening port (the DM subheader
        port clients connect to), independent of the UDP port the
        socket binds.  ``tier`` is the stack instrumentation tier —
        ``metrics`` keeps the :mod:`repro.obs` counters and latency
        histograms live at wire speed.
        """
        if mode not in MODES:
            raise ConfigurationError(
                f"unknown serve mode {mode!r}; choose from {MODES}"
            )
        self.tcp_port = tcp_port
        self.mode = mode
        self.profile = profile
        self.config = config
        self.name = name
        self.tier = tier
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.host: Any = None
        self.endpoint: UDPEndpoint | None = None
        self.accepted = 0
        self.closed = 0
        self.bytes_echoed = 0
        self.bytes_sunk = 0

    # ------------------------------------------------------------------
    async def start(
        self, bind_host: str = "127.0.0.1", udp_port: int = 0
    ) -> UDPEndpoint:
        """Build the stack, bind the UDP socket, and start listening.

        Returns the live endpoint; ``udp_port=0`` binds an ephemeral
        port (read it back from ``endpoint.local_address``).
        """
        from ..transport.sublayered.host import SublayeredTcpHost

        if self.profile != "tcp":
            raise ConfigurationError(
                f"NetServer hosts the 'tcp' profile; got {self.profile!r}"
            )
        clock = LoopClock(asyncio.get_running_loop())
        self.host = SublayeredTcpHost(
            self.name,
            clock,
            self.config,
            metrics=self.registry.scoped(f"net/{self.name}"),
            tier=self.tier,
        )
        self.host.on_accept = self._accepted
        self.endpoint = UDPEndpoint(
            self.host,
            codec_for_profile(self.profile),
            name=self.name,
            metrics=self.registry,
        )
        await open_endpoint(self.endpoint, local_addr=(bind_host, udp_port))
        self.host.listen(self.tcp_port)
        return self.endpoint

    def _accepted(self, sock: Any) -> None:
        self.accepted += 1

        def on_data(chunk: bytes) -> None:
            if self.mode == "echo":
                self.bytes_echoed += len(chunk)
                sock.send(chunk)
            else:
                self.bytes_sunk += len(chunk)

        def on_peer_close() -> None:
            # The client finished; close our half so both stacks quiesce.
            self.closed += 1
            sock.close()

        sock.on_data = on_data
        sock.on_peer_close = on_peer_close

    # ------------------------------------------------------------------
    async def run(self, duration: float | None = None) -> None:
        """Serve for ``duration`` seconds (``None``/0 = until cancelled)."""
        if duration:
            await asyncio.sleep(duration)
        else:
            await asyncio.Event().wait()

    def stats(self) -> dict[str, Any]:
        """Connection and byte counters plus the endpoint's, JSON-ready."""
        out: dict[str, Any] = {
            "mode": self.mode,
            "tcp_port": self.tcp_port,
            "accepted": self.accepted,
            "closed": self.closed,
            "bytes_echoed": self.bytes_echoed,
            "bytes_sunk": self.bytes_sunk,
        }
        if self.endpoint is not None:
            out["endpoint"] = self.endpoint.stats()
        return out

    def close(self) -> None:
        """Close the UDP socket."""
        if self.endpoint is not None:
            self.endpoint.close()
