"""Network-layer sublayers (Figs 3/4): neighbor determination, route
computation (distance-vector or link-state, swappable), forwarding."""

from .attach import PROTO_TCP, TransportAttachment, attach_transport
from .forwarding import ForwardingSublayer
from .neighbor import NeighborEntry, NeighborSublayer
from .packets import (
    Address,
    ControlPacket,
    DataPacket,
    DvUpdate,
    DV_INFINITY,
    Hello,
    IP_HEADER,
    Lsp,
    Packet,
)
from .router import Interface, Router
from .routing import ROUTING_ALGORITHMS, DistanceVector, LinkState, RouteComputation
from .topology import ManagedLink, Topology

__all__ = [
    "Address",
    "PROTO_TCP",
    "TransportAttachment",
    "attach_transport",
    "ControlPacket",
    "DV_INFINITY",
    "DataPacket",
    "DistanceVector",
    "DvUpdate",
    "ForwardingSublayer",
    "Hello",
    "IP_HEADER",
    "Interface",
    "LinkState",
    "Lsp",
    "ManagedLink",
    "NeighborEntry",
    "NeighborSublayer",
    "Packet",
    "ROUTING_ALGORITHMS",
    "RouteComputation",
    "Router",
    "Topology",
]
