"""Attaching transport hosts to routed networks.

The transport experiments mostly run over a single simulated link, but
the layers compose: a :class:`TransportAttachment` binds one transport
endpoint (sublayered or monolithic — anything with ``on_transmit`` /
``receive``) to a router, tunneling its wire units as the payload of
:class:`~repro.network.packets.DataPacket` datagrams to a fixed peer
address.  TCP then rides the Fig 3/4 sublayers end to end: hellos
discover neighbors, route computation builds FIBs, forwarding moves
the segments hop by hop — and a link failure mid-transfer stalls the
byte stream only until the routing sublayer reconverges, after which
RD's retransmissions repair the gap.

One attachment speaks to one peer address (the host-pair tunnel model:
transport connection identity stays (port, port), with the address
pair fixed per attachment).  Multiple attachments can share a router,
dispatched by the datagram's source address.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.errors import ConfigurationError
from .packets import Address, DataPacket
from .router import Router

#: Conventional protocol number for TCP payloads in datagrams.
PROTO_TCP = 6


class TransportAttachment:
    """Binds a transport host to a router for one peer address."""

    def __init__(
        self,
        host: Any,
        router: Router,
        peer: Address,
        proto: int = PROTO_TCP,
    ):
        self.host = host
        self.router = router
        self.peer = peer
        self.proto = proto
        self.sent = 0
        self.received = 0
        host.on_transmit = self._transmit
        _dispatcher_for(router).register(peer, proto, self._deliver)

    def _transmit(self, unit: Any, **meta: Any) -> None:
        self.sent += 1
        self.router.send_data(self.peer, unit, proto=self.proto)

    def _deliver(self, packet: DataPacket) -> None:
        self.received += 1
        self.host.receive(packet.payload)

    def __repr__(self) -> str:
        return (
            f"TransportAttachment({self.router.address} <-> {self.peer}, "
            f"proto={self.proto})"
        )


class _Dispatcher:
    """Per-router demux of delivered datagrams to attachments."""

    def __init__(self, router: Router):
        self.router = router
        self._handlers: dict[tuple[Address, int], Callable[[DataPacket], None]] = {}
        self._fallback = router.on_deliver
        router.on_deliver = self._dispatch

    def register(
        self, peer: Address, proto: int, handler: Callable[[DataPacket], None]
    ) -> None:
        key = (peer, proto)
        if key in self._handlers:
            raise ConfigurationError(
                f"router {self.router.address} already has an attachment "
                f"for peer {peer} proto {proto}"
            )
        self._handlers[key] = handler

    def _dispatch(self, packet: DataPacket) -> None:
        handler = self._handlers.get((packet.src, packet.header["proto"]))
        if handler is not None:
            handler(packet)
        elif self._fallback is not None:
            self._fallback(packet)


def _dispatcher_for(router: Router) -> _Dispatcher:
    dispatcher = getattr(router, "_transport_dispatcher", None)
    if dispatcher is None:
        dispatcher = _Dispatcher(router)
        router._transport_dispatcher = dispatcher  # type: ignore[attr-defined]
    return dispatcher


def attach_transport(
    host: Any, router: Router, peer: Address, proto: int = PROTO_TCP
) -> TransportAttachment:
    """Convenience wrapper: tunnel ``host``'s wire units to ``peer``."""
    return TransportAttachment(host, router, peer, proto)
