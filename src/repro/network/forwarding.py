"""Forwarding — the data-plane sublayer on top (Fig 3/4).

"The path of a data packet passes directly from forwarding to the next
hop Data Link.  However, the forwarding database is itself built using
routing."  The FIB here is exactly that database: route computation
pushes ``{destination: next_hop}`` maps in through
:meth:`ForwardingSublayer.install`, and the per-packet fast path reads
only the FIB — never the routing tables, never the neighbor state
(T3).  Next-hop-to-interface resolution is control information that
flows in from neighbor determination at install time, mirroring the
dashed control arrows of Fig 3 that bypass intermediate sublayers.
"""

from __future__ import annotations

from typing import Callable

from ..core.instrument import AccessLog, InstrumentedState
from ..core.metrics import MetricsSink, scoped
from .packets import Address, DataPacket

#: Metric aliases shared with the symbolic flow analyzer: the runtime
#: counter and the static drop kind carry the same name, so a
#: :class:`~repro.flow.reach.ReachResult` drop set and a
#: ``forwarding/<addr>/...`` counter are directly comparable.
TTL_EXPIRED = "ttl_expired"
NO_ROUTE = "no_route"


class ForwardingSublayer:
    """FIB lookup, TTL handling, local delivery."""

    def __init__(
        self,
        address: Address,
        send_on_interface: Callable[[int, DataPacket], None],
        resolve_interface: Callable[[Address], int | None],
        access_log: AccessLog | None = None,
        metrics: MetricsSink | None = None,
    ):
        self.address = address
        self._send = send_on_interface
        self._resolve_interface = resolve_interface
        # Scope our own names (the sim.link pattern): callers hand in the
        # raw sink and counters land at ``forwarding/<addr>/...``.
        self.metrics = scoped(metrics, f"forwarding/{address}")
        self.state = InstrumentedState(
            "forwarding",
            log=access_log,
            fib={},
            forwarded=0,
            delivered=0,
            dropped_no_route=0,
            dropped_ttl=0,
            dropped_no_interface=0,
        )
        self.on_deliver: Callable[[DataPacket], None] | None = None

    #: Drops that dual-count under the flow analyzer's drop-kind names.
    _ALIASES = {"dropped_ttl": TTL_EXPIRED, "dropped_no_route": NO_ROUTE}

    def _count(self, field: str) -> None:
        """State counter + metrics mirror (same pattern as Sublayer.count)."""
        setattr(self.state, field, getattr(self.state, field) + 1)
        self.metrics.inc(field)
        alias = self._ALIASES.get(field)
        if alias is not None:
            self.metrics.inc(alias)

    # ------------------------------------------------------------------
    def install(self, routes: dict[Address, Address]) -> None:
        """The narrow downward-facing interface from route computation."""
        self.state.fib = dict(routes)

    def fib(self) -> dict[Address, Address]:
        return dict(self.state.fib)

    # ------------------------------------------------------------------
    def forward(self, packet: DataPacket) -> None:
        """The per-packet fast path."""
        if packet.dst == self.address:
            self._count("delivered")
            if self.on_deliver is not None:
                self.on_deliver(packet)
            return
        next_hop = self.state.fib.get(packet.dst)
        if next_hop is None:
            self._count("dropped_no_route")
            return
        if packet.ttl <= 1:
            self._count("dropped_ttl")
            return
        interface = self._resolve_interface(next_hop)
        if interface is None:
            self._count("dropped_no_interface")
            return
        self._count("forwarded")
        self._send(interface, packet.decremented())

    def originate(self, packet: DataPacket) -> None:
        """Send a locally-generated packet (no TTL decrement at source)."""
        if packet.dst == self.address:
            self._count("delivered")
            if self.on_deliver is not None:
                self.on_deliver(packet)
            return
        next_hop = self.state.fib.get(packet.dst)
        if next_hop is None:
            self._count("dropped_no_route")
            return
        interface = self._resolve_interface(next_hop)
        if interface is None:
            self._count("dropped_no_interface")
            return
        self._count("forwarded")
        self._send(interface, packet)
