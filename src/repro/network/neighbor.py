"""Neighbor determination — the lowest network sublayer (Fig 4).

"Neighbor determination is the lowest sublayer because route
computation needs a list of neighbors that is determined by handshake
messages sent directly on the data link."

Each router interface periodically emits a :class:`Hello`; hearing a
hello binds the peer's address to that interface, and silence past the
dead interval expires the binding.  Route computation consumes the
result through one narrow interface — :meth:`NeighborTable.neighbors`
plus up/down callbacks — and never sees a hello packet itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.clock import Clock
from ..core.instrument import AccessLog, InstrumentedState
from .packets import Address, Hello


@dataclass
class NeighborEntry:
    address: Address
    interface: int
    last_heard: float
    cost: int = 1


class NeighborSublayer:
    """Per-router neighbor discovery and liveness tracking."""

    def __init__(
        self,
        address: Address,
        clock: Clock,
        send_on_interface: Callable[[int, Hello], None],
        interface_count: int,
        hello_interval: float = 1.0,
        dead_interval: float = 3.5,
        access_log: AccessLog | None = None,
    ):
        self.address = address
        self.clock = clock
        self._send = send_on_interface
        self.interface_count = interface_count
        self.hello_interval = hello_interval
        self.dead_interval = dead_interval
        self.state = InstrumentedState(
            "neighbor",
            log=access_log,
            entries={},        # address -> NeighborEntry
            hellos_sent=0,
            hellos_heard=0,
        )
        self.on_neighbor_up: Callable[[Address, int, int], None] | None = None
        self.on_neighbor_down: Callable[[Address], None] | None = None
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the hello/expiry duty cycle."""
        if self._started:
            return
        self._started = True
        self._tick()

    def _tick(self) -> None:
        for interface in range(self.interface_count):
            self.state.hellos_sent = self.state.hellos_sent + 1
            self._send(interface, Hello(src=self.address))
        self._expire()
        self.clock.call_later(self.hello_interval, self._tick)

    def _expire(self) -> None:
        now = self.clock.now()
        entries = dict(self.state.entries)
        expired = [
            addr
            for addr, entry in entries.items()
            if now - entry.last_heard > self.dead_interval
        ]
        for addr in expired:
            del entries[addr]
        if expired:
            self.state.entries = entries
            for addr in expired:
                if self.on_neighbor_down is not None:
                    self.on_neighbor_down(addr)

    # ------------------------------------------------------------------
    def on_hello(self, interface: int, hello: Hello) -> None:
        """A hello arrived on ``interface``."""
        self.state.hellos_heard = self.state.hellos_heard + 1
        entries = dict(self.state.entries)
        fresh = hello.src not in entries
        entries[hello.src] = NeighborEntry(
            address=hello.src,
            interface=interface,
            last_heard=self.clock.now(),
        )
        self.state.entries = entries
        if fresh and self.on_neighbor_up is not None:
            self.on_neighbor_up(hello.src, interface, 1)

    # ------------------------------------------------------------------
    # The narrow interface route computation consumes (T2).
    # ------------------------------------------------------------------
    def neighbors(self) -> dict[Address, int]:
        """Live neighbors as {address: cost}."""
        return {addr: e.cost for addr, e in self.state.entries.items()}

    def interface_for(self, neighbor: Address) -> int | None:
        entry = self.state.entries.get(neighbor)
        return entry.interface if entry is not None else None
