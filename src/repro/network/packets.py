"""Network-layer packet types.

Test T3 for the network layer is met "because the sublayers use
completely different packets (e.g., LSPs versus IP packets), not
merely different headers in the same packet" (Section 2.2).  We make
that literal: each sublayer has its own packet class —

* :class:`Hello` — neighbor determination only;
* :class:`DvUpdate` and :class:`Lsp` — route computation only;
* :class:`DataPacket` — the forwarding data plane only.

Routers dispatch on the packet's type, and the F3 benchmark checks
from traces that no sublayer ever touches another sublayer's packet
kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.header import Field, HeaderFormat

#: Addresses are small integers; 0 is reserved as "unassigned".
Address = int

#: Infinity for distance-vector (RIP's 16: counts-to-infinity bound).
DV_INFINITY = 16

IP_HEADER = HeaderFormat(
    "ip",
    [
        Field("src", 16),
        Field("dst", 16),
        Field("ttl", 8, default=32),
        Field("proto", 8),
        Field("ident", 16),
    ],
    owner="forwarding",
)


@dataclass
class Hello:
    """Neighbor-determination handshake, sent per-interface."""

    src: Address
    kind: str = field(default="hello", init=False)


@dataclass
class DvUpdate:
    """A distance-vector advertisement: the sender's distance table."""

    src: Address
    distances: dict[Address, int]
    kind: str = field(default="dv", init=False)


@dataclass
class Lsp:
    """A link-state packet: origin's current neighbor set, sequence-numbered."""

    origin: Address
    seq: int
    neighbors: dict[Address, int]  # neighbor -> cost
    kind: str = field(default="lsp", init=False)


@dataclass
class DataPacket:
    """A data-plane datagram (the "IP packet" of Fig 3)."""

    header: dict[str, int]
    payload: Any
    kind: str = field(default="data", init=False)

    @classmethod
    def make(
        cls,
        src: Address,
        dst: Address,
        payload: Any,
        ttl: int = 32,
        proto: int = 0,
        ident: int = 0,
    ) -> "DataPacket":
        return cls(
            header={
                "src": src, "dst": dst, "ttl": ttl, "proto": proto, "ident": ident
            },
            payload=payload,
        )

    @property
    def src(self) -> Address:
        return self.header["src"]

    @property
    def dst(self) -> Address:
        return self.header["dst"]

    @property
    def ttl(self) -> int:
        return self.header["ttl"]

    def decremented(self) -> "DataPacket":
        """A copy with TTL reduced by one."""
        new_header = dict(self.header)
        new_header["ttl"] = self.ttl - 1
        return DataPacket(header=new_header, payload=self.payload)

    def header_bits(self) -> int:
        return IP_HEADER.bit_width


ControlPacket = Hello | DvUpdate | Lsp
Packet = ControlPacket | DataPacket
