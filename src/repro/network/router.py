"""A router: the three network sublayers composed per Fig 4.

Information flows exactly along the figure's arrows:

* neighbor determination hears hellos and tells route computation
  about neighbor up/down through one narrow interface;
* route computation exchanges its own control packets (DV updates or
  LSPs — *different packets* from data, per T3) and pushes
  ``{dst: next_hop}`` into the forwarding database;
* forwarding moves data packets using only the FIB.

Every sublayer callback runs under
:func:`~repro.core.instrument.acting_as`, so the shared
:class:`~repro.core.instrument.AccessLog` shows which sublayer touched
which state — the evidence for the F3 litmus checks — and the three
narrow interfaces are recorded in an
:class:`~repro.core.interface.InterfaceLog`.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.clock import Clock
from ..core.instrument import AccessLog, acting_as
from ..core.interface import InterfaceCall, InterfaceLog
from ..core.metrics import scoped
from .forwarding import ForwardingSublayer
from .neighbor import NeighborSublayer
from .packets import Address, ControlPacket, DataPacket, Hello, Packet
from .routing.base import RouteComputation
from .routing.link_state import LinkState


class Interface:
    """One attachment point of a router to a link."""

    def __init__(self, index: int):
        self.index = index
        self.send: Callable[[Packet], None] | None = None  # wired by topology

    def transmit(self, packet: Packet) -> None:
        if self.send is not None:
            self.send(packet)


class Router:
    """One network node running the Fig 4 sublayers."""

    def __init__(
        self,
        address: Address,
        clock: Clock,
        routing_cls: type[RouteComputation] = LinkState,
        hello_interval: float = 1.0,
        dead_interval: float = 3.5,
        access_log: AccessLog | None = None,
        interface_log: InterfaceLog | None = None,
        metrics: Any | None = None,
        **routing_kwargs: Any,
    ):
        self.address = address
        self.clock = clock
        self.access_log = access_log if access_log is not None else AccessLog()
        self.metrics = metrics
        self.interface_log = (
            interface_log if interface_log is not None else InterfaceLog()
        )
        self.interfaces: list[Interface] = []
        self._routing_cls = routing_cls
        self._routing_kwargs = routing_kwargs

        self.neighbor = NeighborSublayer(
            address,
            clock,
            self._send_control_on_interface,
            interface_count=0,  # updated as interfaces attach
            hello_interval=hello_interval,
            dead_interval=dead_interval,
            access_log=self.access_log,
        )
        self.routing = routing_cls(
            address,
            clock,
            self._send_control_to_neighbor,
            access_log=self.access_log,
            metrics=scoped(metrics, f"router:{address}/routing"),
            **routing_kwargs,
        )
        self.forwarding = ForwardingSublayer(
            address,
            self._send_data_on_interface,
            self._resolve_interface,
            access_log=self.access_log,
            # Raw sink: the sublayer scopes itself as forwarding/<addr>/
            # (the sim.link pattern), so drop counters line up with the
            # flow analyzer's drop-kind names.
            metrics=metrics,
        )
        self._wire_interfaces_between_sublayers()
        self.on_deliver: Callable[[DataPacket], None] | None = None
        self.forwarding.on_deliver = self._deliver_local

    # ------------------------------------------------------------------
    # Narrow inter-sublayer interfaces (logged, actor-switched)
    # ------------------------------------------------------------------
    def _wire_interfaces_between_sublayers(self) -> None:
        def neighbor_up(addr: Address, interface: int, cost: int) -> None:
            self._log_call("neighbor-service", "neighbor_up", "neighbor", "routing", 3)
            with acting_as("routing"):
                self.routing.neighbor_up(addr, interface, cost)

        def neighbor_down(addr: Address) -> None:
            self._log_call("neighbor-service", "neighbor_down", "neighbor", "routing", 1)
            with acting_as("routing"):
                self.routing.neighbor_down(addr)

        def install(routes: dict[Address, Address]) -> None:
            self._log_call("routing-service", "install_routes", "routing", "forwarding", 1)
            with acting_as("forwarding"):
                self.forwarding.install(routes)

        self.neighbor.on_neighbor_up = neighbor_up
        self.neighbor.on_neighbor_down = neighbor_down
        self.routing.install_routes = install

    def _log_call(
        self, interface: str, primitive: str, caller: str, provider: str, args: int
    ) -> None:
        self.interface_log.record(
            InterfaceCall(interface, primitive, caller, provider, args)
        )

    # ------------------------------------------------------------------
    # Plumbing toward the links
    # ------------------------------------------------------------------
    def add_interface(self) -> Interface:
        interface = Interface(len(self.interfaces))
        self.interfaces.append(interface)
        self.neighbor.interface_count = len(self.interfaces)
        return interface

    def _send_control_on_interface(self, index: int, packet: ControlPacket) -> None:
        self.interfaces[index].transmit(packet)

    def _send_control_to_neighbor(
        self, neighbor: Address, packet: ControlPacket
    ) -> None:
        index = self._neighbor_interface_lookup("routing", neighbor)
        if index is not None:
            self.interfaces[index].transmit(packet)

    def _send_data_on_interface(self, index: int, packet: DataPacket) -> None:
        self.interfaces[index].transmit(packet)

    def _resolve_interface(self, next_hop: Address) -> int | None:
        # Control information flowing from neighbor determination to the
        # data plane at lookup time (the Fig 3 bypass arrows).  The
        # lookup is a *service call* on the neighbor sublayer — logged,
        # and executed as the neighbor sublayer — so T3 state ownership
        # holds even for this bypass.
        return self._neighbor_interface_lookup("forwarding", next_hop)

    def _neighbor_interface_lookup(self, caller: str, addr: Address) -> int | None:
        self._log_call("neighbor-service", "interface_for", caller, "neighbor", 1)
        with acting_as("neighbor"):
            return self.neighbor.interface_for(addr)

    def _deliver_local(self, packet: DataPacket) -> None:
        if self.on_deliver is not None:
            self.on_deliver(packet)

    # ------------------------------------------------------------------
    # Per-packet dispatch: each packet kind belongs to one sublayer (T3).
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, interface: int) -> None:
        if isinstance(packet, Hello):
            with acting_as("neighbor"):
                self.neighbor.on_hello(interface, packet)
        elif isinstance(packet, DataPacket):
            with acting_as("forwarding"):
                self.forwarding.forward(packet)
        elif packet.kind in self.routing.CONTROL_KINDS:
            sender = self._neighbor_on_interface(interface)
            if sender is None:
                return  # control from a not-yet-discovered neighbor
            with acting_as("routing"):
                self.routing.on_control(packet, from_neighbor=sender)

    def _neighbor_on_interface(self, interface: int) -> Address | None:
        with acting_as("neighbor"):
            for addr, entry in self.neighbor.state.snapshot()["entries"].items():
                if entry.interface == interface:
                    return addr
        return None

    # ------------------------------------------------------------------
    def start(self) -> None:
        with acting_as("neighbor"):
            self.neighbor.start()
        with acting_as("routing"):
            self.routing.start()

    def send_data(self, dst: Address, payload: Any, **header: Any) -> None:
        packet = DataPacket.make(self.address, dst, payload, **header)
        with acting_as("forwarding"):
            self.forwarding.originate(packet)

    def routes(self) -> dict[Address, Address]:
        return self.routing.routes()

    def __repr__(self) -> str:
        return (
            f"Router({self.address}, {self._routing_cls.__name__}, "
            f"{len(self.interfaces)} interfaces)"
        )
