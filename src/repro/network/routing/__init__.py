"""Route-computation sublayer: swappable algorithms behind one shape."""

from .base import RouteComputation
from .distance_vector import DistanceVector
from .link_state import LinkState

#: Registry for the F3 swap benchmark.
ROUTING_ALGORITHMS: dict[str, type[RouteComputation]] = {
    DistanceVector.name: DistanceVector,
    LinkState.name: LinkState,
}

__all__ = ["DistanceVector", "LinkState", "ROUTING_ALGORITHMS", "RouteComputation"]
