"""Route computation — the middle network sublayer (Fig 4).

"Route computation is below forwarding because route computation
builds the forwarding database", and "one can change say route
computation from distance vector to Link State without changing
forwarding" (Section 2.2).  :class:`RouteComputation` is the shape
both algorithms implement; its entire surface toward the rest of the
router is:

* downward: neighbor up/down events in, control packets out/in on the
  data link;
* upward: :attr:`install_routes` — push ``{destination: next_hop}``
  into the forwarding database.

The F3 swap benchmark replaces one subclass with the other and checks
the forwarding sublayer is bit-for-bit untouched.
"""

from __future__ import annotations

from typing import Callable

from ...core.clock import Clock
from ...core.instrument import AccessLog, InstrumentedState
from ...core.metrics import NULL_METRICS, MetricsSink
from ..packets import Address, ControlPacket


class RouteComputation:
    """Base class for routing algorithms."""

    #: Which control-packet kinds this algorithm consumes (T3 check).
    CONTROL_KINDS: tuple[str, ...] = ()
    name = "abstract"

    def __init__(
        self,
        address: Address,
        clock: Clock,
        send_to_neighbor: Callable[[Address, ControlPacket], None],
        access_log: AccessLog | None = None,
        metrics: MetricsSink | None = None,
    ):
        self.address = address
        self.clock = clock
        self._send_to_neighbor = send_to_neighbor
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.state = InstrumentedState(
            "routing", log=access_log, routes={}, updates_sent=0, updates_received=0
        )
        #: The narrow upward interface: forwarding registers a callback
        #: that receives the full {dst: next_hop} map on every change.
        self.install_routes: Callable[[dict[Address, Address]], None] | None = None
        self._started = False

    def _count(self, field: str) -> None:
        """State counter + metrics mirror (same pattern as Sublayer.count)."""
        setattr(self.state, field, getattr(self.state, field) + 1)
        self.metrics.inc(field)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic duties (advertisements, refreshes)."""
        self._started = True

    def neighbor_up(self, neighbor: Address, interface: int, cost: int) -> None:
        raise NotImplementedError

    def neighbor_down(self, neighbor: Address) -> None:
        raise NotImplementedError

    def on_control(self, packet: ControlPacket, from_neighbor: Address) -> None:
        """A control packet of one of our CONTROL_KINDS arrived."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def routes(self) -> dict[Address, Address]:
        """Current {destination: next_hop} (self excluded)."""
        return dict(self.state.routes)

    def _publish(self, routes: dict[Address, Address]) -> None:
        """Store and push routes up to forwarding (if changed)."""
        if routes == self.state.routes:
            return
        self.state.routes = routes
        if self.install_routes is not None:
            self.install_routes(dict(routes))
