"""Distance-vector route computation (RIP-style Bellman-Ford).

Each router periodically advertises its distance table to its
neighbors; receiving a table relaxes routes through the sender.
Split horizon with poisoned reverse bounds the classic count-to-
infinity pathology, and :data:`~repro.network.packets.DV_INFINITY`
(16, as in RIP) caps distances outright.
"""

from __future__ import annotations

from ..packets import Address, ControlPacket, DvUpdate, DV_INFINITY
from .base import RouteComputation


class DistanceVector(RouteComputation):
    """Bellman-Ford with periodic advertisements and poisoned reverse."""

    CONTROL_KINDS = ("dv",)
    name = "distance-vector"

    def __init__(self, *args, advertise_interval: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.advertise_interval = advertise_interval
        # distance table: dst -> (cost, next_hop); self at cost 0
        self.state.table = {self.address: (0, self.address)}
        self.state.neighbor_costs = {}

    def start(self) -> None:
        if self._started:
            return
        super().start()
        self._tick()

    def _tick(self) -> None:
        self._advertise()
        self.clock.call_later(self.advertise_interval, self._tick)

    # ------------------------------------------------------------------
    def neighbor_up(self, neighbor: Address, interface: int, cost: int) -> None:
        costs = dict(self.state.neighbor_costs)
        costs[neighbor] = cost
        self.state.neighbor_costs = costs
        table = dict(self.state.table)
        best = table.get(neighbor, (DV_INFINITY, neighbor))
        if cost < best[0]:
            table[neighbor] = (cost, neighbor)
            self.state.table = table
        self._recompute_routes()
        self._advertise()

    def neighbor_down(self, neighbor: Address) -> None:
        costs = dict(self.state.neighbor_costs)
        costs.pop(neighbor, None)
        self.state.neighbor_costs = costs
        # Every route through the dead neighbor becomes unreachable.
        table = dict(self.state.table)
        for dst, (cost, hop) in list(table.items()):
            if hop == neighbor and dst != self.address:
                table[dst] = (DV_INFINITY, hop)
        self.state.table = table
        self._recompute_routes()
        self._advertise()

    # ------------------------------------------------------------------
    def on_control(self, packet: ControlPacket, from_neighbor: Address) -> None:
        if not isinstance(packet, DvUpdate):
            return
        self._count("updates_received")
        link_cost = self.state.neighbor_costs.get(from_neighbor)
        if link_cost is None:
            return  # not (yet) a live neighbor
        table = dict(self.state.table)
        changed = False
        for dst, their_cost in packet.distances.items():
            if dst == self.address:
                continue
            through = min(DV_INFINITY, their_cost + link_cost)
            current_cost, current_hop = table.get(dst, (DV_INFINITY, from_neighbor))
            if through < current_cost or (
                current_hop == from_neighbor and through != current_cost
            ):
                table[dst] = (through, from_neighbor)
                changed = True
        if changed:
            self.state.table = table
            self._recompute_routes()
            self._advertise()

    # ------------------------------------------------------------------
    def _advertise(self) -> None:
        table = self.state.table
        for neighbor in self.state.neighbor_costs:
            # Split horizon with poisoned reverse: routes learned via
            # this neighbor are advertised back as unreachable.
            distances = {
                dst: (DV_INFINITY if hop == neighbor and dst != self.address
                      else cost)
                for dst, (cost, hop) in table.items()
            }
            self._count("updates_sent")
            self._send_to_neighbor(
                neighbor, DvUpdate(src=self.address, distances=distances)
            )

    def _recompute_routes(self) -> None:
        routes = {
            dst: hop
            for dst, (cost, hop) in self.state.table.items()
            if dst != self.address and cost < DV_INFINITY
        }
        self._publish(routes)
