"""Link-state route computation (OSPF-style flooding + Dijkstra).

Each router floods a sequence-numbered :class:`~repro.network.packets
.Lsp` describing its neighbor set whenever that set changes (plus a
periodic refresh); every router runs Dijkstra over its link-state
database.  Because an LSP claims only *one direction* of a link, the
shortest-path graph uses only bidirectionally-confirmed edges — the
standard two-way connectivity check.
"""

from __future__ import annotations

import heapq

from ..packets import Address, ControlPacket, Lsp
from .base import RouteComputation


class LinkState(RouteComputation):
    """Flooding LSPs plus Dijkstra over the resulting database."""

    CONTROL_KINDS = ("lsp",)
    name = "link-state"

    def __init__(self, *args, refresh_interval: float = 5.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.refresh_interval = refresh_interval
        self.state.neighbor_costs = {}
        self.state.lsdb = {}   # origin -> Lsp
        self.state.seq = 0

    def start(self) -> None:
        if self._started:
            return
        super().start()
        self._tick()

    def _tick(self) -> None:
        self._originate()
        self.clock.call_later(self.refresh_interval, self._tick)

    # ------------------------------------------------------------------
    def neighbor_up(self, neighbor: Address, interface: int, cost: int) -> None:
        costs = dict(self.state.neighbor_costs)
        costs[neighbor] = cost
        self.state.neighbor_costs = costs
        self._originate()

    def neighbor_down(self, neighbor: Address) -> None:
        costs = dict(self.state.neighbor_costs)
        costs.pop(neighbor, None)
        self.state.neighbor_costs = costs
        self._originate()

    def _originate(self) -> None:
        self.state.seq = self.state.seq + 1
        lsp = Lsp(
            origin=self.address,
            seq=self.state.seq,
            neighbors=dict(self.state.neighbor_costs),
        )
        self._accept(lsp, flood_from=None)

    # ------------------------------------------------------------------
    def on_control(self, packet: ControlPacket, from_neighbor: Address) -> None:
        if not isinstance(packet, Lsp):
            return
        self._count("updates_received")
        self._accept(packet, flood_from=from_neighbor)

    def _accept(self, lsp: Lsp, flood_from: Address | None) -> None:
        lsdb = dict(self.state.lsdb)
        existing = lsdb.get(lsp.origin)
        if existing is not None and existing.seq >= lsp.seq:
            return  # stale or duplicate: do not re-flood
        lsdb[lsp.origin] = lsp
        self.state.lsdb = lsdb
        for neighbor in self.state.neighbor_costs:
            if neighbor == flood_from:
                continue
            self._count("updates_sent")
            self._send_to_neighbor(neighbor, lsp)
        self._recompute_routes()

    # ------------------------------------------------------------------
    def _recompute_routes(self) -> None:
        graph = self._two_way_graph()
        distances: dict[Address, int] = {self.address: 0}
        first_hop: dict[Address, Address] = {}
        heap: list[tuple[int, Address, Address | None]] = [(0, self.address, None)]
        visited: set[Address] = set()
        while heap:
            dist, node, hop = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if hop is not None:
                first_hop[node] = hop
            for peer, cost in graph.get(node, {}).items():
                if peer in visited:
                    continue
                candidate = dist + cost
                if candidate < distances.get(peer, float("inf")):
                    distances[peer] = candidate
                    next_hop = peer if node == self.address else hop
                    heapq.heappush(heap, (candidate, peer, next_hop))
        routes = {dst: hop for dst, hop in first_hop.items()}
        self._publish(routes)

    def _two_way_graph(self) -> dict[Address, dict[Address, int]]:
        """Edges confirmed by both endpoints' LSPs."""
        lsdb = self.state.lsdb
        graph: dict[Address, dict[Address, int]] = {}
        for origin, lsp in lsdb.items():
            for peer, cost in lsp.neighbors.items():
                reverse = lsdb.get(peer)
                if reverse is not None and origin in reverse.neighbors:
                    graph.setdefault(origin, {})[peer] = cost
        return graph
