"""Topology assembly and convergence measurement for routed networks.

Builds routers, joins them with impairable simulated links, injects
failures/repairs, and checks route correctness against an independent
Dijkstra oracle over the *currently-alive* topology — which is how the
F3 benchmark measures convergence time after a failure.
"""

from __future__ import annotations

import heapq
from typing import Any

from ..core.errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.link import Link, LinkConfig
from ..sim.rng import RngFactory
from .packets import Address, DataPacket
from .router import Router
from .routing.base import RouteComputation
from .routing.link_state import LinkState


class ManagedLink:
    """A bidirectional router-to-router link that can fail and recover."""

    def __init__(
        self,
        sim: Simulator,
        a: Router,
        b: Router,
        config: LinkConfig,
        rng: RngFactory,
    ):
        self.a, self.b = a, b
        self.alive = True
        # One named stream per direction (the repo-wide rng discipline):
        # the labels are pure functions of the endpoints, so adding or
        # removing any other link never perturbs this one's draws.
        self.forward = Link(
            sim,
            config,
            rng.stream(f"link:{a.address}->{b.address}"),
            f"{a.address}->{b.address}",
        )
        self.reverse = Link(
            sim,
            config,
            rng.stream(f"link:{b.address}->{a.address}"),
            f"{b.address}->{a.address}",
        )
        ifa = a.add_interface()
        ifb = b.add_interface()
        ifa.send = lambda pkt: self.alive and self.forward.send(pkt)
        ifb.send = lambda pkt: self.alive and self.reverse.send(pkt)
        self.forward.connect(lambda pkt, **m: b.receive(pkt, ifb.index))
        self.reverse.connect(lambda pkt, **m: a.receive(pkt, ifa.index))

    def fail(self) -> None:
        self.alive = False

    def restore(self) -> None:
        self.alive = True


class Topology:
    """A collection of routers plus the links joining them."""

    def __init__(
        self,
        sim: Simulator,
        routing_cls: type[RouteComputation] = LinkState,
        link_config: LinkConfig | None = None,
        seed: int = 0,
        **router_kwargs: Any,
    ):
        self.sim = sim
        self.routing_cls = routing_cls
        self.link_config = link_config or LinkConfig(delay=0.005)
        self.seed = seed
        self.rng = RngFactory(seed)
        self.routers: dict[Address, Router] = {}
        self.links: dict[tuple[Address, Address], ManagedLink] = {}
        self.delivered: list[DataPacket] = []
        self._router_kwargs = router_kwargs

    # ------------------------------------------------------------------
    def add_router(self, address: Address) -> Router:
        if address in self.routers:
            raise ConfigurationError(f"duplicate router address {address}")
        router = Router(
            address,
            self.sim.clock(),
            routing_cls=self.routing_cls,
            **self._router_kwargs,
        )
        router.on_deliver = self.delivered.append
        self.routers[address] = router
        return router

    def connect(self, a: Address, b: Address) -> ManagedLink:
        key = (min(a, b), max(a, b))
        if key in self.links:
            raise ConfigurationError(f"link {key} already exists")
        link = ManagedLink(
            self.sim,
            self.routers[a],
            self.routers[b],
            self.link_config,
            rng=self.rng,
        )
        self.links[key] = link
        return link

    @classmethod
    def build(
        cls,
        sim: Simulator,
        edges: list[tuple[Address, Address]],
        **kwargs: Any,
    ) -> "Topology":
        topo = cls(sim, **kwargs)
        for a, b in edges:
            for address in (a, b):
                if address not in topo.routers:
                    topo.add_router(address)
            topo.connect(a, b)
        return topo

    # ------------------------------------------------------------------
    def start(self) -> None:
        for router in self.routers.values():
            router.start()

    def fail_link(self, a: Address, b: Address) -> None:
        self.links[(min(a, b), max(a, b))].fail()

    def restore_link(self, a: Address, b: Address) -> None:
        self.links[(min(a, b), max(a, b))].restore()

    # ------------------------------------------------------------------
    # Oracle: shortest-path first hops over the live topology.
    # ------------------------------------------------------------------
    def alive_edges(self) -> list[tuple[Address, Address]]:
        return [key for key, link in self.links.items() if link.alive]

    def _adjacency(self) -> dict[Address, set[Address]]:
        adj: dict[Address, set[Address]] = {a: set() for a in self.routers}
        for a, b in self.alive_edges():
            adj[a].add(b)
            adj[b].add(a)
        return adj

    def oracle_distances(self, source: Address) -> dict[Address, int]:
        adj = self._adjacency()
        dist = {source: 0}
        heap = [(0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for peer in adj[node]:
                if d + 1 < dist.get(peer, float("inf")):
                    dist[peer] = d + 1
                    heapq.heappush(heap, (d + 1, peer))
        return dist

    def routes_correct(self, source: Address) -> bool:
        """Does ``source``'s FIB reach every reachable node along
        shortest paths?  Checked hop-by-hop against the oracle."""
        oracle = self.oracle_distances(source)
        reachable = {a for a, d in oracle.items() if a != source}
        router = self.routers[source]
        fib = router.forwarding.fib()
        for dst in reachable:
            hop = fib.get(dst)
            if hop is None:
                return False
            hop_oracle = self.oracle_distances(hop)
            if hop_oracle.get(dst, float("inf")) != oracle[dst] - 1:
                return False
        # No routes to unreachable destinations.
        for dst in fib:
            if dst not in reachable:
                return False
        return True

    def converged(self) -> bool:
        return all(self.routes_correct(a) for a in self.routers)

    def converge(
        self,
        timeout: float = 60.0,
        check_interval: float = 0.25,
    ) -> float | None:
        """Run until converged; return the virtual time, or None."""
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            self.sim.run(until=min(self.sim.now + check_interval, deadline))
            if self.converged():
                return self.sim.now
        return None

    # ------------------------------------------------------------------
    # Export for static analysis (repro.flow reads this; the dependency
    # arrow points downward — network never imports the analyzer).
    # ------------------------------------------------------------------
    def fib_snapshots(self) -> dict[Address, dict[Address, Address]]:
        """The installed FIB of every router, as plain dicts."""
        return {
            address: router.forwarding.fib()
            for address, router in self.routers.items()
        }

    def flow_spec(
        self,
        name: str = "topology",
        zones: list[dict[str, Any]] | None = None,
        tenants: list[dict[str, Any]] | None = None,
        ttl: int | None = None,
    ) -> dict[str, Any]:
        """This topology's *installed* forwarding state in the declarative
        flow-spec shape (see ``repro.flow.spec.FlowSpec.from_dict``).

        Live edges only: a failed link is absent, so a FIB entry still
        pointing across it shows up statically as an unresolvable next
        hop.  Zones/tenants are annotations the caller supplies; the
        data plane does not know about them.
        """
        document: dict[str, Any] = {
            "name": name,
            "nodes": sorted(self.routers),
            "edges": [list(edge) for edge in sorted(self.alive_edges())],
            "fibs": {
                str(address): {str(dst): hop for dst, hop in fib.items()}
                for address, fib in sorted(self.fib_snapshots().items())
            },
            "zones": zones or [],
            "tenants": tenants or [],
        }
        if ttl is not None:
            document["ttl"] = ttl
        return document

    # ------------------------------------------------------------------
    def send_data(self, src: Address, dst: Address, payload: Any) -> None:
        self.routers[src].send_data(dst, payload)
