"""repro.obs — the unified observability layer.

The paper's pitch is that sublayering makes cross-layer structure
*legible*; this package is the instrument that shows it.  It unifies
the repository's three windows into a running stack (interface logs,
access logs, ad-hoc counters) behind four pieces:

* :class:`SpanTracer` — a causal span around every sublayer crossing
  of an attached :class:`~repro.core.stack.Stack`, answering "what
  happened to this one PDU, and where did the time go?";
* :class:`MetricsRegistry` — namespaced counters/gauges/histograms
  that sublayers reach through the narrow
  :class:`~repro.core.metrics.MetricsSink` surface;
* :class:`CallbackProfiler` — per-actor wall-clock cost of simulator
  callbacks, for finding hot sublayers before optimizing;
* exporters — JSON-lines, Chrome trace-event JSON (Perfetto-loadable),
  and text summaries, plus the ``python -m repro.obs`` CLI.

Layering: ``obs`` sits *outside* the protocol layer DAG.  It may
observe (import) every layer; no protocol layer may import it — the
static checker (:mod:`repro.staticcheck`) enforces this, the same way
it keeps forwarding out of routing's state.
"""

from .export import (
    ExportError,
    load_jsonl,
    load_jsonl_with_meta,
    merge_jsonl,
    spans_to_jsonl,
    summarize,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import MetricsRegistry
from .profile import UNATTRIBUTED, CallbackProfiler
from .span import SPAN_CATEGORY, SpanTracer, pdu_id, pdu_label

__all__ = [
    "CallbackProfiler",
    "ExportError",
    "MetricsRegistry",
    "SPAN_CATEGORY",
    "SpanTracer",
    "UNATTRIBUTED",
    "load_jsonl",
    "merge_jsonl",
    "load_jsonl_with_meta",
    "pdu_id",
    "pdu_label",
    "spans_to_jsonl",
    "summarize",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
