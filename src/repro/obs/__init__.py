"""repro.obs — the unified observability layer.

The paper's pitch is that sublayering makes cross-layer structure
*legible*; this package is the instrument that shows it.  It unifies
the repository's three windows into a running stack (interface logs,
access logs, ad-hoc counters) behind four pieces:

* :class:`SpanTracer` — a causal span around every sublayer crossing
  of an attached :class:`~repro.core.stack.Stack`, answering "what
  happened to this one PDU, and where did the time go?"; head-sampled
  with tail retention (:mod:`repro.obs.sample`) when always-on tracing
  would cost too much;
* :class:`MetricsRegistry` — namespaced counters/gauges/histograms
  that sublayers reach through the narrow
  :class:`~repro.core.metrics.MetricsSink` surface, including the
  mergeable log-bucket :class:`Histogram` behind ``observe_hist``
  (latency distributions: ARQ RTT, handshake time, queue residency);
* :class:`CallbackProfiler` — per-actor wall-clock cost of simulator
  callbacks, for finding hot sublayers before optimizing;
* :class:`FlightRecorder` — bounded always-on capture (span ring +
  metric checkpoints) dumped as a post-mortem bundle when a fault
  campaign goes red;
* exporters and analysis — JSON-lines, Chrome trace-event JSON
  (Perfetto-loadable), text summaries, critical-path / self-time /
  flamegraph analysis (:mod:`repro.obs.analyze`), plus the
  ``python -m repro.obs`` CLI.

Layering: ``obs`` sits *outside* the protocol layer DAG.  It may
observe (import) every layer; no protocol layer may import it — the
static checker (:mod:`repro.staticcheck`) enforces this, the same way
it keeps forwarding out of routing's state.
"""

from .analyze import (
    breakdown,
    critical_path,
    diff_breakdowns,
    folded_stacks,
    self_times,
)
from .export import (
    ExportError,
    load_jsonl,
    load_jsonl_with_meta,
    merge_jsonl,
    spans_to_jsonl,
    summarize,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .hist import Histogram
from .metrics import MetricsRegistry
from .profile import UNATTRIBUTED, CallbackProfiler
from .recorder import FlightRecorder
from .sample import default_sample_rng, watch_counters
from .span import SPAN_CATEGORY, SpanTracer, pdu_id, pdu_label

__all__ = [
    "CallbackProfiler",
    "ExportError",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "SPAN_CATEGORY",
    "SpanTracer",
    "UNATTRIBUTED",
    "breakdown",
    "critical_path",
    "default_sample_rng",
    "diff_breakdowns",
    "folded_stacks",
    "load_jsonl",
    "load_jsonl_with_meta",
    "merge_jsonl",
    "pdu_id",
    "pdu_label",
    "self_times",
    "spans_to_jsonl",
    "summarize",
    "to_chrome_trace",
    "validate_chrome_trace",
    "watch_counters",
    "write_chrome_trace",
]
