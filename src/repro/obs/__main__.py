"""CLI for trace files: ``python -m repro.obs <command>``.

Commands:

* ``summarize FILE.jsonl`` — per-(stack, actor) hop and wall-time table;
* ``convert FILE.jsonl -o OUT.json [--clock wall|virtual]`` — produce
  Chrome trace-event JSON loadable in Perfetto / chrome://tracing;
* ``validate FILE.json`` — schema-check a Chrome trace-event file
  (exit status 1 on problems), used by CI on exporter output;
* ``analyze FILE.jsonl`` — critical path, per-sublayer self-time
  breakdown with latency quantiles, flamegraph folded-stack output
  (``--folded``), and regression-sorted diffs of two runs (``--diff``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analyze import folded_stacks, render_diff, render_report
from .export import (
    ExportError,
    load_jsonl_with_meta,
    summarize,
    validate_chrome_trace,
    write_chrome_trace,
)


def _cmd_summarize(args: argparse.Namespace) -> int:
    spans, meta = load_jsonl_with_meta(args.file)
    print(
        summarize(
            spans, dropped=int(meta.get("dropped_events", 0)), meta=meta
        )
    )
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    spans, _ = load_jsonl_with_meta(args.file)
    trace = write_chrome_trace(spans, args.output, clock=args.clock)
    print(
        f"wrote {len(trace['traceEvents'])} trace events "
        f"({len(spans)} spans, {args.clock} clock) to {args.output}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        with open(args.file, "r", encoding="utf-8") as fp:
            obj = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.file}: unreadable: {exc}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(obj)
    if problems:
        for problem in problems:
            print(f"{args.file}: {problem}", file=sys.stderr)
        return 1
    count = len(obj["traceEvents"])
    print(f"{args.file}: valid Chrome trace ({count} events)")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    spans, meta = load_jsonl_with_meta(args.file)
    if args.diff is not None:
        baseline, _ = load_jsonl_with_meta(args.diff)
        print(render_diff(baseline, spans, clock=args.clock, top=args.top))
    else:
        if meta.get("sample_rate") is not None:
            print(
                f"note: trace sampled at rate {meta['sample_rate']:g} "
                f"({meta.get('sampled_out', 0)} spans sampled out)"
            )
        print(render_report(spans, clock=args.clock, top=args.top))
    if args.folded is not None:
        lines = folded_stacks(spans, clock=args.clock)
        Path(args.folded).write_text(
            "".join(line + "\n" for line in lines), encoding="utf-8"
        )
        print(f"wrote {len(lines)} folded stacks to {args.folded}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, convert, and validate span trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-actor hop/time table")
    p_sum.add_argument("file", help="span JSON-lines file")
    p_sum.set_defaults(fn=_cmd_summarize)

    p_conv = sub.add_parser("convert", help="emit Chrome trace-event JSON")
    p_conv.add_argument("file", help="span JSON-lines file")
    p_conv.add_argument("-o", "--output", required=True, help="output .json")
    p_conv.add_argument(
        "--clock",
        choices=("wall", "virtual"),
        default="wall",
        help="timestamp source: host wall clock or simulated time",
    )
    p_conv.set_defaults(fn=_cmd_convert)

    p_val = sub.add_parser("validate", help="schema-check a Chrome trace")
    p_val.add_argument("file", help="Chrome trace-event .json file")
    p_val.set_defaults(fn=_cmd_validate)

    p_an = sub.add_parser(
        "analyze", help="critical path + per-sublayer latency breakdown"
    )
    p_an.add_argument("file", help="span JSON-lines file")
    p_an.add_argument(
        "--clock",
        choices=("wall", "virtual"),
        default="wall",
        help="timestamp source: host wall clock or simulated time",
    )
    p_an.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows to show in breakdown/diff tables (default: 10)",
    )
    p_an.add_argument(
        "--folded",
        metavar="OUT.folded",
        help="also write flamegraph folded-stack lines here",
    )
    p_an.add_argument(
        "--diff",
        metavar="BASELINE.jsonl",
        help="diff against a baseline trace: per-sublayer self-time "
        "deltas, regressions first",
    )
    p_an.set_defaults(fn=_cmd_analyze)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ExportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
