"""CLI for trace files: ``python -m repro.obs <command>``.

Commands:

* ``summarize FILE.jsonl`` — per-(stack, actor) hop and wall-time table;
* ``convert FILE.jsonl -o OUT.json [--clock wall|virtual]`` — produce
  Chrome trace-event JSON loadable in Perfetto / chrome://tracing;
* ``validate FILE.json`` — schema-check a Chrome trace-event file
  (exit status 1 on problems), used by CI on exporter output.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import (
    ExportError,
    load_jsonl_with_meta,
    summarize,
    validate_chrome_trace,
    write_chrome_trace,
)


def _cmd_summarize(args: argparse.Namespace) -> int:
    spans, meta = load_jsonl_with_meta(args.file)
    print(summarize(spans, dropped=int(meta.get("dropped_events", 0))))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    spans, _ = load_jsonl_with_meta(args.file)
    trace = write_chrome_trace(spans, args.output, clock=args.clock)
    print(
        f"wrote {len(trace['traceEvents'])} trace events "
        f"({len(spans)} spans, {args.clock} clock) to {args.output}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        with open(args.file, "r", encoding="utf-8") as fp:
            obj = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.file}: unreadable: {exc}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(obj)
    if problems:
        for problem in problems:
            print(f"{args.file}: {problem}", file=sys.stderr)
        return 1
    count = len(obj["traceEvents"])
    print(f"{args.file}: valid Chrome trace ({count} events)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, convert, and validate span trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-actor hop/time table")
    p_sum.add_argument("file", help="span JSON-lines file")
    p_sum.set_defaults(fn=_cmd_summarize)

    p_conv = sub.add_parser("convert", help="emit Chrome trace-event JSON")
    p_conv.add_argument("file", help="span JSON-lines file")
    p_conv.add_argument("-o", "--output", required=True, help="output .json")
    p_conv.add_argument(
        "--clock",
        choices=("wall", "virtual"),
        default="wall",
        help="timestamp source: host wall clock or simulated time",
    )
    p_conv.set_defaults(fn=_cmd_convert)

    p_val = sub.add_parser("validate", help="schema-check a Chrome trace")
    p_val.add_argument("file", help="Chrome trace-event .json file")
    p_val.set_defaults(fn=_cmd_validate)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ExportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
