"""Trace analysis: critical paths, self-time breakdowns, flamegraphs.

A span trace says what happened; this module says where the time went.
All functions work on the plain span dicts produced by
:class:`~repro.obs.span.SpanTracer` (or loaded from its JSONL files)
and on either clock — ``wall`` (host cost: what a profiler wants) or
``virtual`` (simulated latency: what protocol forensics wants):

* :func:`self_times` — each span's duration minus its children's, the
  time a crossing spent *in* its target sublayer rather than below it;
* :func:`critical_path` — the chain of maximum-duration spans from the
  heaviest root down, i.e. the single path a latency fix must touch;
* :func:`breakdown` — per-(stack, sublayer) totals with p50/p90/p99
  self-time quantiles from the same log-bucket
  :class:`~repro.obs.hist.Histogram` the metrics registry uses;
* :func:`folded_stacks` — ``caller;callee;... value`` lines, the input
  format of every flamegraph renderer since Gregg's original scripts;
* :func:`diff_breakdowns` — per-sublayer deltas of two runs, sorted
  regressions-first, for "what got slower since the baseline?".

The ``python -m repro.obs analyze`` subcommand wraps these for bundle
and trace files.
"""

from __future__ import annotations

from typing import Any, Iterable

from .export import CLOCKS, ExportError
from .hist import Histogram

#: Span count guard for the O(n) tree walks below.
_MAX_DEPTH = 10_000


def span_duration(span: dict[str, Any], clock: str = "wall") -> float:
    """One span's duration in seconds on the chosen clock."""
    if clock == "wall":
        return span["w1"] - span["w0"]
    return span["t1"] - span["t0"]


def _check_clock(clock: str) -> None:
    if clock not in CLOCKS:
        raise ExportError(f"clock must be one of {CLOCKS}, got {clock!r}")


def build_index(
    spans: Iterable[dict[str, Any]],
) -> tuple[dict[int, dict[str, Any]], dict[int | None, list[dict[str, Any]]]]:
    """Index spans: ``(sid -> span, parent sid -> children)``.

    Children whose parent is missing from the trace (sampled out or
    ring-dropped) are treated as roots — an analysis must not silently
    lose their subtree's time.
    """
    by_sid: dict[int, dict[str, Any]] = {}
    children: dict[int | None, list[dict[str, Any]]] = {}
    for span in spans:
        by_sid[span["sid"]] = span
    for span in by_sid.values():
        parent = span.get("parent")
        if parent is not None and parent not in by_sid:
            parent = None
        children.setdefault(parent, []).append(span)
    return by_sid, children


def self_times(
    spans: Iterable[dict[str, Any]], clock: str = "wall"
) -> dict[int, float]:
    """Each span's self time: its duration minus its children's.

    Because hops are synchronous, a span's children run entirely
    inside it; what remains after subtracting them is the time its
    target sublayer itself spent on the crossing.  Clamped at zero —
    clock granularity can make a child appear longer than its parent.
    """
    _check_clock(clock)
    by_sid, children = build_index(spans)
    out: dict[int, float] = {}
    for sid, span in by_sid.items():
        inner = sum(
            span_duration(child, clock) for child in children.get(sid, ())
        )
        out[sid] = max(0.0, span_duration(span, clock) - inner)
    return out


def critical_path(
    spans: Iterable[dict[str, Any]], clock: str = "wall"
) -> list[dict[str, Any]]:
    """The max-duration chain: heaviest root, then heaviest child, down.

    This is the path a latency optimisation must shorten — any span off
    it is hidden under one that is on it.  Ties break deterministically
    by span id.
    """
    _check_clock(clock)
    _, children = build_index(spans)
    roots = children.get(None, [])
    if not roots:
        return []

    def weight(span: dict[str, Any]) -> tuple[float, int]:
        # Negative sid: on equal duration prefer the *earlier* span.
        return (span_duration(span, clock), -span["sid"])

    path: list[dict[str, Any]] = []
    node = max(roots, key=weight)
    for _ in range(_MAX_DEPTH):
        path.append(node)
        kids = children.get(node["sid"])
        if not kids:
            break
        node = max(kids, key=weight)
    return path


def breakdown(
    spans: Iterable[dict[str, Any]], clock: str = "wall"
) -> list[dict[str, Any]]:
    """Per-(stack, sublayer) latency rows, heaviest self-time first.

    Each row: ``stack``, ``actor``, ``hops``, ``total_s`` (sum of span
    durations — double-counts nesting, useful as "time under this
    sublayer"), ``self_s`` (exclusive), and ``p50_s``/``p90_s``/
    ``p99_s``/``max_s`` quantiles of per-crossing self time.
    """
    _check_clock(clock)
    spans = list(spans)
    selfs = self_times(spans, clock)
    rows: dict[tuple[str, str], dict[str, Any]] = {}
    hists: dict[tuple[str, str], Histogram] = {}
    for span in spans:
        key = (span["stack"], span["actor"])
        row = rows.setdefault(
            key,
            {
                "stack": key[0],
                "actor": key[1],
                "hops": 0,
                "total_s": 0.0,
                "self_s": 0.0,
            },
        )
        row["hops"] += 1
        row["total_s"] += span_duration(span, clock)
        row["self_s"] += selfs[span["sid"]]
        hists.setdefault(key, Histogram()).observe(selfs[span["sid"]])
    for key, row in rows.items():
        hist = hists[key]
        row["p50_s"] = hist.quantile(0.5)
        row["p90_s"] = hist.quantile(0.9)
        row["p99_s"] = hist.quantile(0.99)
        row["max_s"] = hist.maximum
    return sorted(
        rows.values(), key=lambda r: (-r["self_s"], r["stack"], r["actor"])
    )


def folded_stacks(
    spans: Iterable[dict[str, Any]], clock: str = "wall"
) -> list[str]:
    """Flamegraph-folded lines: ``stack:actor;...;stack:actor N``.

    ``N`` is aggregated self time in integer microseconds; frames are
    root-to-leaf ancestry, each named ``stack:actor``.  Feed the lines
    to any ``flamegraph.pl``-compatible renderer.  Lines are sorted
    for deterministic output; zero-valued paths are kept so the shape
    of the trace survives even when a clock under-resolves it.
    """
    _check_clock(clock)
    spans = list(spans)
    by_sid, _ = build_index(spans)
    selfs = self_times(spans, clock)
    folded: dict[str, int] = {}
    for span in spans:
        frames = []
        node: dict[str, Any] | None = span
        for _ in range(_MAX_DEPTH):
            if node is None:
                break
            frames.append(f"{node['stack']}:{node['actor']}")
            parent = node.get("parent")
            node = by_sid.get(parent) if parent is not None else None
        path = ";".join(reversed(frames))
        folded[path] = folded.get(path, 0) + round(selfs[span["sid"]] * 1e6)
    return [f"{path} {value}" for path, value in sorted(folded.items())]


def diff_breakdowns(
    baseline: Iterable[dict[str, Any]],
    current: Iterable[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Per-sublayer self-time deltas between two breakdowns.

    Rows carry both sides' ``self_s``/``hops`` plus ``delta_s`` and are
    sorted biggest regression first (new sublayers count fully, removed
    ones negatively), so the top of the table answers "what got slower".
    """
    base = {(r["stack"], r["actor"]): r for r in baseline}
    cur = {(r["stack"], r["actor"]): r for r in current}
    out: list[dict[str, Any]] = []
    for key in sorted(set(base) | set(cur)):
        b = base.get(key)
        c = cur.get(key)
        b_self = b["self_s"] if b else 0.0
        c_self = c["self_s"] if c else 0.0
        out.append(
            {
                "stack": key[0],
                "actor": key[1],
                "base_self_s": b_self,
                "self_s": c_self,
                "delta_s": c_self - b_self,
                "base_hops": b["hops"] if b else 0,
                "hops": c["hops"] if c else 0,
            }
        )
    return sorted(
        out, key=lambda r: (-r["delta_s"], r["stack"], r["actor"])
    )


# ----------------------------------------------------------------------
# Report rendering (the CLI's output)
# ----------------------------------------------------------------------
def _us(seconds: float) -> str:
    return f"{seconds * 1e6:.1f}"


def render_report(
    spans: list[dict[str, Any]], clock: str = "wall", top: int = 10
) -> str:
    """The ``obs analyze`` text report: critical path + breakdown."""
    if not spans:
        return "(no spans recorded)"
    selfs = self_times(spans, clock)
    path = critical_path(spans, clock)
    lines = [
        f"{len(spans)} spans, {len(build_index(spans)[1].get(None, []))} "
        f"activations, {clock} clock",
        "",
        f"critical path ({_us(span_duration(path[0], clock))}us "
        "end-to-end):",
    ]
    for span in path:
        hop = f"{span['caller']}->{span['actor']}"
        lines.append(
            f"  {span['direction']:<4} {hop:<28} [{span['stack']}]"
            f"  total {_us(span_duration(span, clock)):>8}us"
            f"  self {_us(selfs[span['sid']]):>8}us"
        )
    lines += [
        "",
        "per-sublayer breakdown (self time, heaviest first):",
        f"{'stack':<16} {'actor':<12} {'hops':>6} {'total_us':>10} "
        f"{'self_us':>10} {'p50_us':>8} {'p90_us':>8} {'p99_us':>8} "
        f"{'max_us':>8}",
    ]
    for row in breakdown(spans, clock)[:top]:
        lines.append(
            f"{row['stack']:<16} {row['actor']:<12} {row['hops']:>6} "
            f"{_us(row['total_s']):>10} {_us(row['self_s']):>10} "
            f"{_us(row['p50_s']):>8} {_us(row['p90_s']):>8} "
            f"{_us(row['p99_s']):>8} {_us(row['max_s']):>8}"
        )
    return "\n".join(lines)


def render_diff(
    baseline_spans: list[dict[str, Any]],
    current_spans: list[dict[str, Any]],
    clock: str = "wall",
    top: int = 10,
) -> str:
    """The ``obs analyze --diff`` text report: regressions first."""
    rows = diff_breakdowns(
        breakdown(baseline_spans, clock), breakdown(current_spans, clock)
    )
    lines = [
        f"per-sublayer self-time delta ({clock} clock, regressions first):",
        f"{'stack':<16} {'actor':<12} {'base_us':>10} {'now_us':>10} "
        f"{'delta_us':>10} {'hops':>11}",
    ]
    for row in rows[:top]:
        lines.append(
            f"{row['stack']:<16} {row['actor']:<12} "
            f"{_us(row['base_self_s']):>10} {_us(row['self_s']):>10} "
            f"{row['delta_s'] * 1e6:>+10.1f} "
            f"{row['base_hops']:>5}->{row['hops']:<5}"
        )
    return "\n".join(lines)
