"""Exporters: span JSON-lines, Chrome trace-event JSON, text summaries.

Three formats, one source of truth (the span dicts produced by
:class:`~repro.obs.span.SpanTracer`):

* **JSON-lines** — one span object per line; the archival/interchange
  format the ``python -m repro.obs`` CLI consumes;
* **Chrome trace-event JSON** — complete ("X") events plus
  process/thread-name metadata, loadable in Perfetto or
  ``chrome://tracing``; stacks become processes, sublayers become
  threads;
* **summary** — a fixed-width text table of where the hops and the
  wall time went.

Chrome export can run off either clock: ``wall`` (default — real host
cost, what a profiler wants) or ``virtual`` (deterministic simulated
time, what the golden-file test and protocol forensics want).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

#: Span fields every exporter requires.
REQUIRED_SPAN_FIELDS = (
    "sid",
    "stack",
    "direction",
    "caller",
    "actor",
    "t0",
    "t1",
    "w0",
    "w1",
)

CLOCKS = ("wall", "virtual")

#: Key of the optional metadata record a JSONL file may lead with.
META_KEY = "_meta"


class ExportError(ValueError):
    """A span record or trace file does not have the expected shape."""


# ----------------------------------------------------------------------
# JSON-lines
# ----------------------------------------------------------------------
def spans_to_jsonl(
    spans: Iterable[dict[str, Any]],
    path: Any,
    dropped: int = 0,
    meta: dict[str, Any] | None = None,
) -> int:
    """Write spans one-JSON-object-per-line; returns the span count.

    When ``dropped`` is non-zero (the tracer's ring buffer truncated
    the trace) or ``meta`` carries extra fields (``sample_rate``,
    ``sampled_out``, merge provenance…), a leading
    ``{"_meta": {...}}`` record is written so downstream consumers
    cannot mistake a truncated or sampled trace for a complete one.
    """
    header: dict[str, Any] = dict(meta) if meta else {}
    if dropped:
        header["dropped_events"] = dropped
    count = 0
    with open(Path(path), "w", encoding="utf-8") as fp:
        if header:
            fp.write(json.dumps({META_KEY: header}, sort_keys=True) + "\n")
        for span in spans:
            fp.write(json.dumps(span, sort_keys=True) + "\n")
            count += 1
    return count


def load_jsonl_with_meta(path: Any) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Read a span JSONL file; returns ``(spans, meta)``.

    ``meta`` is the content of the optional leading ``_meta`` record
    (``{}`` when absent); every other record is validated as a span.
    """
    spans: list[dict[str, Any]] = []
    meta: dict[str, Any] = {}
    with open(Path(path), "r", encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ExportError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if isinstance(record, dict) and set(record) == {META_KEY}:
                meta.update(record[META_KEY])
                continue
            missing = [f for f in REQUIRED_SPAN_FIELDS if f not in record]
            if missing:
                raise ExportError(
                    f"{path}:{lineno}: span missing fields {missing}"
                )
            spans.append(record)
    return spans, meta


def load_jsonl(path: Any) -> list[dict[str, Any]]:
    """Read a span JSON-lines file, validating each record's shape."""
    spans, _ = load_jsonl_with_meta(path)
    return spans


def merge_jsonl(paths: Iterable[Any], out: Any) -> int:
    """Merge per-worker span JSONL files into one; returns the span count.

    Each forked worker traces with its own :class:`SpanTracer`, whose
    span ids start at 0 — merging naively would collide.  Spans from
    each input keep their relative structure but have ``sid`` (and
    ``parent``) rebased past the previous inputs' ids, exactly like
    linking object files.  Inputs are merged in the order given, so a
    deterministic input order gives a byte-deterministic merge.

    The merged ``_meta`` record aggregates the inputs' records:
    ``dropped_events`` and ``sampled_out`` are summed,
    ``merged_inputs`` counts the input files, and ``sample_rate`` is
    kept only when every input that declared one declared the *same*
    one (mixed rates make a single rate meaningless, so it is omitted
    rather than averaged).
    """
    merged: list[dict[str, Any]] = []
    dropped = 0
    sampled_out = 0
    rates: set[float] = set()
    inputs = 0
    base = 0
    for path in paths:
        inputs += 1
        spans, meta = load_jsonl_with_meta(path)
        dropped += int(meta.get("dropped_events", 0))
        sampled_out += int(meta.get("sampled_out", 0))
        if "sample_rate" in meta:
            rates.add(float(meta["sample_rate"]))
        top = base
        for span in spans:
            rebased = dict(span)
            rebased["sid"] = span["sid"] + base
            if span.get("parent") is not None:
                rebased["parent"] = span["parent"] + base
            top = max(top, rebased["sid"] + 1)
            merged.append(rebased)
        base = top
    meta_out: dict[str, Any] = {"merged_inputs": inputs}
    if sampled_out:
        meta_out["sampled_out"] = sampled_out
    if len(rates) == 1:
        meta_out["sample_rate"] = rates.pop()
    return spans_to_jsonl(merged, out, dropped=dropped, meta=meta_out)


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def to_chrome_trace(
    spans: Iterable[dict[str, Any]], clock: str = "wall"
) -> dict[str, Any]:
    """Convert spans to a Chrome trace-event JSON object.

    ``clock="wall"`` uses host perf_counter times (microseconds,
    rebased to the earliest span); ``clock="virtual"`` uses simulated
    seconds as microseconds — deterministic, so golden tests diff it.
    """
    if clock not in CLOCKS:
        raise ExportError(f"clock must be one of {CLOCKS}, got {clock!r}")
    spans = list(spans)

    # Metadata first: viewers apply names/sort indices on sight, and a
    # trace whose M events all precede its X events diffs cleanly in
    # golden tests.  Sort indices pin the display order to first-seen
    # order (stacks as processes, sublayers as threads top-to-bottom in
    # traversal order) instead of the viewer's own heuristics.
    meta_events: list[dict[str, Any]] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    for span in spans:
        stack = span["stack"]
        if stack not in pids:
            pids[stack] = len(pids) + 1
            meta_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[stack],
                    "tid": 0,
                    "args": {"name": stack},
                }
            )
            meta_events.append(
                {
                    "ph": "M",
                    "name": "process_sort_index",
                    "pid": pids[stack],
                    "tid": 0,
                    "args": {"sort_index": pids[stack]},
                }
            )
        key = (stack, span["actor"])
        if key not in tids:
            tids[key] = len(tids) + 1
            meta_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pids[stack],
                    "tid": tids[key],
                    "args": {"name": span["actor"]},
                }
            )
            meta_events.append(
                {
                    "ph": "M",
                    "name": "thread_sort_index",
                    "pid": pids[stack],
                    "tid": tids[key],
                    "args": {"sort_index": tids[key]},
                }
            )
    events: list[dict[str, Any]] = list(meta_events)

    if clock == "wall":
        epoch = min((s["w0"] for s in spans), default=0.0)

        def times(span: dict[str, Any]) -> tuple[float, float]:
            return (span["w0"] - epoch) * 1e6, (span["w1"] - span["w0"]) * 1e6

    else:

        def times(span: dict[str, Any]) -> tuple[float, float]:
            return span["t0"] * 1e6, (span["t1"] - span["t0"]) * 1e6

    for span in spans:
        ts, dur = times(span)
        args = {
            "sid": span["sid"],
            "parent": span.get("parent"),
            "pdu": span.get("pdu"),
            "virtual_t0": span["t0"],
            "virtual_t1": span["t1"],
        }
        events.append(
            {
                "ph": "X",
                "name": f"{span['direction']}:{span['caller']}->{span['actor']}",
                "cat": span["direction"],
                "ts": round(ts, 3),
                "dur": round(dur, 3),
                "pid": pids[span["stack"]],
                "tid": tids[(span["stack"], span["actor"])],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(obj: Any) -> list[str]:
    """Schema-check a Chrome trace object; returns a list of problems."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M", "B", "E", "i", "C"):
            problems.append(f"{where}: bad or missing ph {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}: {key} must be a non-negative number"
                    )
    return problems


def write_chrome_trace(
    spans: Iterable[dict[str, Any]], path: Any, clock: str = "wall"
) -> dict[str, Any]:
    """Export to a Chrome trace file; returns the trace object."""
    trace = to_chrome_trace(spans, clock=clock)
    Path(path).write_text(json.dumps(trace, indent=1, sort_keys=True) + "\n")
    return trace


# ----------------------------------------------------------------------
# Human-readable summary
# ----------------------------------------------------------------------
def summarize(
    spans: Iterable[dict[str, Any]],
    dropped: int = 0,
    meta: dict[str, Any] | None = None,
) -> str:
    """Fixed-width per-(stack, actor) hop/time table.

    ``meta`` is a trace file's ``_meta`` record; sampling and merge
    provenance it declares is reported above the table so a sampled or
    merged trace is never mistaken for a complete single-run one.
    """
    meta = meta or {}
    spans = list(spans)
    if not spans:
        return "(no spans recorded)"
    rows: dict[tuple[str, str], dict[str, float]] = {}
    for span in spans:
        key = (span["stack"], span["actor"])
        row = rows.setdefault(key, {"hops": 0, "wall": 0.0, "down": 0, "up": 0})
        row["hops"] += 1
        row["wall"] += span["w1"] - span["w0"]
        row[span["direction"]] = row.get(span["direction"], 0) + 1
    virtual_span = max(s["t1"] for s in spans) - min(s["t0"] for s in spans)
    lines = [
        f"{len(spans)} spans over {virtual_span:.3f} virtual seconds"
        + (f" ({dropped} dropped)" if dropped else "")
    ]
    if "sample_rate" in meta or "sampled_out" in meta:
        parts = []
        if "sample_rate" in meta:
            parts.append(f"sampled at rate {meta['sample_rate']:g}")
        if meta.get("sampled_out"):
            parts.append(f"{meta['sampled_out']} spans sampled out")
        lines.append(", ".join(parts))
    if meta.get("merged_inputs", 0) > 1:
        lines.append(f"merged from {meta['merged_inputs']} input files")
    lines.append(
        f"{'stack':<16} {'actor':<12} {'hops':>6} {'down':>6} {'up':>6} "
        f"{'wall_ms':>9}"
    )
    for (stack, actor), row in sorted(
        rows.items(), key=lambda kv: -kv[1]["wall"]
    ):
        lines.append(
            f"{stack:<16} {actor:<12} {int(row['hops']):>6} "
            f"{int(row['down']):>6} {int(row['up']):>6} "
            f"{row['wall'] * 1e3:>9.3f}"
        )
    return "\n".join(lines)
