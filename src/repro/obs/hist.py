"""Mergeable log-bucket histograms for latency distributions.

:class:`~repro.sim.stats.RunningStats` answers "what is the mean and
spread"; it cannot answer "what is p99 hop latency", which is the
question every ROADMAP throughput/latency workload actually asks.
:class:`Histogram` answers it with fixed *logarithmic* buckets — eight
linear sub-buckets per power of two, so every bucket is at most 12.5%
wide and a reported quantile is within ~6% of the true value — while
keeping the three properties the rest of the repo demands:

* **cheap to feed** — the hot path is a list append; bucketing
  (``math.frexp`` + dict increments) is deferred and batch-amortized
  at the first readout or when the pending buffer fills, the same
  data-plane/scrape-path split production telemetry clients use
  (benchmark C12 gates the feed cost against a plain counter
  increment and reports the deferred flush cost separately);
* **exactly mergeable** — bucket counts are integers, so folding the
  per-worker snapshots of a :mod:`repro.par` campaign back together is
  integer addition: a parallel run's merged histogram is
  byte-identical to a serial run's (the campaign CI ``cmp`` relies on
  this);
* **JSON round-trippable** — :meth:`as_dict`/:meth:`from_dict` lose
  nothing the quantiles need, because the quantiles are computed from
  the buckets in the first place.

Values ≤ 0 (a latency can legitimately be exactly zero under virtual
time) land in a dedicated underflow bucket whose representative value
is 0.0.
"""

from __future__ import annotations

import math
from math import frexp as _frexp
from typing import Any

__all__ = ["Histogram", "ZERO_BUCKET"]

#: Bucket index for samples ≤ 0 — far below any frexp-derived index
#: (double exponents span roughly [-1074, 1024]).
ZERO_BUCKET = -(1 << 20)

#: Sub-buckets per power of two (bucket width = 1/8 of the octave).
_SUBDIV = 8

#: Pending samples are bucketed in batches of at most this many, so an
#: unread histogram holds bounded memory (~0.5 MB of floats) however
#: long the run.  Readouts always flush first.
_FLUSH_AT = 65_536

#: The default quantiles :meth:`Histogram.as_dict` reports.
QUANTILES = (0.5, 0.9, 0.99)


class Histogram:
    """A fixed-log-bucket distribution with p50/p90/p99/max readouts."""

    __slots__ = ("_count", "_total", "_min", "_max", "_counts", "_pending")

    def __init__(self) -> None:
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: bucket index -> sample count (int keys; see :func:`bucket_index`)
        self._counts: dict[int, int] = {}
        self._pending: list[float] = []

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def observe(self, value: float, count: int = 1) -> None:
        """Add a sample.  This is the hot path — an append, no math.

        ``count > 1`` records the same value ``count`` times (one call
        per batch instead of one per element); the single-sample path
        stays a bare append.
        """
        pending = self._pending
        if count == 1:
            pending.append(value)
        else:
            pending.extend([value] * count)
        if len(pending) >= _FLUSH_AT:
            self._flush()

    def _flush(self) -> None:
        """Bucket everything pending (batch-amortized, read-triggered)."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        self._count += len(pending)
        self._total += sum(pending)
        low, high = min(pending), max(pending)
        if low < self._min:
            self._min = low
        if high > self._max:
            self._max = high
        counts = self._counts
        get = counts.get
        for value in pending:
            if value > 0.0:
                mantissa, exponent = _frexp(value)
                index = (exponent << 3) | (int(mantissa * 16.0) - 8)
            else:
                index = ZERO_BUCKET
            counts[index] = get(index, 0) + 1

    # ------------------------------------------------------------------
    # Readouts (all flush first, so views are always consistent)
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of samples observed."""
        self._flush()
        return self._count

    @property
    def total(self) -> float:
        """Exact sum of everything observed."""
        self._flush()
        return self._total

    @property
    def minimum(self) -> float:
        """Smallest sample (``inf`` when empty)."""
        self._flush()
        return self._min

    @property
    def maximum(self) -> float:
        """Largest sample (``-inf`` when empty)."""
        self._flush()
        return self._max

    @property
    def counts(self) -> dict[int, int]:
        """Bucket index -> sample count (live dict, flushed)."""
        self._flush()
        return self._counts

    @property
    def mean(self) -> float:
        """Exact mean of everything observed (0.0 when empty)."""
        self._flush()
        return self._total / self._count if self._count else 0.0

    def quantile(self, q: float) -> float | None:
        """The q-quantile (0 ≤ q ≤ 1), or ``None`` when empty.

        Computed by walking the buckets in index order and returning
        the hit bucket's midpoint, clamped into the exact observed
        ``[min, max]`` — so a single-sample histogram reports the
        sample itself, and p100 is the exact maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        self._flush()
        if self._count == 0:
            return None
        rank = max(1, math.ceil(q * self._count))
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= rank:
                value = bucket_mid(index)
                return min(max(value, self._min), self._max)
        return self._max  # unreachable unless counts drifted

    # ------------------------------------------------------------------
    # Merge / serialization
    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram in (exact: bucket counts add)."""
        self._flush()
        other._flush()
        self._count += other._count
        self._total += other._total
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        counts = self._counts
        for index, n in other._counts.items():
            counts[index] = counts.get(index, 0) + n
        return self

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable form; ``from_dict`` round-trips it exactly.

        The ``p50/p90/p99`` entries are derived (recomputable from the
        buckets) but included so snapshots are readable on their own.
        """
        self._flush()
        out: dict[str, Any] = {
            "count": self._count,
            "sum": self._total,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": {
                str(index): self._counts[index]
                for index in sorted(self._counts)
            },
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Histogram":
        """Rebuild from :meth:`as_dict` output (derived fields ignored)."""
        hist = cls()
        hist._count = int(data["count"])
        hist._total = float(data["sum"])
        hist._min = (
            float(data["min"]) if data.get("min") is not None else math.inf
        )
        hist._max = (
            float(data["max"]) if data.get("max") is not None else -math.inf
        )
        hist._counts = {
            int(index): int(n) for index, n in data.get("buckets", {}).items()
        }
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if not self.count:
            return "Histogram(empty)"
        return (
            f"Histogram(n={self._count}, p50={self.quantile(0.5):.6g}, "
            f"p99={self.quantile(0.99):.6g}, max={self._max:.6g})"
        )


# ----------------------------------------------------------------------
# Bucket geometry (module functions so tests can pin it independently)
# ----------------------------------------------------------------------
def bucket_index(value: float) -> int:
    """The bucket a sample lands in (mirrors the deferred flush)."""
    if value <= 0.0:
        return ZERO_BUCKET
    mantissa, exponent = math.frexp(value)
    return (exponent << 3) | (int(mantissa * 16.0) - 8)


def bucket_bounds(index: int) -> tuple[float, float]:
    """The half-open value interval ``[lo, hi)`` bucket ``index`` covers."""
    if index == ZERO_BUCKET:
        return (-math.inf, 0.0)
    exponent, sub = index >> 3, index & 7
    lo = math.ldexp(0.5 + sub / 16.0, exponent)
    hi = math.ldexp(0.5 + (sub + 1) / 16.0, exponent)
    return (lo, hi)


def bucket_mid(index: int) -> float:
    """The representative (midpoint) value reported for a bucket."""
    if index == ZERO_BUCKET:
        return 0.0
    exponent, sub = index >> 3, index & 7
    return math.ldexp(0.5 + (sub + 0.5) / 16.0, exponent)
