"""The metrics registry: namespaced counters, gauges, and histograms.

This is the concrete backend for the narrow
:class:`repro.core.metrics.MetricsSink` surface sublayers report into.
One registry typically serves a whole experiment: each stack installs a
:class:`~repro.core.metrics.ScopedMetrics` view per sublayer, so the
ARQ sublayer of host ``a`` and of host ``b`` land at different names
(``dl:a/arq/data_sent`` vs ``dl:b/arq/data_sent``) while sharing one
queryable registry.

Two distribution families coexist behind :meth:`observe` and
:meth:`observe_hist`:

* ``histograms`` — streaming :class:`~repro.sim.stats.RunningStats`
  (count/mean/stddev/min/max): cheap moments, no quantiles;
* ``hists`` — log-bucket :class:`~repro.obs.hist.Histogram`
  (p50/p90/p99/max): what latency-shaped sites (ARQ RTT, queue
  residency, hop crossing time) report into, and what merges *exactly*
  across :mod:`repro.par` worker snapshots (integer bucket counts), so
  a parallel campaign's aggregate is byte-identical to a serial one's.
"""

from __future__ import annotations

import fnmatch
from typing import Any

from ..core.instrument import InstrumentedState
from ..core.metrics import SEPARATOR, ScopedMetrics
from ..sim.stats import RunningStats
from .hist import _FLUSH_AT, Histogram


class MetricsRegistry:
    """Counters, gauges, and histograms behind the MetricsSink surface."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, RunningStats] = {}
        self.hists: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # The MetricsSink surface
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        stats = self.histograms.get(name)
        if stats is None:
            stats = self.histograms[name] = RunningStats()
        stats.add(value)

    def observe_hist(self, name: str, value: float, count: int = 1) -> None:
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = Histogram()
        # Inlined Histogram.observe: the C12 budget holds this call to
        # ~1.5x a counter inc, and the observe() frame alone busts it.
        # The scalar branch stays a bare append; batched sites
        # (count > 1) pay one extend for the whole batch.
        pending = hist._pending
        if count == 1:
            pending.append(value)
        else:
            pending.extend([value] * count)
        if len(pending) >= _FLUSH_AT:
            hist._flush()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def hist(self, name: str) -> Histogram:
        """The named log-bucket histogram, created empty on first use."""
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = Histogram()
        return hist

    def hist_summary(
        self, name: str, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> dict[str, Any]:
        """A JSON-ready latency summary of one log-bucket histogram.

        This is the wall-clock export path the live runtime
        (:mod:`repro.net`) reports through: count, mean, min/max, and
        the requested quantiles (``p50``/``p95``/``p99`` by default),
        all computed from the histogram buckets so a report built from
        merged worker snapshots is identical to a single-process one.
        """
        hist = self.hist(name)
        count = hist.count
        out: dict[str, Any] = {
            "count": count,
            "mean": hist.mean,
            "min": hist.minimum if count else None,
            "max": hist.maximum if count else None,
        }
        for q in quantiles:
            out[f"p{q * 100:g}"] = hist.quantile(q)
        return out

    def names(self, pattern: str = "*") -> list[str]:
        """All metric names matching a glob pattern, sorted."""
        everything = (
            set(self.counters)
            | set(self.gauges)
            | set(self.histograms)
            | set(self.hists)
        )
        return sorted(n for n in everything if fnmatch.fnmatch(n, pattern))

    def scoped(self, prefix: str) -> ScopedMetrics:
        """A view of this registry under a namespace prefix."""
        return ScopedMetrics(self, prefix)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable dump of everything recorded so far."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: stats.as_dict()
                for name, stats in sorted(self.histograms.items())
            },
            "hists": {
                name: hist.as_dict()
                for name, hist in sorted(self.hists.items())
            },
        }

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters add, gauges last-write-wins, histograms combine via
        :meth:`~repro.sim.stats.RunningStats.merge` — so a parent
        process can aggregate the registries of forked workers (each
        trial's snapshot crosses the pipe; the live registry cannot).
        Merging the same snapshots in the same order always yields the
        same aggregate, which keeps parallel campaign reports
        deterministic.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            incoming = RunningStats.from_dict(data)
            stats = self.histograms.get(name)
            if stats is None:
                self.histograms[name] = incoming
            else:
                stats.merge(incoming)
        for name, data in snapshot.get("hists", {}).items():
            hist = self.hists.get(name)
            if hist is None:
                self.hists[name] = Histogram.from_dict(data)
            else:
                hist.merge(Histogram.from_dict(data))

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.hists.clear()

    # ------------------------------------------------------------------
    # Pull collection — for components that only expose instrumented
    # state (the observer reads them; they never see the registry).
    # ------------------------------------------------------------------
    def collect_state(self, prefix: str, state: InstrumentedState) -> int:
        """Copy numeric fields of an instrumented state into gauges.

        Reads use :meth:`~repro.core.instrument.InstrumentedState.snapshot`,
        so collection does not pollute the access log with observer
        reads.  Returns the number of fields collected.
        """
        collected = 0
        for field, value in state.snapshot().items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.gauge(prefix + SEPARATOR + field, value)
            collected += 1
        return collected

    def collect_stack(self, stack: Any) -> int:
        """Pull every sublayer's numeric state fields into gauges."""
        collected = 0
        for sublayer in stack.sublayers:
            prefix = f"{stack.name}{SEPARATOR}{sublayer.name}{SEPARATOR}state"
            collected += self.collect_state(prefix, sublayer.state)
        return collected

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """A human-readable dump, one metric per line."""
        lines: list[str] = []
        for name in sorted(self.counters):
            lines.append(f"counter  {name} = {self.counters[name]:g}")
        for name in sorted(self.gauges):
            lines.append(f"gauge    {name} = {self.gauges[name]:g}")
        for name in sorted(self.histograms):
            stats = self.histograms[name]
            lines.append(
                f"histo    {name}: n={stats.count} mean={stats.mean:.6g} "
                f"min={stats.minimum:.6g} max={stats.maximum:.6g}"
            )
        for name in sorted(self.hists):
            hist = self.hists[name]
            lines.append(
                f"hist     {name}: n={hist.count} "
                f"p50={hist.quantile(0.5):.6g} p90={hist.quantile(0.9):.6g} "
                f"p99={hist.quantile(0.99):.6g} max={hist.maximum:.6g}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms, "
            f"{len(self.hists)} hists)"
        )
