"""Wall-clock profiling of simulator callbacks, keyed by actor.

The event loop is where all host work happens, and every callback was
scheduled by *some* actor (a sublayer arming a timer, a link delivering
a frame).  :class:`CallbackProfiler` plugs into
:attr:`repro.sim.engine.Simulator.profiler`; the engine times each
callback with ``perf_counter`` and attributes it to the actor captured
when the callback was scheduled.  The result answers ROADMAP's
pre-optimization question directly: *which sublayer is hot?*
"""

from __future__ import annotations

import time
from typing import Any

from ..sim.stats import RunningStats

#: Attribution for callbacks scheduled outside any acting_as context
#: (links, media, test harnesses).
UNATTRIBUTED = "_unattributed"


class CallbackProfiler:
    """Per-actor RunningStats over callback wall-clock cost."""

    def __init__(self) -> None:
        self.stats: dict[str, RunningStats] = {}
        self._totals: dict[str, float] = {}
        self.started_at = time.perf_counter()

    # The Simulator's duck-typed hook.
    def record(self, actor: str | None, seconds: float) -> None:
        key = actor if actor is not None else UNATTRIBUTED
        stats = self.stats.get(key)
        if stats is None:
            stats = self.stats[key] = RunningStats()
        stats.add(seconds)
        self._totals[key] = self._totals.get(key, 0.0) + seconds

    def install(self, sim: Any) -> "CallbackProfiler":
        """Attach to a simulator; returns self for chaining."""
        sim.profiler = self
        return self

    # ------------------------------------------------------------------
    def total_seconds(self, actor: str | None = None) -> float:
        if actor is not None:
            return self._totals.get(actor, 0.0)
        return sum(self._totals.values())

    def callbacks(self, actor: str) -> int:
        stats = self.stats.get(actor)
        return stats.count if stats is not None else 0

    def hottest(self, n: int | None = None) -> list[tuple[str, float]]:
        """(actor, total seconds) pairs, most expensive first."""
        ranked = sorted(self._totals.items(), key=lambda kv: -kv[1])
        return ranked if n is None else ranked[:n]

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable per-actor profile."""
        return {
            actor: {
                "total_s": self._totals[actor],
                **self.stats[actor].as_dict(),
            }
            for actor, _total in self.hottest()
        }

    def summary(self) -> str:
        total = self.total_seconds()
        lines = [f"callback wall time by actor (total {total * 1e3:.2f} ms):"]
        for actor, spent in self.hottest():
            stats = self.stats[actor]
            share = (spent / total * 100.0) if total > 0 else 0.0
            lines.append(
                f"  {actor:<16} {spent * 1e3:9.3f} ms  {share:5.1f}%  "
                f"n={stats.count}  mean={stats.mean * 1e6:.2f} us"
            )
        if len(lines) == 1:
            lines.append("  (no callbacks profiled)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CallbackProfiler({len(self.stats)} actors, "
            f"{self.total_seconds() * 1e3:.2f} ms)"
        )
