"""Flight recorder: bounded always-on capture, dumped on trouble.

The campaign problem with tracing is volume: a fault campaign runs
thousands of trials and only a handful go red, but the trial that goes
red is only diagnosable if it was being traced *before* the monitor
fired.  The :class:`FlightRecorder` is the aviation answer — record
continuously into a bounded ring, throw the ring away when the flight
lands safely, write it to disk when it doesn't:

* a ring-buffered :class:`~repro.obs.span.SpanTracer` (optionally
  sampled, with tail retention keeping error/interest activations)
  holds the most recent spans;
* :meth:`checkpoint` keeps a bounded history of metric snapshots so a
  post-mortem can see counter *movement*, not just final totals;
* :meth:`dump` writes the post-mortem bundle — ``spans.jsonl``,
  ``metrics.json``, ``trigger.json`` — to a per-incident directory.

:meth:`~repro.faults.scenarios.Scenario.run_trial_with_metrics` wires
one of these per trial when a campaign runs with ``--flight-recorder``:
monitor violations, collected errors, and escaping exceptions all
trigger a dump, and ``python -m repro.obs analyze`` reads the bundle.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any

from ..core.errors import ConfigurationError
from .span import SpanTracer

#: Bundle file names, fixed so tooling can find them.
SPANS_FILE = "spans.jsonl"
METRICS_FILE = "metrics.json"
TRIGGER_FILE = "trigger.json"


class FlightRecorder:
    """Continuous bounded capture of spans + metrics, dumped on trigger.

    ``capacity`` bounds the span ring; ``sample``/``rng``/``retain``
    pass through to the :class:`~repro.obs.span.SpanTracer` (tail mode
    is always ``"tree"`` — a post-mortem wants whole activations).
    ``directory`` is where :meth:`dump` writes bundles; ``snapshots``
    bounds the checkpoint history.
    """

    def __init__(
        self,
        capacity: int = 4096,
        sample: float = 1.0,
        rng: Any = None,
        retain: Any = None,
        directory: Any = None,
        snapshots: int = 16,
    ):
        if snapshots < 1:
            raise ConfigurationError("snapshots must be >= 1")
        self.tracer = SpanTracer(
            max_spans=capacity, sample=sample, rng=rng, retain=retain
        )
        self.directory = Path(directory) if directory is not None else None
        self.registry: Any = None
        self._checkpoints: deque[dict[str, Any]] = deque(maxlen=snapshots)
        #: Path of the last bundle written, if any.
        self.dumped: Path | None = None

    # ------------------------------------------------------------------
    def observe(self, registry: Any, *stacks: Any) -> "FlightRecorder":
        """Watch a metrics registry and trace stacks; returns self.

        Each positional argument may be a :class:`~repro.core.stack.Stack`
        or anything carrying one as a ``.stack`` attribute (hosts,
        stations), so scenario code passes whatever it has.
        """
        self.registry = registry
        for item in stacks:
            self.tracer.attach(getattr(item, "stack", item))
        return self

    def detach(self) -> None:
        """Stop tracing every attached stack (keep what was recorded)."""
        self.tracer.detach_all()

    def checkpoint(self, label: str, time: float | None = None) -> None:
        """Snapshot the watched registry into the bounded history."""
        if self.registry is None:
            return
        self._checkpoints.append(
            {
                "label": label,
                "time": time,
                "snapshot": self.registry.snapshot(),
            }
        )

    # ------------------------------------------------------------------
    def dump(self, trigger: dict[str, Any], directory: Any = None) -> Path:
        """Write the post-mortem bundle; returns its directory.

        ``trigger`` records *why* (monitor violations, an escaping
        exception…) and is stored verbatim in ``trigger.json``.
        ``directory`` overrides the recorder's configured one —
        campaigns pass a per-(scenario, seed) subdirectory.
        """
        where = Path(directory) if directory is not None else self.directory
        if where is None:
            raise ConfigurationError(
                "FlightRecorder has no dump directory (pass directory= to "
                "the constructor or to dump())"
            )
        where.mkdir(parents=True, exist_ok=True)
        self.tracer.write_jsonl(where / SPANS_FILE)
        metrics: dict[str, Any] = {"checkpoints": list(self._checkpoints)}
        if self.registry is not None:
            metrics["final"] = self.registry.snapshot()
        (where / METRICS_FILE).write_text(
            json.dumps(metrics, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        (where / TRIGGER_FILE).write_text(
            json.dumps(trigger, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        self.dumped = where
        return where
