"""Sampling machinery for :class:`~repro.obs.span.SpanTracer`.

Always-on tracing records a span per sublayer crossing — unaffordable
for the fleet-scale/throughput workloads on the roadmap.  Sampled
tracing keeps the *shape* of the data (whole causal trees, never
orphaned children) while recording only a fraction of activations:

* **Head sampling** — the keep/drop decision is made once per
  *activation* (the root crossing of a span tree: an app send, a wire
  delivery, a timer-driven retransmission) by drawing from a seeded
  ``random.Random``.  Children inherit the decision through the same
  context variable that tracks parentage, so a tree is kept or dropped
  atomically.  Seed the rng from a :class:`~repro.sim.rng.RngFactory`
  stream and the sampled span set is a pure function of the run.

* **Tail retention** — a dropped activation is not discarded until it
  *ends*: if an exception escaped it, or a watched counter (faults
  injected, frames dropped…) moved while it ran, the activation is
  retained after the fact.  ``tail="root"`` keeps just the root span
  (cheap — skipped children cost ~one dict lookup each); ``tail="tree"``
  buffers the whole tree and flushes it on retention (full recording
  cost, full forensics).

The error/interest path is exactly what the flight recorder
(:mod:`repro.obs.recorder`) wants: traces stay tiny until something
goes wrong, and the something is always in the trace.
"""

from __future__ import annotations

import fnmatch
import random
from typing import Any, Callable

from ..sim.rng import derive_seed

__all__ = ["TAIL_MODES", "Activation", "default_sample_rng", "watch_counters"]

#: Tail-retention modes: keep only the root span of a retained dropped
#: activation, or buffer and keep the whole tree.
TAIL_MODES = ("root", "tree")


class Activation:
    """Per-root sampling state shared by every span of one causal tree."""

    __slots__ = ("keep", "buffer", "error", "interest0", "skipped")

    def __init__(self, keep: bool):
        #: Head decision: record this activation's spans directly.
        self.keep = keep
        #: Span records awaiting the tail decision (``tail="tree"``).
        self.buffer: list[dict[str, Any]] | None = None
        #: Name of the exception type that escaped a span, if any.
        self.error: str | None = None
        #: The retain watcher's reading when the root span started.
        self.interest0: Any = None
        #: Crossings neither recorded nor buffered (head-sampled out).
        self.skipped = 0


def default_sample_rng() -> random.Random:
    """The deterministic default sampling rng.

    Seeded through :func:`~repro.sim.rng.derive_seed` like every other
    named stream, so two runs of the same workload sample the same
    activations even when the caller does not pass an rng explicitly.
    """
    return random.Random(derive_seed(0, "obs:span-sample"))


def watch_counters(
    registry: Any, *patterns: str
) -> Callable[[], float]:
    """A retain watcher summing every counter matching the globs.

    ``registry`` is duck-typed: anything with a ``counters`` name→value
    mapping (i.e. :class:`~repro.obs.metrics.MetricsRegistry`).  The
    returned callable is read twice per dropped activation (root start
    and root end); if the sum moved — a fault fired, a frame was
    dropped — the activation is retained.

    >>> tracer = SpanTracer(sample=0.01,
    ...     retain=watch_counters(registry, "*/faults_injected", "*dropped*"))
    """
    if not patterns:
        raise ValueError("watch_counters needs at least one glob pattern")

    def reading() -> float:
        counters = registry.counters
        return sum(
            value
            for name, value in counters.items()
            if any(fnmatch.fnmatch(name, pattern) for pattern in patterns)
        )

    return reading
