"""Per-PDU span tracing across sublayer crossings.

A *span* brackets one hop of the data path: "sublayer X handed this
SDU to sublayer Y, and here is everything Y did with it" — including,
because hops are synchronous, every nested hop Y triggered.  The
:class:`SpanTracer` installs itself as a stack's
:attr:`~repro.core.stack.Stack.span_hook`; parentage is tracked with a
context variable, so a segment travelling down the Fig 5 TCP stack
produces one span tree per activation with zero cooperation from the
sublayers themselves (the same trick :func:`~repro.core.instrument.acting_as`
uses for state attribution).

Each span records virtual start/end time (the stack's clock), wall
start/end time (``perf_counter``), direction, the calling and receiving
actors, and a label + id for the PDU.  Completed spans land in a
:class:`repro.sim.trace.Trace` under category ``"span"``, which gives
them the flight recorder's filtering and — important for long runs —
its ring-buffer mode with a dropped-event counter.
"""

from __future__ import annotations

import contextlib
import functools
import time
from contextvars import ContextVar
from typing import Any, Iterator

from ..core.pdu import Pdu
from ..core.stack import Stack
from ..sim.trace import Trace

#: Category under which completed spans are logged in the trace.
SPAN_CATEGORY = "span"

_ACTIVE_SPAN: ContextVar[int | None] = ContextVar("repro_obs_active_span", default=None)


def pdu_label(sdu: Any) -> str:
    """A short human-readable description of an SDU/PDU."""
    if isinstance(sdu, Pdu):
        owners = "+".join(sdu.owners())
        return f"pdu[{owners}]"
    if isinstance(sdu, (bytes, bytearray)):
        return f"bytes[{len(sdu)}]"
    try:
        return f"{type(sdu).__name__.lower()}[{len(sdu)}]"
    except TypeError:
        return type(sdu).__name__.lower()


def pdu_id(sdu: Any) -> int:
    """An id that is stable while one PDU is wrapped/unwrapped in place.

    Headers are pushed *around* the same payload object on the way
    down, so the innermost payload's identity ties together the spans
    of one PDU's traversal of a stack.  (Across a link the PDU is
    cloned, so each host's traversal gets its own id — the causal link
    between them is the span tree, not the id.)
    """
    if isinstance(sdu, Pdu):
        return id(sdu.payload())
    return id(sdu)


class SpanTracer:
    """Records a span around every data-path hop of attached stacks."""

    def __init__(self, trace: Trace | None = None, max_spans: int | None = None):
        if trace is None:
            trace = Trace(max_events=max_spans)
        self.trace = trace
        self._next_id = 1
        self._attached: list[Stack] = []

    # ------------------------------------------------------------------
    def attach(self, stack: Stack) -> "SpanTracer":
        """Start tracing ``stack``; returns self for chaining."""
        stack.span_hook = functools.partial(self._span, stack)
        self._attached.append(stack)
        return self

    def detach(self, stack: Stack) -> None:
        stack.span_hook = None
        if stack in self._attached:
            self._attached.remove(stack)

    def detach_all(self) -> None:
        for stack in list(self._attached):
            self.detach(stack)

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _span(
        self,
        stack: Stack,
        direction: str,
        caller: str,
        provider: str,
        sdu: Any,
        meta: dict,
    ) -> Iterator[None]:
        sid = self._next_id
        self._next_id += 1
        parent = _ACTIVE_SPAN.get()
        token = _ACTIVE_SPAN.set(sid)
        virtual_start = stack.clock.now()
        wall_start = time.perf_counter()
        try:
            yield
        finally:
            wall_end = time.perf_counter()
            virtual_end = stack.clock.now()
            _ACTIVE_SPAN.reset(token)
            self.trace.log(
                SPAN_CATEGORY,
                sid=sid,
                parent=parent,
                stack=stack.name,
                direction=direction,
                caller=caller,
                actor=provider,
                pdu=pdu_label(sdu),
                pdu_id=pdu_id(sdu),
                t0=virtual_start,
                t1=virtual_end,
                w0=wall_start,
                w1=wall_end,
            )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def spans(self) -> list[dict[str, Any]]:
        """All recorded spans as plain dicts, in completion order."""
        return [
            dict(event.fields)
            for event in self.trace.events
            if event.category == SPAN_CATEGORY
        ]

    @property
    def dropped_spans(self) -> int:
        return self.trace.dropped_events

    def __len__(self) -> int:
        return sum(
            1 for event in self.trace.events if event.category == SPAN_CATEGORY
        )

    def roots(self) -> list[dict[str, Any]]:
        """Spans with no parent — one per causal activation."""
        return [s for s in self.spans() if s["parent"] is None]

    def children_of(self, sid: int) -> list[dict[str, Any]]:
        return [s for s in self.spans() if s["parent"] == sid]

    def tree(self) -> dict[int | None, list[dict[str, Any]]]:
        """Parent span id -> child spans (``None`` key holds the roots)."""
        out: dict[int | None, list[dict[str, Any]]] = {}
        for span in self.spans():
            out.setdefault(span["parent"], []).append(span)
        return out

    def actors(self) -> set[str]:
        return {s["actor"] for s in self.spans()}

    def write_jsonl(self, path: Any) -> int:
        """Dump spans to a JSON-lines file; returns the span count.

        If the ring buffer truncated the trace, the file leads with a
        ``_meta`` record carrying ``dropped_events`` so summaries can't
        silently under-count.
        """
        from .export import spans_to_jsonl  # local import keeps span.py light

        return spans_to_jsonl(self.spans(), path, dropped=self.dropped_spans)
