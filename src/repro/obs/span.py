"""Per-PDU span tracing across sublayer crossings, optionally sampled.

A *span* brackets one hop of the data path: "sublayer X handed this
SDU to sublayer Y, and here is everything Y did with it" — including,
because hops are synchronous, every nested hop Y triggered.  The
:class:`SpanTracer` installs itself as a stack's
:attr:`~repro.core.stack.Stack.span_hook`; parentage is tracked with a
context variable, so a segment travelling down the Fig 5 TCP stack
produces one span tree per activation with zero cooperation from the
sublayers themselves (the same trick :func:`~repro.core.instrument.acting_as`
uses for state attribution).

Each span records virtual start/end time (the stack's clock), wall
start/end time (``perf_counter``), direction, the calling and receiving
actors, and a label + id for the PDU.  Completed spans land in a
:class:`repro.sim.trace.Trace` under category ``"span"``, which gives
them the flight recorder's filtering and — important for long runs —
its ring-buffer mode with a dropped-event counter.

``SpanTracer(sample=0.01)`` turns on head sampling with tail retention
(see :mod:`repro.obs.sample`): one deterministic keep/drop decision per
activation, whole trees kept or dropped atomically, and dropped
activations retained anyway when an error escaped them or a watched
counter moved.  For a dropped crossing the hook returns ``None`` and
the compiled hop (:mod:`repro.core.wiring`) skips the context-manager
protocol entirely — the C12 benchmark holds this path to ≤5% over an
untraced stack at ``sample=0.01``.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Any

from ..core.errors import ConfigurationError
from ..core.pdu import Pdu
from ..core.stack import Stack
from ..sim.trace import Trace
from .sample import TAIL_MODES, Activation, default_sample_rng

#: Category under which completed spans are logged in the trace.
SPAN_CATEGORY = "span"

#: The innermost live span of the current activation (parentage +
#: inherited sampling decision).
_ACTIVE_SPAN: ContextVar["_Span | None"] = ContextVar(
    "repro_obs_active_span", default=None
)


def pdu_label(sdu: Any) -> str:
    """A short human-readable description of an SDU/PDU."""
    if isinstance(sdu, Pdu):
        owners = "+".join(sdu.owners())
        return f"pdu[{owners}]"
    if isinstance(sdu, (bytes, bytearray)):
        return f"bytes[{len(sdu)}]"
    try:
        return f"{type(sdu).__name__.lower()}[{len(sdu)}]"
    except TypeError:
        return type(sdu).__name__.lower()


def pdu_id(sdu: Any) -> int:
    """An id that is stable while one PDU is wrapped/unwrapped in place.

    Headers are pushed *around* the same payload object on the way
    down, so the innermost payload's identity ties together the spans
    of one PDU's traversal of a stack.  (Across a link the PDU is
    cloned, so each host's traversal gets its own id — the causal link
    between them is the span tree, not the id.  The id is also not
    stable across *runs*, which is why sampling decisions come from a
    seeded rng, never from the id.)
    """
    if isinstance(sdu, Pdu):
        return id(sdu.payload())
    return id(sdu)


class _Span:
    """One hop's context manager: times the crossing, logs on exit."""

    __slots__ = (
        "tracer", "stack", "direction", "caller", "provider", "sdu",
        "act", "parent", "sid", "t0", "w0", "_token",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        stack: Stack,
        direction: str,
        caller: str,
        provider: str,
        sdu: Any,
        act: Activation,
        parent: int | None,
    ):
        self.tracer = tracer
        self.stack = stack
        self.direction = direction
        self.caller = caller
        self.provider = provider
        self.sdu = sdu
        self.act = act
        self.parent = parent

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        self.sid = tracer._next_id
        tracer._next_id += 1
        self._token = _ACTIVE_SPAN.set(self)
        act = self.act
        if self.parent is None and not act.keep and act.buffer is None:
            # Head-dropped root with tail="root": open the skip gate so
            # every nested hop bypasses the hook entirely (the compiled
            # wiring checks the gate before calling it) — this is what
            # keeps sampled tracing inside the C12 overhead budget.
            gate = tracer._gate
            gate[0] = True
            gate[1] = 0
        self.t0 = self.stack.clock.now()
        self.w0 = time.perf_counter()
        return self

    def _record(self, virtual_end: float, wall_end: float) -> dict[str, Any]:
        """The span's trace record (built lazily: dropped unretained
        roots never pay for it)."""
        return {
            "sid": self.sid,
            "parent": self.parent,
            "stack": self.stack.name,
            "direction": self.direction,
            "caller": self.caller,
            "actor": self.provider,
            "pdu": pdu_label(self.sdu),
            "pdu_id": pdu_id(self.sdu),
            "t0": self.t0,
            "t1": virtual_end,
            "w0": self.w0,
            "w1": wall_end,
        }

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        wall_end = time.perf_counter()
        _ACTIVE_SPAN.reset(self._token)
        act = self.act
        tracer = self.tracer
        if exc_type is not None:
            act.error = exc_type.__name__
        if act.keep:
            record = self._record(self.stack.clock.now(), wall_end)
            if exc_type is not None:
                record["error"] = exc_type.__name__
            tracer.trace.log(SPAN_CATEGORY, **record)
        elif self.parent is not None:
            # Only reachable with a tree buffer: bufferless dropped
            # children are skipped before the hook (gate) or at the
            # hook (no _Span exists).
            if act.buffer is not None:
                record = self._record(self.stack.clock.now(), wall_end)
                if exc_type is not None:
                    record["error"] = exc_type.__name__
                act.buffer.append(record)
        else:
            if act.buffer is None:
                gate = tracer._gate
                act.skipped += gate[1]
                gate[0] = False
            tracer._finish_dropped_root(act, self, wall_end)
        return False


class SpanTracer:
    """Records a span around every data-path hop of attached stacks.

    ``sample`` < 1.0 enables deterministic head sampling with tail
    retention; ``rng`` should then be a seeded stream (e.g.
    ``RngFactory(seed).stream("obs:trace")``) so runs stay
    reproducible.  ``retain`` is an optional zero-argument callable
    (see :func:`~repro.obs.sample.watch_counters`) read at a dropped
    activation's start and end — any change retains the activation.
    ``tail`` picks what a retained activation keeps: its root span
    (``"root"``, the cheap default-off forensics) or its whole buffered
    tree (``"tree"``).
    """

    def __init__(
        self,
        trace: Trace | None = None,
        max_spans: int | None = None,
        sample: float = 1.0,
        rng: Any = None,
        retain: Any = None,
        tail: str = "tree",
    ):
        if trace is None:
            trace = Trace(max_events=max_spans)
        if not 0.0 <= sample <= 1.0:
            raise ConfigurationError(
                f"sample must be in [0, 1], got {sample!r}"
            )
        if tail not in TAIL_MODES:
            raise ConfigurationError(
                f"tail must be one of {TAIL_MODES}, got {tail!r}"
            )
        self.trace = trace
        self.sample = sample
        self.retain = retain
        self.tail = tail
        self._rng = rng if rng is not None else default_sample_rng()
        #: Spans discarded by the sampling decision (head + unretained).
        self.sampled_out = 0
        #: Dropped activations kept by tail retention, by reason.
        self.retained = {"error": 0, "interest": 0}
        self._next_id = 1
        self._attached: list[Stack] = []
        #: ``[dropping, skipped]`` — the fast skip gate shared by every
        #: hook this tracer hands out.  ``dropping`` is True exactly
        #: for the dynamic extent of a head-dropped tail="root"
        #: activation; the compiled hops then count the crossing in
        #: ``skipped`` and call straight through.
        self._gate: list = [False, 0]

    # ------------------------------------------------------------------
    def attach(self, stack: Stack) -> "SpanTracer":
        """Start tracing ``stack``; returns self for chaining."""
        span = self._span

        def hook(
            direction: str, caller: str, provider: str, sdu: Any, meta: dict
        ) -> "_Span | None":
            return span(stack, direction, caller, provider, sdu, meta)

        # The gate rides on the hook function itself, so stack surgery
        # (set_tier / replace / insert) that carries ``span_hook`` to a
        # recompiled plan carries the fast path along with it.
        hook.gate = self._gate
        stack.span_hook = hook
        self._attached.append(stack)
        return self

    def detach(self, stack: Stack) -> None:
        stack.span_hook = None
        if stack in self._attached:
            self._attached.remove(stack)

    def detach_all(self) -> None:
        for stack in list(self._attached):
            self.detach(stack)

    # ------------------------------------------------------------------
    def _span(
        self,
        stack: Stack,
        direction: str,
        caller: str,
        provider: str,
        sdu: Any,
        meta: dict,
    ) -> "_Span | None":
        """The span hook: a context manager for kept crossings, else None."""
        active = _ACTIVE_SPAN.get()
        if active is None:
            # Root of a new activation: the head decision.
            keep = self.sample >= 1.0 or self._rng.random() < self.sample
            act = Activation(keep)
            if not keep:
                if self.tail == "tree":
                    act.buffer = []
                if self.retain is not None:
                    act.interest0 = self.retain()
            return _Span(
                self, stack, direction, caller, provider, sdu, act, None
            )
        act = active.act
        if act.keep or act.buffer is not None:
            return _Span(
                self, stack, direction, caller, provider, sdu, act, active.sid
            )
        act.skipped += 1
        return None

    def _finish_dropped_root(
        self, act: Activation, span: "_Span", wall_end: float
    ) -> None:
        """Tail decision for a head-dropped activation, at root exit.

        The root's record is only materialized here, and only when a
        retention reason fires — the common sampled-out exit costs no
        dict build at all.
        """
        reason = None
        if act.error is not None:
            reason = "error"
        elif self.retain is not None and self.retain() != act.interest0:
            reason = "interest"
        if reason is None:
            buffered = len(act.buffer) if act.buffer is not None else 0
            self.sampled_out += 1 + buffered + act.skipped
            return
        if act.buffer is not None:
            for record in act.buffer:
                self.trace.log(SPAN_CATEGORY, **record)
        root_record = span._record(span.stack.clock.now(), wall_end)
        if act.error is not None:
            root_record["error"] = act.error
        root_record["retained"] = reason
        self.trace.log(SPAN_CATEGORY, **root_record)
        self.retained[reason] += 1
        # Skipped crossings (tail="root") are gone even when retained.
        self.sampled_out += act.skipped

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def spans(self) -> list[dict[str, Any]]:
        """All recorded spans as plain dicts, in completion order."""
        return [
            dict(event.fields)
            for event in self.trace.events
            if event.category == SPAN_CATEGORY
        ]

    @property
    def dropped_spans(self) -> int:
        return self.trace.dropped_events

    def __len__(self) -> int:
        return sum(
            1 for event in self.trace.events if event.category == SPAN_CATEGORY
        )

    def roots(self) -> list[dict[str, Any]]:
        """Spans with no parent — one per causal activation."""
        return [s for s in self.spans() if s["parent"] is None]

    def children_of(self, sid: int) -> list[dict[str, Any]]:
        return [s for s in self.spans() if s["parent"] == sid]

    def tree(self) -> dict[int | None, list[dict[str, Any]]]:
        """Parent span id -> child spans (``None`` key holds the roots)."""
        out: dict[int | None, list[dict[str, Any]]] = {}
        for span in self.spans():
            out.setdefault(span["parent"], []).append(span)
        return out

    def actors(self) -> set[str]:
        return {s["actor"] for s in self.spans()}

    def write_jsonl(self, path: Any) -> int:
        """Dump spans to a JSON-lines file; returns the span count.

        The leading ``_meta`` record carries ``dropped_events`` when
        the ring buffer truncated the trace, plus ``sample_rate`` and
        ``sampled_out`` when sampling is on — so summaries can't
        silently mistake a sampled or truncated trace for a complete
        one.
        """
        from .export import spans_to_jsonl  # local import keeps span.py light

        meta: dict[str, Any] = {}
        if self.sample < 1.0:
            meta["sample_rate"] = self.sample
            meta["sampled_out"] = self.sampled_out
        return spans_to_jsonl(
            self.spans(), path, dropped=self.dropped_spans, meta=meta
        )
