"""``repro.par`` — parallel execution and content-hash proof caching.

The paper's core claim is that sublayering makes verification
*modular*: each sublayer carries its own independent correctness
lemmas.  Independence is exactly what makes the heavy workloads in this
repository parallelizable and cacheable, and this package is the shared
substrate all of them fan out through:

* :mod:`repro.par.pool` — a deterministic fork-based process pool
  (:class:`ForkPool` / :func:`fork_map`): results come back in item
  order and workers inherit closed-over state by address-space
  inheritance, so parallel runs are bit-identical to serial runs;
* :mod:`repro.par.fingerprint` — content hashes over a work unit's
  implementing source (closures, root-package globals it calls, bound
  parameters, seeds) via :func:`callable_fingerprint`;
* :mod:`repro.par.cache` — :class:`ProofCache`, the fingerprint-guarded
  JSONL memo under ``.repro-cache/``: unchanged lemmas are skipped on
  re-runs, edited ones are silently re-proved.

The package sits at tier 0 next to ``core`` — pure infrastructure with
no protocol knowledge — so any layer may use it.  The workload adapters
live with their domains: ``LemmaLibrary.prove_all(parallel=, cache=)``
and :func:`repro.verify.runner.prove_libraries` for lemma DAGs,
``find_valid_rules(jobs=, cache=)`` for the stuffing-rule search, and
``run_campaign(jobs=, cache=)`` for fault-resilience trials.
"""

from .cache import DEFAULT_CACHE_DIR, ProofCache
from .fingerprint import callable_fingerprint, value_fingerprint
from .pool import ForkPool, effective_jobs, fork_map

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ForkPool",
    "ProofCache",
    "callable_fingerprint",
    "effective_jobs",
    "fork_map",
    "value_fingerprint",
]
