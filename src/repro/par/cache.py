"""The content-hash proof cache: JSONL records under ``.repro-cache/``.

A :class:`ProofCache` memoizes the results of deterministic work units
— lemma proofs, stuffing-rule validity decisions, fault-campaign trials
— keyed by a *name* (which unit) and guarded by a *fingerprint* (the
content hash of the implementing source and bound parameters, see
:mod:`repro.par.fingerprint`).  A lookup hits only when both match, so
editing a lemma body, a decision procedure, or a scenario parameter
silently invalidates exactly the affected entries; nothing is ever
explicitly flushed.

Persistence is append-only JSON lines, one domain per file
(``.repro-cache/proofs.jsonl``, ``search.jsonl``, ``campaign.jsonl``):
crash-safe (a torn last line is skipped on load), diff-able, and
trivially mergeable across machines by concatenation — the newest
record for a key wins.  :meth:`ProofCache.compact` rewrites the file
with only live entries when the append log grows past
``compact_factor`` times the live size.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

#: Default cache directory, relative to the working directory (CI keys
#: its cache step off this path).
DEFAULT_CACHE_DIR = ".repro-cache"


class ProofCache:
    """Fingerprint-guarded result memo, persisted as JSON lines.

    Parameters
    ----------
    root:
        Directory holding the cache files (created on first write).
    domain:
        File stem within ``root``; independent workloads use separate
        domains so campaign entries never bloat proof lookups.
    compact_factor:
        Rewrite the JSONL file when it holds more than this many times
        the number of live entries (superseded records accumulate
        because writes append).
    """

    def __init__(
        self,
        root: str | os.PathLike[str] = DEFAULT_CACHE_DIR,
        domain: str = "proofs",
        compact_factor: int = 4,
    ) -> None:
        """Open (creating lazily) the cache at ``root``/``domain``.jsonl."""
        self.path = Path(root) / f"{domain}.jsonl"
        self.compact_factor = compact_factor
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict[str, Any]] = {}
        self._records_on_disk = 0
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn/corrupt line: treat as absent
                if not isinstance(record, dict) or "key" not in record:
                    continue
                self._entries[record["key"]] = record
                self._records_on_disk += 1

    def _append(self, record: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fp:
            fp.write(json.dumps(record, sort_keys=True) + "\n")
        self._records_on_disk += 1

    # ------------------------------------------------------------------
    def get(self, key: str, fingerprint: str) -> Any | None:
        """The cached result for ``key``, or ``None``.

        A stored entry whose fingerprint differs from ``fingerprint``
        is stale — the implementing source or parameters changed — and
        counts as a miss.
        """
        record = self._entries.get(key)
        if record is not None and record.get("fingerprint") == fingerprint:
            self.hits += 1
            return record["result"]
        self.misses += 1
        return None

    def put(self, key: str, fingerprint: str, result: Any) -> None:
        """Store a JSON-serializable ``result`` under ``key``."""
        record = {"key": key, "fingerprint": fingerprint, "result": result}
        self._entries[key] = record
        self._append(record)
        if self._records_on_disk > self.compact_factor * max(
            len(self._entries), 1
        ):
            self.compact()

    def __contains__(self, key: str) -> bool:
        """Membership by key alone (fingerprint not checked)."""
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Hit/miss counters and entry count for reports and CI gates."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }

    def compact(self) -> int:
        """Rewrite the file with live entries only; returns the count."""
        if not self._entries:
            if self.path.exists():
                self.path.unlink()
            self._records_on_disk = 0
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".jsonl.tmp")
        with tmp.open("w", encoding="utf-8") as fp:
            for key in sorted(self._entries):
                fp.write(json.dumps(self._entries[key], sort_keys=True) + "\n")
        tmp.replace(self.path)
        self._records_on_disk = len(self._entries)
        return self._records_on_disk

    def clear(self) -> None:
        """Drop every entry, in memory and on disk."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self._records_on_disk = 0
        if self.path.exists():
            self.path.unlink()

    def __repr__(self) -> str:
        return (
            f"ProofCache({str(self.path)!r}, {len(self._entries)} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )
