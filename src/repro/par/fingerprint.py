"""Content-hash fingerprints of work units.

A cached result is only reusable while the *code that produced it* is
unchanged.  :func:`callable_fingerprint` walks a callable the way an
incremental build system walks a dependency graph: it hashes the
callable's own source (via :func:`inspect.getsource`), then recurses
into everything the result could depend on —

* **closure cells** — a lemma's ``lambda d: unstuff(stuff(d, rule),
  rule) == d`` captures ``rule``; change the rule and the fingerprint
  changes;
* **referenced globals** — the same lambda *also* calls ``stuff`` and
  ``unstuff`` through module globals; editing either body changes the
  fingerprint even though the lambda text is untouched;
* **default arguments** — a ``samples=500, seed=0`` tactic default is
  part of what was proved.

Recursion is bounded to functions and classes defined under a root
package (``repro`` by default): the standard library and third-party
code are treated as part of the interpreter, exactly like a compiler
version in a build cache.  Data values contribute their ``repr``, so
anything with a stable, value-like ``repr`` (ints, strings, ``Bits``,
frozen dataclasses like ``StuffingRule``) keys correctly.

The hash is order-deterministic: walks follow definition order
(closure cell order, ``co_names`` order), never set/dict iteration of
unordered inputs, so the same code yields the same fingerprint across
processes and runs regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import types
from typing import Any

#: Only objects defined under this package prefix are walked; everything
#: else contributes its repr (data) or qualified name (foreign code).
DEFAULT_ROOT = "repro"


def _module_of(obj: Any) -> str:
    return getattr(obj, "__module__", None) or ""


def _in_root(obj: Any, root: str) -> bool:
    module = _module_of(obj)
    return module == root or module.startswith(root + ".")


#: Memo for :func:`_source_of`, keyed by code object (functions) or the
#: class itself.  ``inspect.getsource`` re-tokenizes its file on every
#: call, which would dominate warm-cache runs; a code object is born
#: from exactly one source text, so the memo can never go stale.
_SOURCE_CACHE: dict[Any, str] = {}


def _source_of(fn: Any) -> str:
    """Source text of a function/class, falling back to bytecode."""
    key = getattr(fn, "__code__", fn)
    try:
        return _SOURCE_CACHE[key]
    except (KeyError, TypeError):
        pass
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        code = getattr(fn, "__code__", None)
        source = code.co_code.hex() if code is not None else repr(fn)
    try:
        _SOURCE_CACHE[key] = source
    except TypeError:
        pass  # unhashable key: skip the memo
    return source


def _walk(obj: Any, root: str, seen: set[int], parts: list[str]) -> None:
    """Append hashable description lines for ``obj`` to ``parts``."""
    if id(obj) in seen:
        return
    seen.add(id(obj))

    if isinstance(obj, functools.partial):
        parts.append("partial:")
        _walk(obj.func, root, seen, parts)
        for arg in obj.args:
            _walk_value(arg, root, seen, parts)
        for key in sorted(obj.keywords):
            parts.append(f"kw:{key}")
            _walk_value(obj.keywords[key], root, seen, parts)
        return

    if inspect.ismethod(obj):
        _walk(obj.__func__, root, seen, parts)
        _walk_value(obj.__self__, root, seen, parts)
        return

    if isinstance(obj, types.FunctionType):
        parts.append(f"fn:{_module_of(obj)}.{obj.__qualname__}")
        parts.append(_source_of(obj))
        for cell in obj.__closure__ or ():
            try:
                value = cell.cell_contents
            except ValueError:  # empty cell (still being defined)
                parts.append("cell:<empty>")
                continue
            _walk_value(value, root, seen, parts)
        for default in obj.__defaults__ or ():
            _walk_value(default, root, seen, parts)
        code = obj.__code__
        for name in code.co_names:
            value = obj.__globals__.get(name)
            if isinstance(value, (types.FunctionType, type)) and _in_root(
                value, root
            ):
                _walk(value, root, seen, parts)
        return

    if isinstance(obj, type):
        if _in_root(obj, root):
            parts.append(f"cls:{_module_of(obj)}.{obj.__qualname__}")
            parts.append(_source_of(obj))
        else:
            parts.append(f"foreign-cls:{_module_of(obj)}.{obj.__qualname__}")
        return

    _walk_value(obj, root, seen, parts)


def _walk_value(value: Any, root: str, seen: set[int], parts: list[str]) -> None:
    """A non-callable dependency, described without memory addresses.

    Code objects recurse through :func:`_walk`; containers are walked
    structurally (their repr could embed function addresses); instances
    of root-package classes contribute their class source plus either
    their custom ``repr`` or, when they only have the address-bearing
    default ``repr``, their attribute dict walked recursively.
    """
    if isinstance(
        value, (types.FunctionType, types.MethodType, functools.partial, type)
    ):
        _walk(value, root, seen, parts)
        return
    if isinstance(value, (tuple, list)):
        parts.append(f"seq:{type(value).__name__}:{len(value)}")
        for item in value:
            _walk_value(item, root, seen, parts)
        return
    if isinstance(value, dict):
        parts.append(f"map:{len(value)}")
        for key in sorted(value, key=repr):
            parts.append(f"key:{key!r}")
            _walk_value(value[key], root, seen, parts)
        return
    if isinstance(value, (set, frozenset)):
        parts.append(f"set:{len(value)}")
        for item in sorted(value, key=repr):
            _walk_value(item, root, seen, parts)
        return
    cls = type(value)
    if _in_root(cls, root):
        if id(value) in seen:
            return
        seen.add(id(value))
        _walk(cls, root, seen, parts)
        if cls.__repr__ is object.__repr__:
            state = getattr(value, "__dict__", None)
            if state is None:
                slots = getattr(cls, "__slots__", ())
                state = {
                    name: getattr(value, name)
                    for name in slots
                    if hasattr(value, name)
                }
            parts.append(f"obj:{_module_of(cls)}.{cls.__qualname__}")
            for key in sorted(state):
                parts.append(f"attr:{key}")
                _walk_value(state[key], root, seen, parts)
        else:
            parts.append(f"val:{value!r}")
        return
    if callable(value):
        # Builtin functions/methods repr with an address; name them.
        name = getattr(value, "__qualname__", type(value).__qualname__)
        parts.append(f"callable:{_module_of(value)}.{name}")
        return
    parts.append(f"val:{value!r}")


def callable_fingerprint(
    fn: Any, *extra: Any, root: str = DEFAULT_ROOT
) -> str:
    """Hex digest over ``fn``'s transitive source and bound values.

    Parameters
    ----------
    fn:
        The callable (function, lambda, method, partial, or class) whose
        implementing source — including closures, root-package globals
        it calls, and defaults — determines the fingerprint.
    extra:
        Additional parameters bound into the work unit (seeds, bounds);
        each is walked like a closure value.
    root:
        Package prefix inside which code is walked recursively.
    """
    parts: list[str] = []
    seen: set[int] = set()
    _walk(fn, root, seen, parts)
    for value in extra:
        _walk_value(value, root, seen, parts)
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8", "backslashreplace"))
        digest.update(b"\x00")
    return digest.hexdigest()


def value_fingerprint(*values: Any, root: str = DEFAULT_ROOT) -> str:
    """Hex digest over plain values (each walked like a closure value)."""
    parts: list[str] = []
    seen: set[int] = set()
    for value in values:
        _walk_value(value, root, seen, parts)
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8", "backslashreplace"))
        digest.update(b"\x00")
    return digest.hexdigest()
