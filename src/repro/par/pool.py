"""Deterministic process-pool execution over forked workers.

The heavy workloads this engine fans out — lemma proofs, stuffing-rule
decisions, fault-campaign trials — are *closures over unpicklable
state*: a :class:`~repro.verify.lemma.Lemma` captures lambdas, a
scenario trial captures a scenario object holding callables.  Sending
such work through the usual ``ProcessPoolExecutor`` pickling channel is
impossible, so :class:`ForkPool` relies on address-space inheritance
instead: the work function is parked in a module global *before* the
workers are forked, each forked child inherits it, and only the
per-item arguments and results cross the pipe (both must be picklable,
which strings, seeds, and result dataclasses are).

Determinism contract: :meth:`ForkPool.map` returns results in **item
order**, regardless of which worker finished first, and every work
function runs with exactly the state it closed over at fork time —
seeded RNG streams included.  A parallel run is therefore
bit-identical to a serial run of the same items, which the campaign
and proof determinism tests assert literally.

Where ``fork`` is unavailable (non-POSIX platforms) the pool degrades
to in-process serial execution — same results, no speedup — so callers
never need a platform branch.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from ..core.errors import ConfigurationError

#: Work function inherited by forked workers.  One ForkPool is active
#: per process at a time (guarded in __enter__); workers are forked
#: after this is set and never observe a different value.
_INHERITED_FN: Callable[[Any], Any] | None = None


def _call_inherited(item: Any) -> Any:
    """Run one work item through the fork-inherited function (worker side)."""
    if _INHERITED_FN is None:
        raise ConfigurationError(
            "worker has no inherited work function; "
            "ForkPool must be entered before submitting"
        )
    return _INHERITED_FN(item)


def effective_jobs(jobs: int | None) -> int:
    """Resolve a ``--jobs`` value: ``None``/1 serial, 0 = all CPUs.

    Returns 1 (serial) when forked workers are unsupported on this
    platform, so callers can pass user input straight through.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs > 1 and not _fork_available():
        return 1
    return jobs


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


class ForkPool:
    """A pool of forked workers sharing one in-memory work function.

    Use as a context manager; :meth:`map` may be called repeatedly
    (wave-by-wave DAG scheduling reuses the same workers)::

        with ForkPool(lambda name: library.lemma(name).prove(), jobs=4) as pool:
            results = pool.map(names)       # in `names` order

    With ``jobs <= 1`` no processes are created and ``map`` runs the
    function inline — the degenerate pool is the serial baseline.
    """

    def __init__(self, fn: Callable[[Any], Any], jobs: int | None = None):
        """A pool running ``fn`` over items on ``jobs`` forked workers."""
        self.fn = fn
        self.jobs = effective_jobs(jobs)
        self._executor: ProcessPoolExecutor | None = None

    def __enter__(self) -> "ForkPool":
        global _INHERITED_FN
        if self.jobs > 1:
            if _INHERITED_FN is not None:
                raise ConfigurationError(
                    "nested ForkPools are not supported: workers would "
                    "inherit the wrong work function"
                )
            import multiprocessing

            _INHERITED_FN = self.fn
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self

    def __exit__(self, *exc_info: Any) -> None:
        global _INHERITED_FN
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            _INHERITED_FN = None

    def map(self, items: Iterable[Any]) -> list[Any]:
        """Apply the work function to every item; results in item order.

        A worker exception propagates to the caller (re-raised from the
        future), after letting the remaining items finish.
        """
        work: Sequence[Any] = list(items)
        if self._executor is None:
            return [self.fn(item) for item in work]
        futures = [self._executor.submit(_call_inherited, item) for item in work]
        return [future.result() for future in futures]

    def submit(self, item: Any) -> "Future[Any]":
        """Start one item and return its :class:`Future` without waiting.

        The long-lived-worker pattern (one region of the sharded fleet
        simulator per worker, conversing with the parent over inherited
        pipes) needs futures it can hold while the work is still
        running; ``map`` would block.  In the degenerate serial pool
        the item runs inline and the returned future is already done.
        """
        if self._executor is None:
            future: Future[Any] = Future()
            try:
                future.set_result(self.fn(item))
            except BaseException as exc:  # noqa: BLE001 — mirror executor
                future.set_exception(exc)
            return future
        return self._executor.submit(_call_inherited, item)


def fork_map(
    fn: Callable[[Any], Any], items: Iterable[Any], jobs: int | None = None
) -> list[Any]:
    """One-shot :class:`ForkPool`: map ``fn`` over ``items`` deterministically."""
    with ForkPool(fn, jobs=jobs) as pool:
        return pool.map(items)
