"""Physical-layer line codes and the encoding/decoding sublayer."""

from .encodings import LINE_CODES, FourBFiveB, LineCode, Manchester, NRZ, NRZI
from .sublayer import EncodingSublayer

__all__ = [
    "EncodingSublayer",
    "FourBFiveB",
    "LINE_CODES",
    "LineCode",
    "Manchester",
    "NRZ",
    "NRZI",
]
