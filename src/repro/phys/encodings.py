"""Line codes: the encoding/decoding sublayer's mechanisms.

Section 2.1 of the paper makes encoding/decoding "the natural candidate
for the lowest sublayer" of the data link: the sender encodes digital
data into physical-layer symbols and the receiver decodes them back.
Four classic line codes are provided — NRZ, NRZI, Manchester, and
4B/5B — all behind one :class:`LineCode` interface, so the encoding
sublayer can swap any of them without the framing sublayer above
noticing (the T3 fungibility property, exercised by the F2 benchmark).

Symbols are represented as :class:`~repro.core.bits.Bits` of signal
levels (0 = low, 1 = high); a real PHY would map these to voltages.
"""

from __future__ import annotations

from ..core.bits import Bits
from ..core.errors import FramingError


class LineCode:
    """Interface for bit-to-symbol line codes."""

    #: Human-readable code name.
    name: str = "abstract"
    #: Symbols emitted per data bit (used for overhead accounting).
    symbols_per_bit: float = 1.0

    def encode(self, data: Bits) -> Bits:
        """Data bits -> line symbols."""
        raise NotImplementedError

    def decode(self, symbols: Bits) -> Bits:
        """Line symbols -> data bits.  Raises FramingError on invalid input."""
        raise NotImplementedError


class NRZ(LineCode):
    """Non-return-to-zero: the level *is* the bit."""

    name = "nrz"
    symbols_per_bit = 1.0

    def encode(self, data: Bits) -> Bits:
        return data

    def decode(self, symbols: Bits) -> Bits:
        return symbols


class NRZI(LineCode):
    """NRZ-inverted: a 1 toggles the level, a 0 holds it.

    Both sides assume the line idles low (level 0) before the first
    symbol, which stands in for the real PHY's preamble.
    """

    name = "nrzi"
    symbols_per_bit = 1.0

    def encode(self, data: Bits) -> Bits:
        level = 0
        out = []
        for bit in data:
            if bit:
                level ^= 1
            out.append(level)
        return Bits(out)

    def decode(self, symbols: Bits) -> Bits:
        level = 0
        out = []
        for symbol in symbols:
            out.append(1 if symbol != level else 0)
            level = symbol
        return Bits(out)


class Manchester(LineCode):
    """IEEE 802.3 Manchester: 0 -> low-high (01), 1 -> high-low (10).

    Self-clocking at the price of doubling the symbol rate.
    """

    name = "manchester"
    symbols_per_bit = 2.0

    _ENCODE = {0: (0, 1), 1: (1, 0)}
    _DECODE = {(0, 1): 0, (1, 0): 1}

    def encode(self, data: Bits) -> Bits:
        out: list[int] = []
        for bit in data:
            out.extend(self._ENCODE[bit])
        return Bits(out)

    def decode(self, symbols: Bits) -> Bits:
        if len(symbols) % 2 != 0:
            raise FramingError(
                f"manchester symbol stream has odd length {len(symbols)}"
            )
        out = []
        for i in range(0, len(symbols), 2):
            pair = (symbols[i], symbols[i + 1])
            try:
                out.append(self._DECODE[pair])
            except KeyError:
                raise FramingError(
                    f"invalid manchester symbol pair {pair} at offset {i}"
                ) from None
        return Bits(out)


class FourBFiveB(LineCode):
    """The FDDI 4B/5B block code: each nibble maps to a 5-bit symbol.

    The code words are chosen so no valid stream contains more than
    three consecutive zeros, preserving clock recovery when combined
    with NRZI.

    The block code needs nibble alignment, but the framing sublayer
    above produces arbitrary bit lengths (stuffing inserts single
    bits), so :meth:`encode` prepends a 3-bit pad-length field and
    zero-pads to alignment — a mechanism entirely internal to this
    sublayer, invisible above (T3).  Use :meth:`encode_aligned` /
    :meth:`decode_aligned` for the raw block code.
    """

    name = "4b5b"
    symbols_per_bit = 1.25

    _TABLE = {
        0x0: "11110", 0x1: "01001", 0x2: "10100", 0x3: "10101",
        0x4: "01010", 0x5: "01011", 0x6: "01110", 0x7: "01111",
        0x8: "10010", 0x9: "10011", 0xA: "10110", 0xB: "10111",
        0xC: "11010", 0xD: "11011", 0xE: "11100", 0xF: "11101",
    }
    _REVERSE = {v: k for k, v in _TABLE.items()}

    def encode_aligned(self, data: Bits) -> Bits:
        if len(data) % 4 != 0:
            raise FramingError(
                f"4b5b needs a multiple of 4 data bits, got {len(data)}"
            )
        out = Bits()
        for i in range(0, len(data), 4):
            nibble = data[i : i + 4].to_int()
            out = out + Bits.from_string(self._TABLE[nibble])
        return out

    def decode_aligned(self, symbols: Bits) -> Bits:
        if len(symbols) % 5 != 0:
            raise FramingError(
                f"4b5b needs a multiple of 5 symbols, got {len(symbols)}"
            )
        out = Bits()
        for i in range(0, len(symbols), 5):
            word = symbols[i : i + 5].to_string()
            if word not in self._REVERSE:
                raise FramingError(f"invalid 4b5b code word {word} at offset {i}")
            out = out + Bits.from_int(self._REVERSE[word], 4)
        return out

    def encode(self, data: Bits) -> Bits:
        pad = (-(len(data) + 3)) % 4
        framed = Bits.from_int(pad, 3) + data + Bits.zeros(pad)
        return self.encode_aligned(framed)

    def decode(self, symbols: Bits) -> Bits:
        framed = self.decode_aligned(symbols)
        if len(framed) < 3:
            raise FramingError("4b5b stream shorter than its pad field")
        pad = framed[:3].to_int()
        if pad > len(framed) - 3:
            raise FramingError(f"4b5b pad length {pad} exceeds stream")
        return framed[3 : len(framed) - pad]


#: Registry used by stacks and the F2 swap benchmark.
LINE_CODES: dict[str, type[LineCode]] = {
    cls.name: cls for cls in (NRZ, NRZI, Manchester, FourBFiveB)
}
