"""The encoding/decoding sublayer — the bottom of the Fig 2 data link.

Wraps any :class:`~repro.phys.encodings.LineCode` as a
:class:`~repro.core.sublayer.Sublayer`.  Downward it encodes the frame
bits into line symbols; upward it decodes symbols back into bits.  It
carries no header of its own: its peer communication is the symbol
stream itself, and a decode failure (invalid symbols, e.g. after severe
bit errors) drops the unit, which is exactly the service the sublayer
above (framing) is designed to tolerate.
"""

from __future__ import annotations

from typing import Any

from ..core.bits import Bits
from ..core.errors import FramingError
from ..core.sublayer import Sublayer
from .encodings import LineCode, NRZ


class EncodingSublayer(Sublayer):
    """Encodes frame bits to line symbols and back."""

    def __init__(self, name: str = "encode", code: LineCode | None = None):
        super().__init__(name)
        self.code = code if code is not None else NRZ()

    def clone_fresh(self) -> "EncodingSublayer":
        # Share the line code: it is a stateless codec, and rebuilding it
        # with type(...)() would silently drop any constructor config.
        return EncodingSublayer(self.name, self.code)

    def on_attach(self) -> None:
        self.state.encoded = 0
        self.state.decoded = 0
        self.state.decode_errors = 0

    def from_above(self, sdu: Any, **meta: Any) -> None:
        if not isinstance(sdu, Bits):
            raise FramingError(
                f"encoding sublayer needs Bits, got {type(sdu).__name__}"
            )
        self.state.encoded = self.state.encoded + 1
        self.send_down(self.code.encode(sdu), **meta)

    def from_below(self, symbols: Any, **meta: Any) -> None:
        if not isinstance(symbols, Bits):
            raise FramingError(
                f"encoding sublayer received {type(symbols).__name__} from wire"
            )
        try:
            data = self.code.decode(symbols)
        except FramingError:
            # Symbols corrupted beyond decodability: drop; upper
            # sublayers (error detection / recovery) handle the gap.
            self.state.decode_errors = self.state.decode_errors + 1
            return
        self.state.decoded = self.state.decoded + 1
        self.deliver_up(data, **meta)
