"""The encoding/decoding sublayer — the bottom of the Fig 2 data link.

Wraps any :class:`~repro.phys.encodings.LineCode` as a
:class:`~repro.core.sublayer.Sublayer`.  Downward it encodes the frame
bits into line symbols; upward it decodes symbols back into bits.  It
carries no header of its own: its peer communication is the symbol
stream itself, and a decode failure (invalid symbols, e.g. after severe
bit errors) drops the unit, which is exactly the service the sublayer
above (framing) is designed to tolerate.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.bits import Bits
from ..core.codegen import DROP
from ..core.errors import FramingError
from ..core.sublayer import Sublayer
from .encodings import LineCode, NRZ


class EncodingSublayer(Sublayer):
    """Encodes frame bits to line symbols and back."""

    def __init__(self, name: str = "encode", code: LineCode | None = None):
        super().__init__(name)
        self.code = code if code is not None else NRZ()

    def clone_fresh(self) -> "EncodingSublayer":
        # Share the line code: it is a stateless codec, and rebuilding it
        # with type(...)() would silently drop any constructor config.
        return EncodingSublayer(self.name, self.code)

    def on_attach(self) -> None:
        self.state.encoded = 0
        self.state.decoded = 0
        self.state.decode_errors = 0

    def from_above(self, sdu: Any, **meta: Any) -> None:
        if not isinstance(sdu, Bits):
            raise FramingError(
                f"encoding sublayer needs Bits, got {type(sdu).__name__}"
            )
        self.state.encoded = self.state.encoded + 1
        self.send_down(self.code.encode(sdu), **meta)

    def from_below(self, symbols: Any, **meta: Any) -> None:
        if not isinstance(symbols, Bits):
            raise FramingError(
                f"encoding sublayer received {type(symbols).__name__} from wire"
            )
        try:
            data = self.code.decode(symbols)
        except FramingError:
            # Symbols corrupted beyond decodability: drop; upper
            # sublayers (error detection / recovery) handle the gap.
            self.state.decode_errors = self.state.decode_errors + 1
            return
        self.state.decoded = self.state.decoded + 1
        self.deliver_up(data, **meta)

    # -------------------------------------------------------- batch
    def from_above_batch(
        self, sdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Encode the whole batch, then cross the boundary once."""
        encode = self.code.encode
        state = self.state
        out = []
        for sdu in sdus:
            if not isinstance(sdu, Bits):
                raise FramingError(
                    f"encoding sublayer needs Bits, got {type(sdu).__name__}"
                )
            state.encoded = state.encoded + 1
            out.append(encode(sdu))
        self.send_down_batch(out, metas)

    def from_below_batch(
        self, pdus: Sequence[Any], metas: Sequence[dict] | None = None
    ) -> None:
        """Decode the batch; survivors go up together, in order."""
        decode = self.code.decode
        state = self.state
        out = []
        out_metas: list[dict] | None = [] if metas is not None else None
        for index, symbols in enumerate(pdus):
            if not isinstance(symbols, Bits):
                raise FramingError(
                    f"encoding sublayer received {type(symbols).__name__} from wire"
                )
            try:
                data = decode(symbols)
            except FramingError:
                state.decode_errors = state.decode_errors + 1
                continue
            state.decoded = state.decoded + 1
            out.append(data)
            if out_metas is not None:
                out_metas.append(metas[index])
        if out:
            self.deliver_up_batch(out, out_metas)

    # ------------------------------------------------------- codegen
    def fuse_down(self) -> Any:
        """Fuse step mirroring :meth:`from_above`."""
        state = self.state
        encode = self.code.encode

        def step(sdu: Any, meta: dict) -> Any:
            if not isinstance(sdu, Bits):
                raise FramingError(
                    f"encoding sublayer needs Bits, got {type(sdu).__name__}"
                )
            state.encoded = state.encoded + 1
            return encode(sdu)
        return step

    def fuse_up(self) -> Any:
        """Fuse step mirroring :meth:`from_below` (decode failure drops)."""
        state = self.state
        decode = self.code.decode

        def step(symbols: Any, meta: dict) -> Any:
            if not isinstance(symbols, Bits):
                raise FramingError(
                    f"encoding sublayer received {type(symbols).__name__} from wire"
                )
            try:
                data = decode(symbols)
            except FramingError:
                state.decode_errors = state.decode_errors + 1
                return DROP
            state.decoded = state.decoded + 1
            return data
        return step
