"""Discrete-event network simulation substrate.

Provides the engine (:class:`Simulator`), impaired point-to-point links
(:class:`Link`, :class:`DuplexLink`), a shared broadcast medium with
collisions (:class:`BroadcastMedium`), deterministic random streams
(:class:`RngFactory`), event traces (:class:`Trace`), and statistics
helpers.  Every experiment in this repository runs on this substrate.
"""

from .engine import SimClock, Simulator
from .link import DEFAULT_UNIT_BITS, DuplexLink, Link, LinkConfig, LinkStats, unit_size_bits
from .medium import BroadcastMedium, MediumStats, StationPort, Transmission
from .rng import RngFactory, derive_seed
from .stats import Counter, RunningStats, ThroughputMeter
from .trace import Trace, TraceEvent

__all__ = [
    "BroadcastMedium",
    "Counter",
    "DEFAULT_UNIT_BITS",
    "DuplexLink",
    "Link",
    "LinkConfig",
    "LinkStats",
    "MediumStats",
    "RngFactory",
    "RunningStats",
    "SimClock",
    "Simulator",
    "StationPort",
    "ThroughputMeter",
    "Trace",
    "TraceEvent",
    "Transmission",
    "derive_seed",
    "unit_size_bits",
]
