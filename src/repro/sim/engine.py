"""Discrete-event simulation engine.

All protocol experiments in this repository run on this engine instead
of a real network (see DESIGN.md §1: substitution for the authors'
testbed).  It is a classic calendar-queue design: events are
``(time, sequence, callback)`` triples in a heap; :meth:`Simulator.run`
pops them in order, advancing virtual time.  Determinism is absolute —
ties break by scheduling order and all randomness flows from seeded
generators (:mod:`repro.sim.rng`) — so every benchmark number in
EXPERIMENTS.md is exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable

from ..core.clock import TimerHandle
from ..core.errors import SimulationError
from ..core.instrument import current_actor


class Simulator:
    """The event loop: schedule callbacks in virtual time and run them."""

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, TimerHandle]] = []
        self._counter = itertools.count()
        self._events_processed = 0
        self._running = False
        # Duck-typed profiling hook (``repro.obs.CallbackProfiler`` or
        # anything with ``record(actor, seconds)``).  While installed,
        # each callback is timed with the wall clock and attributed to
        # the actor that scheduled it; when None the event loop pays
        # only a None check per event.
        self.profiler = None
        # Duck-typed event-loop lag hook (``repro.obs.Histogram`` or
        # anything with ``observe(seconds)``).  While installed, each
        # callback's wall-clock duration is observed — the distribution
        # of how long the loop is unavailable per event.  Wall-clock,
        # so deterministic workloads (fault campaigns) leave it None.
        self.lag_hist = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return sum(1 for _, _, h in self._queue if not h.cancelled)

    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        actor = current_actor() if self.profiler is not None else None
        handle = TimerHandle(self._now + delay, callback, actor=actor)
        heapq.heappush(self._queue, (handle.when, next(self._counter), handle))
        return handle

    def schedule_at(self, when: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, callback)

    # ------------------------------------------------------------------
    def run(
        self,
        until: float = float("inf"),
        max_events: int = 10_000_000,
    ) -> float:
        """Process events until the queue empties or ``until`` is reached.

        Returns the virtual time at which the run stopped.  ``max_events``
        is a runaway guard; exceeding it raises :class:`SimulationError`
        (a protocol that never quiesces is a bug worth failing loudly on).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            processed = 0
            while self._queue and self._queue[0][0] <= until:
                when, _seq, handle = heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self._now = when
                profiler = self.profiler
                lag_hist = self.lag_hist
                if profiler is None and lag_hist is None:
                    handle.callback()
                else:
                    wall_start = time.perf_counter()
                    handle.callback()
                    elapsed = time.perf_counter() - wall_start
                    if profiler is not None:
                        profiler.record(handle.actor, elapsed)
                    if lag_hist is not None:
                        lag_hist.observe(elapsed)
                self._events_processed += 1
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events without quiescing"
                    )
            if until != float("inf") and (
                not self._queue or self._queue[0][0] > until
            ):
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run to quiescence (no pending events)."""
        return self.run(max_events=max_events)

    def clock(self) -> "SimClock":
        """A :class:`~repro.core.clock.Clock` view of this simulator."""
        return SimClock(self)


class SimClock:
    """Adapter giving stacks the core Clock protocol over a Simulator."""

    def __init__(self, sim: Simulator):
        self._sim = sim

    def now(self) -> float:
        return self._sim.now

    def call_later(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        return self._sim.schedule(delay, callback)

    @property
    def simulator(self) -> Simulator:
        return self._sim
