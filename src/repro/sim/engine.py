"""Discrete-event simulation engine.

All protocol experiments in this repository run on this engine instead
of a real network (see DESIGN.md §1: substitution for the authors'
testbed).  It is a classic calendar-queue design: events are
``(time, rank, sequence, callback)`` entries in a heap;
:meth:`Simulator.run` pops them in order, advancing virtual time.
Determinism is absolute — ties break by scheduling order and all
randomness flows from seeded generators (:mod:`repro.sim.rng`) — so
every benchmark number in EXPERIMENTS.md is exactly reproducible.

Same-instant ties break by a *rank*.  The default rank is
``(schedule_time, 1, sequence, 0)``, which orders exactly like the
historical insertion counter (the counter is monotone in schedule
time), so ordinary workloads execute bit-identically to every earlier
release.  Callers that need an insertion-order-*independent* tie-break
— the sharded fleet simulator (:mod:`repro.topo`) injects link
deliveries at synchronization-window boundaries, long after a serial
run would have scheduled the same events — pass an explicit
``rank=(send_time, 0, stream_id, stream_seq)`` that is a pure function
of the event's causal source.  Two runs that schedule the same ranked
events at different wall points then still execute them in the same
order at a tied timestamp.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable

from ..core.clock import TimerHandle
from ..core.errors import SimulationError
from ..core.instrument import current_actor

#: Shape of a tie-break rank: ``(schedule_time, class, id, seq)``.
#: Class 0 is reserved for source-ranked events (fleet link
#: deliveries); class 1 is the default insertion-ordered rank.  At a
#: tied event time, ranks compare first on when the event was causally
#: produced, then class, then source identity.
Rank = tuple[float, int, int, int]


class Simulator:
    """The event loop: schedule callbacks in virtual time and run them."""

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, Rank, int, TimerHandle]] = []
        self._counter = itertools.count()
        self._events_processed = 0
        self._running = False
        # Duck-typed profiling hook (``repro.obs.CallbackProfiler`` or
        # anything with ``record(actor, seconds)``).  While installed,
        # each callback is timed with the wall clock and attributed to
        # the actor that scheduled it; when None the event loop pays
        # only a None check per event.
        self.profiler = None
        # Duck-typed event-loop lag hook (``repro.obs.Histogram`` or
        # anything with ``observe(seconds)``).  While installed, each
        # callback's wall-clock duration is observed — the distribution
        # of how long the loop is unavailable per event.  Wall-clock,
        # so deterministic workloads (fault campaigns) leave it None.
        self.lag_hist = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return sum(1 for _, _, _, h in self._queue if not h.cancelled)

    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        rank: Rank | None = None,
    ) -> TimerHandle:
        """Run ``callback`` after ``delay`` seconds of virtual time.

        ``rank`` overrides the same-instant tie-break (see module
        docstring); the default reproduces pure insertion order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        actor = current_actor() if self.profiler is not None else None
        handle = TimerHandle(self._now + delay, callback, actor=actor)
        seq = next(self._counter)
        if rank is None:
            rank = (self._now, 1, seq, 0)
        heapq.heappush(self._queue, (handle.when, rank, seq, handle))
        return handle

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        rank: Rank | None = None,
    ) -> TimerHandle:
        """Run ``callback`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, callback, rank=rank)

    def next_event_time(self) -> float:
        """Timestamp of the earliest live event, or ``inf`` if idle.

        Lazily discards cancelled events at the head of the queue so
        the answer reflects work that will actually execute — the
        sharded conductor uses this as each region's contribution to
        the global lower bound on timestamps.
        """
        while self._queue and self._queue[0][3].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    # ------------------------------------------------------------------
    def run(
        self,
        until: float = float("inf"),
        max_events: int = 10_000_000,
        inclusive: bool = True,
    ) -> float:
        """Process events until the queue empties or ``until`` is reached.

        Returns the virtual time at which the run stopped.  ``max_events``
        is a runaway guard; exceeding it raises :class:`SimulationError`
        (a protocol that never quiesces is a bug worth failing loudly on).

        ``inclusive=False`` stops *before* events at exactly ``until``
        execute — conservative parallel windows are half-open
        ``[lbts, horizon)`` because an event at exactly the horizon may
        still be preceded by a not-yet-received cross-shard delivery at
        that same instant.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            processed = 0
            while self._queue and (
                self._queue[0][0] <= until
                if inclusive
                else self._queue[0][0] < until
            ):
                when, _rank, _seq, handle = heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self._now = when
                profiler = self.profiler
                lag_hist = self.lag_hist
                if profiler is None and lag_hist is None:
                    handle.callback()
                else:
                    wall_start = time.perf_counter()
                    handle.callback()
                    elapsed = time.perf_counter() - wall_start
                    if profiler is not None:
                        profiler.record(handle.actor, elapsed)
                    if lag_hist is not None:
                        lag_hist.observe(elapsed)
                self._events_processed += 1
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events without quiescing"
                    )
            # Inclusive runs advance the clock to ``until`` when the
            # horizon is quiet; exclusive runs leave ``now`` at the last
            # executed event so events at exactly ``until`` (still
            # pending) remain in this clock's future.
            if (
                inclusive
                and until != float("inf")
                and (not self._queue or self._queue[0][0] > until)
            ):
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run to quiescence (no pending events)."""
        return self.run(max_events=max_events)

    def clock(self) -> "SimClock":
        """A :class:`~repro.core.clock.Clock` view of this simulator."""
        return SimClock(self)


class SimClock:
    """Adapter giving stacks the core Clock protocol over a Simulator."""

    def __init__(self, sim: Simulator):
        self._sim = sim

    def now(self) -> float:
        return self._sim.now

    def call_later(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        return self._sim.schedule(delay, callback)

    @property
    def simulator(self) -> Simulator:
        return self._sim
