"""Point-to-point simulated links with configurable impairments.

A :class:`Link` is a unidirectional channel: FIFO serialization at a
configurable rate, propagation delay, and independent random loss,
duplication, reordering jitter, and bit errors, each driven by its own
seeded stream.  :class:`DuplexLink` bundles two of them and wires a
pair of :class:`~repro.core.stack.Stack` endpoints together.

These impairments are the adversary every experiment runs against: the
ARQ sublayers fight bit errors and loss, RD fights loss/reorder/
duplication, OSR's rate control fights the serialization bottleneck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.bits import Bits
from ..core.errors import ConfigurationError, SimulationError
from ..core.metrics import MetricsSink, scoped
from ..core.pdu import Pdu
from .engine import Simulator

DEFAULT_UNIT_BITS = 512  # size assumed for unsizeable python objects


@dataclass
class LinkConfig:
    """Impairment and capacity parameters for one link direction."""

    delay: float = 0.01
    rate_bps: float | None = None
    loss: float = 0.0
    duplicate: float = 0.0
    reorder_jitter: float = 0.0
    bit_error_rate: float = 0.0
    mtu_bits: int | None = None
    #: When set, units that queue behind the serializer for longer than
    #: this many seconds get their ECN congestion-experienced bit set
    #: (if they carry an OSR subheader) instead of waiting for loss to
    #: signal congestion — the router-side half of the paper's
    #: "explicit congestion control notifications like ECN are in the
    #: OSR subheader".
    ecn_threshold: float | None = None
    #: Drop-tail queue bound: units that would wait longer than this
    #: many seconds for the serializer are dropped (a finite router
    #: buffer).  None = unbounded queue.
    drop_tail_delay: float | None = None

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be a probability, got {p}")
        if self.delay < 0 or self.reorder_jitter < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.rate_bps is not None and self.rate_bps <= 0:
            raise ConfigurationError("rate_bps must be positive")
        if not 0.0 <= self.bit_error_rate <= 1.0:
            raise ConfigurationError("bit_error_rate must be a probability")


@dataclass
class LinkStats:
    sent: int = 0
    delivered: int = 0
    lost: int = 0
    duplicated: int = 0
    corrupted: int = 0
    dropped_mtu: int = 0
    bits_sent: int = 0
    ecn_marked: int = 0
    queue_dropped: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "dropped_mtu": self.dropped_mtu,
            "bits_sent": self.bits_sent,
            "ecn_marked": self.ecn_marked,
            "queue_dropped": self.queue_dropped,
        }


def unit_size_bits(unit: Any) -> int:
    """Best-effort wire size of a transmission unit."""
    if isinstance(unit, Bits):
        return len(unit)
    if isinstance(unit, (bytes, bytearray)):
        return 8 * len(unit)
    if isinstance(unit, Pdu):
        return unit.header_bits() + unit.payload_bits()
    return DEFAULT_UNIT_BITS


class Link:
    """One direction of a point-to-point channel."""

    def __init__(
        self,
        sim: Simulator,
        config: LinkConfig | None = None,
        rng: random.Random | None = None,
        name: str = "link",
        metrics: MetricsSink | None = None,
    ):
        self.sim = sim
        self.config = config or LinkConfig()
        self.rng = rng or random.Random(0)
        self.name = name
        self.stats = LinkStats()
        # Counters land under "link/<name>/..." in whatever registry the
        # caller passes; the default null sink keeps the hot path free.
        self.metrics: MetricsSink = scoped(metrics, f"link/{name}")
        self._sink: Callable[..., None] | None = None
        self._batch_sink: Callable[..., None] | None = None
        self._busy_until = 0.0

    def connect(
        self,
        sink: Callable[..., None],
        batch_sink: Callable[..., None] | None = None,
    ) -> None:
        """Set the receive callback: ``sink(unit, **meta)``.

        ``batch_sink(units, metas|None)``, when given, receives grouped
        same-instant arrivals from :meth:`send_batch` in one call;
        without it every delivery goes through the scalar ``sink``.
        """
        self._sink = sink
        self._batch_sink = batch_sink

    # ------------------------------------------------------------------
    def send(self, unit: Any, size_bits: int | None = None, **meta: Any) -> None:
        """Enqueue one unit for transmission."""
        if self._sink is None:
            raise ConfigurationError(f"link {self.name!r} has no receiver connected")
        size = size_bits if size_bits is not None else unit_size_bits(unit)
        self.stats.sent += 1
        if self.config.mtu_bits is not None and size > self.config.mtu_bits:
            self.stats.dropped_mtu += 1
            return
        self.stats.bits_sent += size

        start = max(self.sim.now, self._busy_until)
        if (
            self.config.drop_tail_delay is not None
            and start - self.sim.now > self.config.drop_tail_delay
        ):
            # Finite buffer: the queue is full, the unit is dropped.
            self.stats.queue_dropped += 1
            return
        tx_time = 0.0 if self.config.rate_bps is None else size / self.config.rate_bps
        self._busy_until = start + tx_time
        base_arrival = self._busy_until + self.config.delay

        # ECN: congestion-experienced marking on queueing delay.
        if (
            self.config.ecn_threshold is not None
            and start - self.sim.now > self.config.ecn_threshold
        ):
            unit = self._ecn_mark(unit)

        copies = 1
        if self.config.duplicate > 0 and self.rng.random() < self.config.duplicate:
            copies = 2
            self.stats.duplicated += 1
        for _ in range(copies):
            if self.config.loss > 0 and self.rng.random() < self.config.loss:
                self.stats.lost += 1
                continue
            jitter = (
                self.rng.uniform(0, self.config.reorder_jitter)
                if self.config.reorder_jitter > 0
                else 0.0
            )
            delivered = self._apply_bit_errors(unit)
            arrival = base_arrival + jitter
            self.sim.schedule_at(
                arrival, self._make_delivery(delivered, dict(meta))
            )

    def send_batch(
        self,
        units: Sequence[Any],
        metas: Sequence[dict] | None = None,
        sizes: Sequence[int] | None = None,
    ) -> None:
        """Enqueue an in-order batch for transmission.

        Per-unit semantics — stats, MTU/queue drops, serializer
        occupancy, ECN, and every rng draw (duplicate, loss, jitter,
        bit errors) — replay :meth:`send` exactly, in order, so a
        seeded run is bit-identical whether traffic arrives scalar or
        batched.  The only difference is event-queue shape: consecutive
        deliveries landing at the *same instant* are grouped into one
        simulator event (delivered through the batch sink when one is
        connected).  Grouping is safe because the simulator breaks
        timestamp ties FIFO: the grouped deliveries were consecutive
        events already.
        """
        if self._sink is None:
            raise ConfigurationError(f"link {self.name!r} has no receiver connected")
        config = self.config
        stats = self.stats
        rng = self.rng
        deliveries: list[tuple[float, Any, dict]] = []
        for index, unit in enumerate(units):
            meta = metas[index] if metas is not None else {}
            size = sizes[index] if sizes is not None else unit_size_bits(unit)
            stats.sent += 1
            if config.mtu_bits is not None and size > config.mtu_bits:
                stats.dropped_mtu += 1
                continue
            stats.bits_sent += size
            start = max(self.sim.now, self._busy_until)
            if (
                config.drop_tail_delay is not None
                and start - self.sim.now > config.drop_tail_delay
            ):
                stats.queue_dropped += 1
                continue
            tx_time = 0.0 if config.rate_bps is None else size / config.rate_bps
            self._busy_until = start + tx_time
            base_arrival = self._busy_until + config.delay
            if (
                config.ecn_threshold is not None
                and start - self.sim.now > config.ecn_threshold
            ):
                unit = self._ecn_mark(unit)
            copies = 1
            if config.duplicate > 0 and rng.random() < config.duplicate:
                copies = 2
                stats.duplicated += 1
            for _ in range(copies):
                if config.loss > 0 and rng.random() < config.loss:
                    stats.lost += 1
                    continue
                jitter = (
                    rng.uniform(0, config.reorder_jitter)
                    if config.reorder_jitter > 0
                    else 0.0
                )
                deliveries.append(
                    (base_arrival + jitter, self._apply_bit_errors(unit), dict(meta))
                )
        total = len(deliveries)
        i = 0
        while i < total:
            arrival = deliveries[i][0]
            j = i + 1
            while j < total and deliveries[j][0] == arrival:
                j += 1
            if j - i == 1:
                self.sim.schedule_at(
                    arrival, self._make_delivery(deliveries[i][1], deliveries[i][2])
                )
            else:
                group = deliveries[i:j]
                self.sim.schedule_at(
                    arrival,
                    self._make_batch_delivery(
                        [unit for _, unit, _ in group],
                        [meta for _, _, meta in group],
                    ),
                )
            i = j

    def _ecn_mark(self, unit: Any) -> Any:
        """Set the congestion-experienced bit in an OSR subheader.

        Works on a clone: the sender may hold references to the same
        object for retransmission.  Units without an OSR subheader
        (handshakes, pure RD acks, foreign formats) pass unmarked —
        as with real ECN, only ECN-capable traffic is marked.
        """
        if not isinstance(unit, Pdu):
            return unit
        osr_node = unit.find("osr")
        if osr_node is None:
            return unit
        marked = unit.clone()
        node = marked.find("osr")
        node.header["ecn"] = node.header.get("ecn", 0) | 1
        self.stats.ecn_marked += 1
        return marked

    def _make_delivery(self, unit: Any, meta: dict) -> Callable[[], None]:
        def deliver() -> None:
            if self._sink is None:
                # The sink was detached between send and delivery; a
                # unit in flight now has nowhere to land.
                raise SimulationError(
                    f"link {self.name!r}: delivery fired with no "
                    f"connected sink"
                )
            self.stats.delivered += 1
            self._sink(unit, **meta)

        return deliver

    def _make_batch_delivery(
        self, units: list, metas: list
    ) -> Callable[[], None]:
        def deliver() -> None:
            if self._sink is None:
                raise SimulationError(
                    f"link {self.name!r}: delivery fired with no "
                    f"connected sink"
                )
            self.stats.delivered += len(units)
            if self._batch_sink is not None:
                self._batch_sink(units, metas)
            else:
                sink = self._sink
                for unit, meta in zip(units, metas):
                    sink(unit, **meta)

        return deliver

    # ------------------------------------------------------------------
    def _apply_bit_errors(self, unit: Any) -> Any:
        ber = self.config.bit_error_rate
        if ber <= 0:
            return unit
        if isinstance(unit, Bits):
            flipped = list(unit)
            corrupted = False
            for i in range(len(flipped)):
                if self.rng.random() < ber:
                    flipped[i] ^= 1
                    corrupted = True
            if corrupted:
                self.stats.corrupted += 1
                self.metrics.inc("bit_errors")
                return Bits(flipped)
            return unit
        if isinstance(unit, (bytes, bytearray)):
            data = bytearray(unit)
            corrupted = False
            for i in range(len(data)):
                for bit in range(8):
                    if self.rng.random() < ber:
                        data[i] ^= 1 << bit
                        corrupted = True
            if corrupted:
                self.stats.corrupted += 1
                self.metrics.inc("bit_errors")
                return bytes(data)
            return bytes(data)
        # Structured units (Pdus) don't take bit errors; datalink
        # experiments serialize to Bits before hitting the wire.
        return unit

    def __repr__(self) -> str:
        return f"Link({self.name!r}, delay={self.config.delay}, loss={self.config.loss})"


class DuplexLink:
    """A bidirectional channel joining two stacks.

    ``attach(a, b)`` wires ``a.on_transmit`` into the a->b direction and
    delivers arrivals via ``b.receive`` (and symmetrically).
    """

    def __init__(
        self,
        sim: Simulator,
        config: LinkConfig | None = None,
        reverse_config: LinkConfig | None = None,
        rng_forward: random.Random | None = None,
        rng_reverse: random.Random | None = None,
        name: str = "duplex",
        metrics: MetricsSink | None = None,
    ):
        self.forward = Link(
            sim, config, rng_forward, name=f"{name}:fwd", metrics=metrics
        )
        self.reverse = Link(
            sim,
            reverse_config if reverse_config is not None else config,
            rng_reverse,
            name=f"{name}:rev",
            metrics=metrics,
        )

    def attach(self, a: Any, b: Any) -> None:
        """Join two Stack-like endpoints (on_transmit / receive).

        Endpoints exposing the batch surface (``on_transmit_batch`` /
        ``receive_batch``) get it wired too, so a batched send crosses
        the link — and re-enters the peer stack — as one call.
        """
        a.on_transmit = lambda unit, **meta: self.forward.send(unit, **meta)
        b.on_transmit = lambda unit, **meta: self.reverse.send(unit, **meta)
        if hasattr(a, "on_transmit_batch"):
            a.on_transmit_batch = lambda units, metas=None: self.forward.send_batch(
                units, metas
            )
        if hasattr(b, "on_transmit_batch"):
            b.on_transmit_batch = lambda units, metas=None: self.reverse.send_batch(
                units, metas
            )
        b_batch = (
            (lambda units, metas=None: b.receive_batch(units, metas))
            if hasattr(b, "receive_batch")
            else None
        )
        a_batch = (
            (lambda units, metas=None: a.receive_batch(units, metas))
            if hasattr(a, "receive_batch")
            else None
        )
        self.forward.connect(lambda unit, **meta: b.receive(unit, **meta), b_batch)
        self.reverse.connect(lambda unit, **meta: a.receive(unit, **meta), a_batch)
