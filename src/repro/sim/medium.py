"""A shared broadcast medium with collisions, for MAC sublayers.

The 802.11 branch of the paper's Fig 2 replaces error recovery with
Media Access Control, whose job is "to guarantee that one sender at a
time, eventually and fairly, gets access to the shared physical
channel".  :class:`BroadcastMedium` provides the physical substrate MAC
sublayers contend on: any station may transmit at any moment; frames
whose airtime overlaps *collide* and arrive corrupted at every
receiver; stations can carrier-sense whether the channel is busy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..core.errors import ConfigurationError
from .engine import Simulator


@dataclass
class Transmission:
    station: "StationPort"
    frame: Any
    start: float
    end: float
    collided: bool = False


@dataclass
class MediumStats:
    transmissions: int = 0
    collisions: int = 0
    delivered: int = 0


class BroadcastMedium:
    """Half-duplex shared channel: overlapping transmissions collide."""

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float = 1_000_000.0,
        prop_delay: float = 0.0,
    ):
        if rate_bps <= 0:
            raise ConfigurationError("rate_bps must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.stations: list[StationPort] = []
        self.stats = MediumStats()
        self._active: list[Transmission] = []

    def attach(self, name: str) -> "StationPort":
        port = StationPort(self, name)
        self.stations.append(port)
        return port

    # ------------------------------------------------------------------
    def busy(self) -> bool:
        """Carrier sense: is anything on the air right now?"""
        now = self.sim.now
        return any(t.start <= now < t.end for t in self._active)

    def _transmit(self, port: "StationPort", frame: Any, size_bits: int) -> None:
        now = self.sim.now
        end = now + size_bits / self.rate_bps
        tx = Transmission(port, frame, now, end)
        self.stats.transmissions += 1
        # Any currently-active transmission overlaps with this one.
        for other in self._active:
            if other.end > now:
                if not other.collided:
                    other.collided = True
                    self.stats.collisions += 1
                if not tx.collided:
                    tx.collided = True
                    self.stats.collisions += 1
        self._active.append(tx)
        self.sim.schedule_at(end + self.prop_delay, lambda: self._complete(tx))

    def _complete(self, tx: Transmission) -> None:
        self._active.remove(tx)
        for station in self.stations:
            if station is tx.station:
                continue
            if tx.collided:
                station._on_collision()
            else:
                self.stats.delivered += 1
                station._on_receive(tx.frame)
        tx.station._on_transmit_done(collided=tx.collided)


class StationPort:
    """One station's handle on the medium."""

    def __init__(self, medium: BroadcastMedium, name: str):
        self.medium = medium
        self.name = name
        self.on_receive: Callable[[Any], None] | None = None
        self.on_collision: Callable[[], None] | None = None
        self.on_transmit_done: Callable[[bool], None] | None = None

    def carrier_sense(self) -> bool:
        return self.medium.busy()

    def transmit(self, frame: Any, size_bits: int) -> None:
        self.medium._transmit(self, frame, size_bits)

    def _on_receive(self, frame: Any) -> None:
        if self.on_receive is not None:
            self.on_receive(frame)

    def _on_collision(self) -> None:
        if self.on_collision is not None:
            self.on_collision()

    def _on_transmit_done(self, collided: bool) -> None:
        if self.on_transmit_done is not None:
            self.on_transmit_done(collided)

    def __repr__(self) -> str:
        return f"StationPort({self.name!r})"
