"""Seeded random-number streams for deterministic simulation.

Each stochastic component (a link's loss process, a MAC's backoff, a
workload generator) draws from its *own* stream derived from a root
seed and a component label.  Adding or removing one component therefore
never perturbs the draws any other component sees — runs stay
comparable across configurations, which the A/B benchmarks
(sublayered vs monolithic, AIMD vs rate-based) rely on.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, label: str) -> int:
    """A stable 64-bit seed for ``label`` under ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngFactory:
    """Hands out independent named random streams from one root seed."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, label: str) -> random.Random:
        """The stream for ``label`` (created on first use, then reused)."""
        if label not in self._streams:
            self._streams[label] = random.Random(derive_seed(self.root_seed, label))
        return self._streams[label]

    def fork(self, label: str) -> "RngFactory":
        """A child factory whose streams are independent of this one's."""
        return RngFactory(derive_seed(self.root_seed, f"fork:{label}"))
