"""Small statistics helpers used by benchmarks and examples."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import SimulationError


@dataclass
class Counter:
    """A named monotonic counter."""

    name: str
    value: int = 0

    def increment(self, by: int = 1) -> None:
        self.value += by


class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Fold another stream's statistics into this one, in place.

        Uses the parallel Welford combination (Chan et al.), so merging
        per-worker partial stats yields the same count/mean/variance as
        one stream would have — this is how per-worker metric snapshots
        are folded back into a campaign-wide registry.  Returns self.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "RunningStats":
        """Rebuild stats from :meth:`as_dict` output (snapshot transport).

        The second moment is reconstructed from the stddev, so a
        round-trip through a snapshot preserves count/mean/variance
        (up to float formatting) — enough for :meth:`merge`.
        """
        stats = cls()
        stats.count = int(data["count"])
        if stats.count:
            stats._mean = float(data["mean"])
            stats._m2 = float(data["stddev"]) ** 2 * max(stats.count - 1, 0)
            stats.minimum = float(data["min"])
            stats.maximum = float(data["max"])
        return stats


@dataclass
class ThroughputMeter:
    """Bytes delivered over a window of virtual time."""

    bytes_delivered: int = 0
    first_time: float | None = None
    last_time: float | None = None

    def record(self, nbytes: int, time: float) -> None:
        self.bytes_delivered += nbytes
        if self.first_time is None:
            self.first_time = time
        self.last_time = time

    @property
    def duration(self) -> float:
        if self.first_time is None or self.last_time is None:
            return 0.0
        return self.last_time - self.first_time

    def throughput_bps(self, end_time: float | None = None) -> float:
        """Bits per second from first delivery to ``end_time`` (or last)."""
        if self.first_time is None:
            return 0.0
        end = end_time if end_time is not None else self.last_time
        if end is None:
            raise SimulationError(
                "throughput meter has a first delivery but no last: "
                "meter state is corrupt"
            )
        span = end - self.first_time
        if span <= 0:
            return 0.0
        return 8.0 * self.bytes_delivered / span
