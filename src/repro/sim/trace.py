"""Timestamped event traces for simulation runs.

A :class:`Trace` is the simulator-wide flight recorder: components call
:meth:`Trace.log` with a category and free-form fields, and analyses
filter the result.  The offload cost model (C6) and the tuning
benchmark (C3) both work from traces rather than instrumenting the
protocols a second time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..core.errors import ConfigurationError
from .engine import Simulator


@dataclass(frozen=True)
class TraceEvent:
    time: float
    category: str
    fields: tuple[tuple[str, Any], ...]

    def __getitem__(self, key: str) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        return default


class Trace:
    """An append-only, filterable event log bound to a simulator clock.

    With ``max_events`` set the trace becomes a ring buffer holding the
    most recent ``max_events`` events; older events are dropped and
    counted in :attr:`dropped_events`.  Long-running benchmarks use
    this mode so the flight recorder's memory stays bounded while the
    drop counter keeps the loss visible.
    """

    def __init__(self, sim: Simulator | None = None, max_events: int | None = None):
        if max_events is not None and max_events <= 0:
            raise ConfigurationError("max_events must be positive or None")
        self._sim = sim
        self.max_events = max_events
        self.events: Any = (
            deque(maxlen=max_events) if max_events is not None else []
        )
        self.dropped_events = 0

    def log(self, category: str, **fields: Any) -> None:
        time = self._sim.now if self._sim is not None else 0.0
        if self.max_events is not None and len(self.events) == self.max_events:
            self.dropped_events += 1
        self.events.append(TraceEvent(time, category, tuple(fields.items())))

    # ------------------------------------------------------------------
    def filter(
        self,
        category: str | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        out = []
        for event in self.events:
            if category is not None and event.category != category:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def count(self, category: str) -> int:
        return sum(1 for e in self.events if e.category == category)

    def categories(self) -> set[str]:
        return {e.category for e in self.events}

    def between(self, start: float, end: float) -> Iterator[TraceEvent]:
        for event in self.events:
            if start <= event.time < end:
                yield event

    def clear(self) -> None:
        self.events.clear()
        self.dropped_events = 0

    def __len__(self) -> int:
        return len(self.events)
