"""Static sublayering checker — litmus tests T1/T2/T3 proven from source.

The runtime litmus checker (:mod:`repro.core.litmus`) observes an
instrumented execution; this package verifies the same discipline
*before anything runs* by analysing the AST of every module under a
package root:

* **T1** — the import graph must respect the declared layer order and
  be acyclic (:mod:`repro.staticcheck.imports`);
* **T2** — ports may carry only declared service primitives, and
  declared interfaces must be narrow
  (:mod:`repro.staticcheck.narrowness`);
* **T3** — no reaching through ports into foreign state, and no
  touching header fields outside a sublayer's own ``HEADER``
  (:mod:`repro.staticcheck.isolation`).

Run it as ``python -m repro.staticcheck src/repro``; the repository is
its own test corpus and must stay clean.
"""

from .config import DEFAULT_ALLOWLIST, DEFAULT_LAYERS, StaticCheckConfig
from .imports import ImportEdge, check_import_cycles, check_layer_order, collect_imports
from .isolation import check_foreign_header_fields, check_state_reach
from .loader import Corpus, ModuleInfo, load_package
from .model import ClassDecl, CorpusModel, HeaderDecl, InterfaceDecl, build_model
from .narrowness import check_interface_widths, check_undeclared_primitives
from .report import (
    ALL_RULES,
    ERROR,
    WARNING,
    StaticReport,
    Violation,
    build_report,
)
from .runner import run_staticcheck

__all__ = [
    "ALL_RULES",
    "Corpus",
    "ClassDecl",
    "CorpusModel",
    "DEFAULT_ALLOWLIST",
    "DEFAULT_LAYERS",
    "ERROR",
    "HeaderDecl",
    "ImportEdge",
    "InterfaceDecl",
    "ModuleInfo",
    "StaticCheckConfig",
    "StaticReport",
    "Violation",
    "WARNING",
    "build_model",
    "build_report",
    "check_foreign_header_fields",
    "check_import_cycles",
    "check_interface_widths",
    "check_layer_order",
    "check_state_reach",
    "check_undeclared_primitives",
    "collect_imports",
    "load_package",
    "run_staticcheck",
]
