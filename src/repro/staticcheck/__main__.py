"""CLI: ``python -m repro.staticcheck <package-dir>``.

Exit status: 0 when the corpus is clean (warnings allowed unless
``--strict``), 1 when any rule fails, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..core.errors import ConfigurationError
from .config import DEFAULT_ALLOWLIST, StaticCheckConfig
from .runner import run_staticcheck


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description=(
            "Statically verify the sublayering discipline (litmus tests "
            "T1/T2/T3) over a package's source; --flow adds the symbolic "
            "data-plane properties (T4/T5)."
        ),
    )
    parser.add_argument(
        "package",
        help="package directory to check (e.g. src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format: human-readable text, the canonical JSON "
        "document, or GitHub workflow-command annotations",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the symbolic reachability/isolation analysis "
        "(rules flow-reachability/flow-isolation) over the example "
        "topologies",
    )
    parser.add_argument(
        "--flow-topology",
        action="append",
        metavar="NAME",
        help="with --flow: analyze only this example topology (repeatable)",
    )
    parser.add_argument(
        "--flow-spec",
        action="append",
        default=[],
        metavar="FILE.json",
        help="also analyze a declarative flow-spec file (repeatable; "
        "implies the flow rules)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures",
    )
    parser.add_argument(
        "--max-width",
        type=int,
        default=None,
        metavar="N",
        help="maximum declared interface width before a warning",
    )
    parser.add_argument(
        "--allow",
        action="append",
        default=[],
        metavar="'IMPORTER -> IMPORTED'",
        help="extra layer-order allowlist entry (repeatable)",
    )
    parser.add_argument(
        "--no-default-allowlist",
        action="store_true",
        help="drop the built-in layer-order allowlist",
    )
    args = parser.parse_args(argv)

    allowlist = set() if args.no_default_allowlist else set(DEFAULT_ALLOWLIST)
    allowlist.update(args.allow)
    overrides = {"allowlist": frozenset(allowlist), "strict": args.strict}
    if args.max_width is not None:
        overrides["max_interface_width"] = args.max_width
    config = StaticCheckConfig(**overrides)

    try:
        report = run_staticcheck(
            args.package,
            config,
            base_dir=".",
            flow=args.flow,
            flow_topologies=args.flow_topology,
            flow_specs=args.flow_spec,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=1, sort_keys=True))
    elif args.format == "github":
        print(report.github())
    else:
        print(report.text())
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
