"""Static T2 pass: batch hooks must shadow their scalar partner.

The vector protocol (:meth:`Sublayer.from_above_batch` /
:meth:`from_below_batch`) defaults to looping the scalar hook, so a
class that overrides only the scalar side stays correct automatically.
The reverse is not true: a class body that defines ``from_above_batch``
but inherits ``from_above`` has two implementations of the same
transform maintained in different classes — the batch path and the
scalar path can silently diverge, and the differential equivalence rig
only catches the configurations it happens to run.  This pass rejects
the pattern statically: whoever owns the batch transform must own the
scalar one in the same class body.
"""

from __future__ import annotations

import ast

from .model import CorpusModel
from .report import ERROR, Violation

#: batch hook -> the scalar hook the same class body must also define.
_PARTNERS = {
    "from_above_batch": "from_above",
    "from_below_batch": "from_below",
}


def check_batch_parity(model: CorpusModel) -> list[Violation]:
    """Flag sublayer classes defining a batch hook without its scalar."""
    violations: list[Violation] = []
    for decl in model.sublayer_classes():
        defined = {
            node.name: node
            for node in decl.node.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for batch_name, scalar_name in _PARTNERS.items():
            batch = defined.get(batch_name)
            if batch is None or scalar_name in defined:
                continue
            violations.append(
                Violation(
                    rule="batch-parity",
                    severity=ERROR,
                    module=decl.module,
                    path=decl.path,
                    line=batch.lineno,
                    message=(
                        f"{decl.name}: defines `{batch_name}` without "
                        f"`{scalar_name}` in the same class body; the batch "
                        f"and scalar transforms would live in different "
                        f"classes and can drift apart (T2)"
                    ),
                )
            )
    return violations
