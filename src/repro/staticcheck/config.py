"""Configuration for the static sublayering checker.

The checker is parameterised the same way the runtime litmus tests are:
a declared layer order (T1), a maximum interface width (T2), and an
explicit allowlist for the few places where the repository deliberately
steps outside the discipline.  Everything lives in one
:class:`StaticCheckConfig` value so tests can run the checker against
fixture packages with a different policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.litmus import DEFAULT_MAX_INTERFACE_WIDTH

#: The declared layer order of the repository, bottom-up: a module in
#: tier *t* may only import from tiers <= *t*.  ``par`` (parallel
#: execution + proof caching) is pure infrastructure like ``core``:
#: it knows nothing about protocols, so every layer may fan work out
#: through it.  The simulator substrate,
#: verifier, and analyses sit together at the top — they orchestrate
#: protocol stacks and may therefore see everything below them.
#: Observability (``obs``) sits above even those, *outside* the protocol
#: DAG: it may observe (import) every layer, and no layer — protocol or
#: substrate — may import it back; sublayers reach it only through the
#: duck-typed hooks in ``core`` (``metrics`` sink, ``span_hook``,
#: ``Simulator.profiler``).  Fault injection (``faults``) sits above
#: *everything*, including obs: its scenario harness drives whole
#: stacks and reads their telemetry as evidence, so it may import any
#: layer while nothing may import it back — and its fault *sublayers*
#: are ``TRANSPARENT``, exempting them from the composition-order rule.
#: Two runtime orchestrators share the top tier: fleet-scale
#: simulation (``topo``) composes whole router stacks into networks,
#: partitions them across workers, and replays faults through the
#: scenario harness; the live runtime (``net``) hosts the same stacks
#: on an asyncio loop behind real UDP sockets and reports through obs
#: histograms.  Both may import everything below them — profiles,
#: hosts, obs, faults — and nothing imports either back: the sublayers
#: stay runtime-agnostic (a stack reaches its runtime only through the
#: ``core`` clock protocol and the ``on_transmit`` hook, never by
#: importing ``sim`` or ``net``).
DEFAULT_LAYERS: dict[str, int] = {
    "core": 0,
    "par": 0,
    "phys": 1,
    "datalink": 2,
    "network": 3,
    "transport": 4,
    "sim": 5,
    "verify": 5,
    "analysis": 5,
    "staticcheck": 5,
    "flow": 5,
    "compose": 5,
    "obs": 6,
    "faults": 7,
    "topo": 8,
    "net": 8,
}

#: Deliberate exceptions to the layer-order rule, as
#: ``"importer -> imported"`` prefixes (either side may be a package
#: prefix).  Each entry documents why it is sound:
#:
#: * ``repro.datalink.stacks`` and ``repro.network.topology`` are
#:   *assembly* modules: they wire protocol sublayers onto the simulator
#:   substrate (links, media, engines).  The protocol sublayers
#:   themselves never see the simulator.
#: * ``repro.datalink.framing.lemmas`` states the verified bit-stuffing
#:   properties of Section 4.1 in the verifier's lemma vocabulary; the
#:   framing *mechanisms* do not depend on the verifier.
#: * the three stack construction sites (``repro.datalink.stacks``,
#:   ``repro.transport.sublayered.host``, ``repro.transport.quic.host``)
#:   build through the ``repro.compose`` profile registry; like the
#:   assembly exception above, they orchestrate composition without the
#:   protocol *sublayers* ever seeing the builder.
DEFAULT_ALLOWLIST: frozenset[str] = frozenset(
    {
        "repro.datalink.stacks -> repro.sim",
        "repro.network.topology -> repro.sim",
        "repro.datalink.framing.lemmas -> repro.verify",
        "repro.datalink.stacks -> repro.compose",
        "repro.transport.sublayered.host -> repro.compose",
        "repro.transport.quic.host -> repro.compose",
    }
)


@dataclass(frozen=True)
class StaticCheckConfig:
    """Policy knobs for one static-checker run."""

    #: Tier of each top-level subpackage under the checked root package.
    #: Subpackages not listed are unconstrained (treated as top tier).
    layers: dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LAYERS))

    #: ``"importer -> imported"`` module/package prefixes exempt from
    #: the layer-order rule.
    allowlist: frozenset[str] = DEFAULT_ALLOWLIST

    #: Declared :class:`~repro.core.interface.ServiceInterface` widths
    #: above this raise an ``interface-width`` warning (same default as
    #: the runtime T2 check).
    max_interface_width: int = DEFAULT_MAX_INTERFACE_WIDTH

    #: Treat warnings as errors (CLI ``--strict``).
    strict: bool = False

    def tier_of(self, module: str, root: str) -> int:
        """Layer tier of ``module`` (dotted name) under root package ``root``.

        The tier is keyed by the first path segment below the root;
        the root package itself (and unknown segments) are treated as
        top-tier so they may import anything.
        """
        prefix = root + "."
        if not module.startswith(prefix):
            return max(self.layers.values(), default=0) + 1
        segment = module[len(prefix):].split(".", 1)[0]
        if segment in self.layers:
            return self.layers[segment]
        return max(self.layers.values(), default=0) + 1

    def allows(self, importer: str, imported: str) -> bool:
        """True if ``importer -> imported`` matches an allowlist entry."""
        for entry in self.allowlist:
            src, _, dst = entry.partition("->")
            src = src.strip()
            dst = dst.strip()
            if _prefix_match(importer, src) and _prefix_match(imported, dst):
                return True
        return False


def _prefix_match(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")
