"""The T4/T5 bridge: symbolic flow analysis as staticcheck rules.

``--flow`` extends the checker's scope from the *source* discipline
(T1–T3, decided over ASTs) to the *data-plane* discipline: the
``repro.flow`` engine proves no-escape, blackhole-freedom, and
loop-freedom (rule ``flow-reachability``, litmus T4) and tenant
isolation (rule ``flow-isolation``, litmus T5) over forwarding-plane
snapshots — the shipped example topologies by default, plus any
declarative spec files the caller names.  Each refuted property becomes
one ordinary :class:`~repro.staticcheck.report.Violation`, so every
downstream consumer (text/json/github emitters, CI, ``require()``)
handles static and symbolic findings identically.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..flow.examples import EXAMPLE_SPECS, example_spec
from ..flow.properties import analyze_all
from ..flow.report import FlowViolation
from ..flow.spec import FlowSpec
from ..par.cache import ProofCache
from .report import ERROR, Violation

#: property -> staticcheck rule (the T4 family vs the T5 rule).
PROPERTY_RULES: dict[str, str] = {
    "no-escape": "flow-reachability",
    "blackhole-freedom": "flow-reachability",
    "loop-freedom": "flow-reachability",
    "isolation": "flow-isolation",
}


def flow_violation_to_static(
    violation: FlowViolation, path: str
) -> Violation:
    """One refuted property as an ordinary staticcheck finding.

    ``path`` anchors the finding at what the analyzer actually read —
    the spec file, or a ``topology:<name>`` pseudo-path for built-in
    examples (line 0: properties are spec-wide, not positional).
    """
    where = (
        f"node {violation.node}" if violation.node is not None else "spec"
    )
    return Violation(
        rule=PROPERTY_RULES[violation.property],
        severity=ERROR,
        module=violation.spec,
        path=path,
        line=0,
        message=f"[{violation.property}] {where}: {violation.message}",
    )


def check_flow_properties(
    topologies: Iterable[str] | None = None,
    spec_files: Iterable[str | Path] = (),
    cache: ProofCache | None = None,
) -> list[Violation]:
    """Run the symbolic engine; return T4/T5 findings as violations.

    ``topologies`` names example specs (default: all of them);
    ``spec_files`` adds declarative snapshots from disk.  With
    ``cache``, unchanged forwarding planes verify from the proof cache
    (same entries the ``repro.flow`` CLI writes).
    """
    names = sorted(EXAMPLE_SPECS) if topologies is None else list(topologies)
    sources: list[tuple[FlowSpec, str]] = []
    for name in names:
        sources.append((example_spec(name), f"topology:{name}"))
    for file in spec_files:
        sources.append((FlowSpec.from_file(file), str(file)))

    paths = {spec.name: path for spec, path in sources}
    reports = analyze_all([spec for spec, _ in sources], cache=cache)
    violations: list[Violation] = []
    for name, report in reports.items():
        for violation in report.violations:
            violations.append(
                flow_violation_to_static(violation, paths[name])
            )
    return violations
