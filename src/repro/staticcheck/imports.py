"""Import-layering DAG checker — the static counterpart of litmus T1.

T1 demands an *ordered* composition: at runtime the litmus checker
verifies that headers nest in stack order; statically the same
discipline means the package dependency graph must respect the declared
layer order (``core → phys → datalink → network → transport →
sim/verify/analysis``) and must be acyclic.  A lower layer importing a
higher one is an inversion of the order; an import cycle means there is
no order at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .config import StaticCheckConfig
from .loader import Corpus, ModuleInfo
from .report import ERROR, Violation


@dataclass(frozen=True)
class ImportEdge:
    """One intra-corpus import, anchored to its source line."""

    importer: str
    imported: str
    line: int


def resolve_relative(module: ModuleInfo, level: int, target: str | None) -> str | None:
    """Absolute dotted name of a level-``level`` relative import."""
    base_parts = module.package.split(".") if module.package else []
    strip = level - 1
    if strip > len(base_parts):
        return None
    if strip:
        base_parts = base_parts[:-strip]
    if target:
        base_parts = base_parts + target.split(".")
    return ".".join(base_parts) if base_parts else None


def _edge_target(corpus_names: set[str], candidate: str) -> str | None:
    """Longest corpus module matching ``candidate`` (or a prefix of it).

    ``from repro.core import bits`` names the module ``repro.core.bits``;
    ``from repro.core.bits import Bits`` names a symbol inside it — both
    resolve by walking prefixes until a known module matches.
    """
    parts = candidate.split(".")
    while parts:
        name = ".".join(parts)
        if name in corpus_names:
            return name
        parts.pop()
    return None


def collect_imports(corpus: Corpus) -> list[ImportEdge]:
    """Every intra-corpus import edge, module-level and nested alike."""
    names = corpus.module_names()
    edges: list[ImportEdge] = []
    for module in corpus.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = _edge_target(names, alias.name)
                    if target is not None and target != module.name:
                        edges.append(ImportEdge(module.name, target, node.lineno))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = resolve_relative(module, node.level, node.module)
                else:
                    base = node.module
                if base is None:
                    continue
                for alias in node.names:
                    target = _edge_target(names, f"{base}.{alias.name}")
                    if target is None:
                        target = _edge_target(names, base)
                    if target is not None and target != module.name:
                        edges.append(ImportEdge(module.name, target, node.lineno))
    return edges


def check_layer_order(
    corpus: Corpus, edges: list[ImportEdge], config: StaticCheckConfig
) -> list[Violation]:
    """A module may import only from its own tier or below."""
    violations: list[Violation] = []
    for edge in edges:
        importer_tier = config.tier_of(edge.importer, corpus.root)
        imported_tier = config.tier_of(edge.imported, corpus.root)
        if importer_tier >= imported_tier:
            continue
        if config.allows(edge.importer, edge.imported):
            continue
        module = corpus.get(edge.importer)
        violations.append(
            Violation(
                rule="layer-order",
                severity=ERROR,
                module=edge.importer,
                path=str(module.path) if module else edge.importer,
                line=edge.line,
                message=(
                    f"{edge.importer} (tier {importer_tier}) imports "
                    f"{edge.imported} (tier {imported_tier}): a lower layer "
                    f"may not depend on a higher one"
                ),
            )
        )
    return violations


def check_import_cycles(corpus: Corpus, edges: list[ImportEdge]) -> list[Violation]:
    """Tarjan SCC over the module graph; any non-trivial SCC is a cycle."""
    graph: dict[str, set[str]] = {name: set() for name in corpus.module_names()}
    first_line: dict[tuple[str, str], int] = {}
    for edge in edges:
        graph[edge.importer].add(edge.imported)
        first_line.setdefault((edge.importer, edge.imported), edge.line)

    index_counter = [0]
    stack: list[str] = []
    on_stack: set[str] = set()
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    sccs: list[list[str]] = []

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: deep package trees must not hit the
        # interpreter recursion limit.
        work = [(v, iter(sorted(graph[v])))]
        index[v] = lowlink[v] = index_counter[0]
        index_counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, successors = work[-1]
            advanced = False
            for w in successors:
                if w not in index:
                    index[w] = lowlink[w] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                sccs.append(component)

    for name in sorted(graph):
        if name not in index:
            strongconnect(name)

    violations: list[Violation] = []
    for component in sccs:
        is_cycle = len(component) > 1 or (
            component[0] in graph[component[0]]
        )
        if not is_cycle:
            continue
        members = sorted(component)
        anchor = members[0]
        module = corpus.get(anchor)
        line = min(
            (
                first_line[(a, b)]
                for a in members
                for b in members
                if (a, b) in first_line
            ),
            default=0,
        )
        violations.append(
            Violation(
                rule="import-cycle",
                severity=ERROR,
                module=anchor,
                path=str(module.path) if module else anchor,
                line=line,
                message=(
                    "import cycle between "
                    + " <-> ".join(members)
                    + ": the layer order admits no cycles"
                ),
            )
        )
    return violations
