"""Static T3 pass: separate bits and separate state, proven from source.

The runtime T3 litmus check observes an execution and flags foreign
state touches and foreign header bits after the fact.  This pass proves
the same discipline over the AST of every
:class:`~repro.core.sublayer.Sublayer` subclass:

``state-reach``
    A sublayer may not reach *through* its port: ``self.below.state``
    (the provider's private state), ``self.below.below`` (a
    non-adjacent sublayer), ``self.below._anything`` (the port's
    internals), and attribute writes on any foreign
    ``InstrumentedState`` (``other.state.field = ...``) are all errors.

``foreign-header-field``
    A sublayer may only name header fields declared in its own
    ``HEADER`` format: subscripts on the values returned by
    ``unwrap(pdu, self.name)``, subscripts on ``.header`` mappings, the
    literal dicts handed to ``self.wrap``, and the literal dicts handed
    to a resolvable ``FORMAT.pack(...)`` are each checked against the
    declared field set.  :class:`~repro.core.shim.ShimSublayer`
    subclasses are exempt: shims are the sanctioned translation point
    and rewrite foreign formats by design (Section 3.1).
"""

from __future__ import annotations

import ast

from .model import ClassDecl, CorpusModel, HeaderDecl
from .report import ERROR, Violation

#: Attributes a sublayer may legitimately read on its ``below`` port.
PORT_PUBLIC_ATTRS = frozenset({"interface", "provider_name"})


def check_state_reach(model: CorpusModel) -> list[Violation]:
    violations: list[Violation] = []
    for decl in model.sublayer_classes():
        violations.extend(_state_reach_in_class(decl))
    return violations


def _state_reach_in_class(decl: ClassDecl) -> list[Violation]:
    violations: list[Violation] = []
    self_names, below_names = _collect_aliases(decl.node)

    def port_reach(attr: str, rendered: str, line: int) -> None:
        if attr in ("state", "below") or (
            attr.startswith("_") and attr not in PORT_PUBLIC_ATTRS
        ):
            what = {
                "state": "the provider's private state",
                "below": "a non-adjacent sublayer",
            }.get(attr, "the port's internals")
            violations.append(
                Violation(
                    rule="state-reach",
                    severity=ERROR,
                    module=decl.module,
                    path=decl.path,
                    line=line,
                    message=(
                        f"{decl.name}: `{rendered}` reaches {what}; "
                        f"only declared service primitives may cross the "
                        f"interface (T3)"
                    ),
                )
            )

    for node in ast.walk(decl.node):
        if isinstance(node, ast.Attribute) and _is_port(
            node.value, self_names, below_names
        ):
            port_reach(node.attr, ast.unparse(node), node.lineno)
        # getattr(self.below, "state") — same reach, spelled dynamically
        # but with a statically known name.
        if isinstance(node, ast.Call):
            name = _getattr_literal_name(node)
            if name is not None and _is_port(
                node.args[0], self_names, below_names
            ):
                port_reach(name, ast.unparse(node), node.lineno)
        for target in _write_targets(node):
            # other.state.field = ...  (a write into a foreign
            # InstrumentedState; self.state.field writes — through
            # `self` or any alias of it — are the sublayer's own
            # business)
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "state"
                and not _is_self(target.value.value, self_names)
            ):
                violations.append(
                    Violation(
                        rule="state-reach",
                        severity=ERROR,
                        module=decl.module,
                        path=decl.path,
                        line=target.lineno,
                        message=(
                            f"{decl.name}: write to foreign sublayer state "
                            f"`{ast.unparse(target)}`; a sublayer's state is "
                            f"touched only by its owner (T3)"
                        ),
                    )
                )
    return violations


def check_foreign_header_fields(model: CorpusModel) -> list[Violation]:
    violations: list[Violation] = []
    for decl in model.sublayer_classes():
        if model.is_shim(decl):
            continue  # shims translate foreign formats by design
        header, known = model.effective_header(decl)
        if not known:
            continue  # HEADER exists but is unresolvable: don't guess
        fields = frozenset(header.fields) if header is not None else frozenset()
        complete = header.complete if header is not None else True
        for func in _functions(decl.node):
            violations.extend(
                _header_fields_in_function(
                    model, decl, func, header, fields, complete
                )
            )
    return violations


def _header_fields_in_function(
    model: CorpusModel,
    decl: ClassDecl,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    header: HeaderDecl | None,
    fields: frozenset[str],
    complete: bool,
) -> list[Violation]:
    violations: list[Violation] = []
    own_header_vars: set[str] = set()
    wrap_dict_vars: dict[str, list[tuple[str, int]]] = {}

    for node in ast.walk(func):
        # values, inner = unwrap(pdu, self.name)  ->  `values` carries
        # exactly this sublayer's own header fields.
        if isinstance(node, ast.Assign) and _is_unwrap_self(node.value):
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)) and target.elts:
                    first = target.elts[0]
                    if isinstance(first, ast.Name):
                        own_header_vars.add(first.id)
                elif isinstance(target, ast.Name):
                    own_header_vars.add(target.id)
        # header = {"seq": ..., ...}  (candidate argument to self.wrap)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            keys = _literal_keys(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    wrap_dict_vars[target.id] = keys

    def check_keys(keys: list[tuple[str, int]], context: str) -> None:
        for key, line in keys:
            if key not in fields and complete:
                declared = header.name if header is not None else "none"
                violations.append(
                    Violation(
                        rule="foreign-header-field",
                        severity=ERROR,
                        module=decl.module,
                        path=decl.path,
                        line=line,
                        message=(
                            f"{decl.name}.{func.name}: header field {key!r} "
                            f"{context} is not declared in this sublayer's "
                            f"HEADER (format: {declared}); sublayers act only "
                            f"on their own bits (T3)"
                        ),
                    )
                )

    for node in ast.walk(func):
        # values["field"] on an unwrap result
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in own_header_vars
        ):
            key = _literal_index(node)
            if key is not None:
                check_keys([(key, node.lineno)], "read from unwrap()")
        # anything.header["field"]
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "header"
        ):
            key = _literal_index(node)
            if key is not None:
                check_keys([(key, node.lineno)], "accessed via .header")
        if isinstance(node, ast.Call):
            # values.get("field") / X.header.get("field")
            func_expr = node.func
            if isinstance(func_expr, ast.Attribute) and func_expr.attr == "get":
                base = func_expr.value
                is_header_mapping = (
                    isinstance(base, ast.Name) and base.id in own_header_vars
                ) or (isinstance(base, ast.Attribute) and base.attr == "header")
                if is_header_mapping and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and isinstance(
                        first.value, str
                    ):
                        check_keys(
                            [(first.value, node.lineno)], "read via .get()"
                        )
            # self.wrap({...}, inner) / self.wrap(header_var, inner)
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr == "wrap"
                and _is_self(func_expr.value)
                and node.args
            ):
                first = node.args[0]
                if isinstance(first, ast.Dict):
                    check_keys(_literal_keys(first), "written via self.wrap")
                elif (
                    isinstance(first, ast.Name)
                    and first.id in wrap_dict_vars
                ):
                    check_keys(
                        wrap_dict_vars[first.id], "written via self.wrap"
                    )
            # FORMAT.pack({...}) with a statically resolvable format
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr == "pack"
                and isinstance(func_expr.value, ast.Name)
                and node.args
                and isinstance(node.args[0], ast.Dict)
            ):
                resolved = model.resolve(decl.module, func_expr.value.id)
                if isinstance(resolved, HeaderDecl) and resolved.complete:
                    for key, line in _literal_keys(node.args[0]):
                        if key not in resolved.fields:
                            violations.append(
                                Violation(
                                    rule="foreign-header-field",
                                    severity=ERROR,
                                    module=decl.module,
                                    path=decl.path,
                                    line=line,
                                    message=(
                                        f"{decl.name}.{func.name}: field "
                                        f"{key!r} packed into format "
                                        f"{resolved.name!r} is not declared "
                                        f"there (T3)"
                                    ),
                                )
                            )
    return violations


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _functions(
    node: ast.ClassDef,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _is_self(
    node: ast.expr, self_names: frozenset[str] | set[str] = frozenset({"self"})
) -> bool:
    return isinstance(node, ast.Name) and node.id in self_names


def _is_self_below(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "below"
        and _is_self(node.value)
    )


def _is_port(
    node: ast.expr, self_names: set[str], below_names: set[str]
) -> bool:
    """Does ``node`` denote this sublayer's ``below`` port?

    Either ``<self-ish>.below`` or a local name previously bound to it
    (``port = self.below``).
    """
    if isinstance(node, ast.Attribute):
        return node.attr == "below" and _is_self(node.value, self_names)
    return isinstance(node, ast.Name) and node.id in below_names


def _collect_aliases(root: ast.AST) -> tuple[set[str], set[str]]:
    """Names rebinding ``self`` and ``self.below`` anywhere in the class.

    A straight-line dataflow approximation: ``me = self`` makes ``me``
    self-ish, ``port = me.below`` makes ``port`` a port name.  Iterated
    to a fixed point so chained rebindings in any statement order
    resolve; scoping is class-wide (collisions over-approximate, which
    for a checker errs on the reporting side).
    """
    self_names: set[str] = {"self"}
    below_names: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(root):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if (
                    _is_self(value, self_names)
                    and target.id not in self_names
                ):
                    self_names.add(target.id)
                    changed = True
                elif (
                    isinstance(value, ast.Attribute)
                    and value.attr == "below"
                    and _is_self(value.value, self_names)
                    and target.id not in below_names
                ):
                    below_names.add(target.id)
                    changed = True
    return self_names, below_names


def _getattr_literal_name(node: ast.Call) -> str | None:
    """The attribute name of a ``getattr(x, "literal", ...)`` call."""
    if (
        isinstance(node.func, ast.Name)
        and node.func.id == "getattr"
        and len(node.args) >= 2
        and isinstance(node.args[1], ast.Constant)
        and isinstance(node.args[1].value, str)
    ):
        return node.args[1].value
    return None


def _is_unwrap_self(node: ast.expr) -> bool:
    """Matches ``unwrap(<expr>, self.name)``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )
    if name != "unwrap" or len(node.args) < 2:
        return False
    owner = node.args[1]
    return (
        isinstance(owner, ast.Attribute)
        and owner.attr == "name"
        and _is_self(owner.value)
    )


def _write_targets(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def _literal_index(node: ast.Subscript) -> str | None:
    index = node.slice
    if isinstance(index, ast.Constant) and isinstance(index.value, str):
        return index.value
    return None


def _literal_keys(node: ast.Dict) -> list[tuple[str, int]]:
    keys: list[tuple[str, int]] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append((key.value, key.lineno))
    return keys
