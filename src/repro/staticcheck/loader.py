"""Discovery and parsing of the module corpus to check.

The checker never imports the code under test — it parses every module
under a package root with :mod:`ast` and works from the trees.  That is
what lets the fixture packages in ``tests/staticcheck`` contain
deliberately broken code without breaking the test run itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed module of the corpus."""

    name: str  # dotted module name, e.g. "repro.transport.sublayered.rd"
    path: Path
    tree: ast.Module

    @property
    def package(self) -> str:
        """The package containing this module (itself, for ``__init__``)."""
        if self.path.name == "__init__.py":
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""


@dataclass(frozen=True)
class Corpus:
    """All parsed modules under one package root."""

    root: str  # root package name, e.g. "repro"
    modules: tuple[ModuleInfo, ...]

    def module_names(self) -> set[str]:
        return {m.name for m in self.modules}

    def get(self, name: str) -> ModuleInfo | None:
        for m in self.modules:
            if m.name == name:
                return m
        return None


def load_package(root_dir: str | Path) -> Corpus:
    """Parse every ``*.py`` file under ``root_dir`` into a :class:`Corpus`.

    ``root_dir`` must be a package directory (contain ``__init__.py``);
    its basename becomes the root package name.  Files that fail to
    parse raise :class:`~repro.core.errors.ConfigurationError` — a
    syntax error in the corpus is a usage error, not a finding.
    """
    root_path = Path(root_dir).resolve()
    if not root_path.is_dir():
        raise ConfigurationError(f"not a directory: {root_dir}")
    if not (root_path / "__init__.py").exists():
        raise ConfigurationError(
            f"{root_dir} is not a package (no __init__.py)"
        )
    root_name = root_path.name
    modules: list[ModuleInfo] = []
    for path in sorted(root_path.rglob("*.py")):
        relative = path.relative_to(root_path)
        parts = list(relative.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        name = ".".join([root_name, *parts]) if parts else root_name
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError as exc:
            raise ConfigurationError(f"cannot parse {path}: {exc}") from exc
        modules.append(ModuleInfo(name=name, path=path, tree=tree))
    return Corpus(root=root_name, modules=tuple(modules))
