"""A static model of the corpus: declarations the passes reason about.

The T2/T3 passes need to know, without importing anything, what each
module *declares*: which :class:`~repro.core.header.HeaderFormat`
fields exist, which :class:`~repro.core.interface.ServiceInterface`
primitives exist, and which classes are
:class:`~repro.core.sublayer.Sublayer` subclasses (and with which
``HEADER``/``SERVICE``).  This module builds that model by evaluating
the *declaration subset* of Python — literal ``Field``/``Primitive``
lists inside ``HeaderFormat``/``ServiceInterface``/``concat_formats``
calls, assignments of those values to module- or class-level names, and
imports of those names between modules.

Anything outside that subset evaluates to :data:`UNKNOWN`, and the
passes skip rather than guess — the checker reports only what it can
prove from source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable

from .imports import resolve_relative
from .loader import Corpus, ModuleInfo


class _Unknown:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNKNOWN"


#: Sentinel for expressions the declaration evaluator cannot resolve.
UNKNOWN = _Unknown()

#: Class names recognised as sublayer roots even when the class itself
#: is outside the corpus (fixture packages import them from repro).
SUBLAYER_ROOTS = frozenset({"Sublayer"})
SHIM_ROOTS = frozenset({"ShimSublayer"})


@dataclass(frozen=True)
class HeaderDecl:
    """Statically resolved header format: its name and field names."""

    name: str
    fields: tuple[str, ...]
    complete: bool  # False if any field expression was unresolvable


@dataclass(frozen=True)
class InterfaceDecl:
    """Statically resolved service interface declaration."""

    name: str
    primitives: tuple[str, ...]
    complete: bool
    module: str
    line: int


@dataclass
class ClassDecl:
    """One class definition plus its resolved sublayer attributes."""

    name: str
    module: str
    path: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    header: HeaderDecl | None = None
    header_known: bool = True  # False when HEADER was set but unresolvable
    service: InterfaceDecl | None = None


@dataclass
class CorpusModel:
    """Everything the T2/T3 passes need, resolved once up front."""

    corpus: Corpus
    classes: dict[str, ClassDecl] = field(default_factory=dict)
    interfaces: list[InterfaceDecl] = field(default_factory=list)
    #: ``(module, symbol) -> HeaderDecl | InterfaceDecl | UNKNOWN | ...``,
    #: installed by :func:`build_model` for passes that need to resolve
    #: names found inside method bodies (e.g. ``FORMAT.pack``).
    resolve: Callable[[str, str], object] = lambda module, symbol: UNKNOWN

    def declared_primitives(self) -> set[str]:
        names: set[str] = set()
        for decl in self.interfaces:
            names.update(decl.primitives)
        return names

    def interfaces_declaring(self, primitive: str) -> list[str]:
        return sorted(
            d.name for d in self.interfaces if primitive in d.primitives
        )

    # -- class hierarchy (name-based, within-corpus) -------------------
    def _reaches(self, class_name: str, roots: frozenset[str]) -> bool:
        seen: set[str] = set()
        frontier = [class_name]
        while frontier:
            name = frontier.pop()
            if name in roots:
                return True
            if name in seen:
                continue
            seen.add(name)
            decl = self.classes.get(name)
            if decl is not None:
                frontier.extend(decl.bases)
        return False

    def is_sublayer(self, decl: ClassDecl) -> bool:
        return any(self._reaches(base, SUBLAYER_ROOTS) for base in decl.bases)

    def is_shim(self, decl: ClassDecl) -> bool:
        return any(self._reaches(base, SHIM_ROOTS) for base in decl.bases)

    def sublayer_classes(self) -> list[ClassDecl]:
        return [d for d in self.classes.values() if self.is_sublayer(d)]

    def effective_header(self, decl: ClassDecl) -> tuple[HeaderDecl | None, bool]:
        """(header, known) for a class, following base classes.

        ``known=False`` means a ``HEADER`` assignment exists somewhere in
        the chain but could not be resolved — passes must skip rather
        than report false positives against an empty field set.
        """
        seen: set[str] = set()
        frontier = [decl.name]
        while frontier:
            name = frontier.pop(0)
            if name in seen:
                continue
            seen.add(name)
            d = self.classes.get(name)
            if d is None:
                continue
            if d.header is not None or not d.header_known:
                return d.header, d.header_known
            frontier.extend(d.bases)
        return None, True


def build_model(corpus: Corpus) -> CorpusModel:
    builder = _ModelBuilder(corpus)
    return builder.build()


class _ModelBuilder:
    def __init__(self, corpus: Corpus):
        self.corpus = corpus
        # module name -> symbol -> ast expression (module-level assignment)
        self.assignments: dict[str, dict[str, ast.expr]] = {}
        # module name -> symbol -> (source module, source symbol)
        self.imports: dict[str, dict[str, tuple[str, str]]] = {}
        self._resolved: dict[tuple[str, str], object] = {}

    # ------------------------------------------------------------------
    def build(self) -> CorpusModel:
        for module in self.corpus.modules:
            self._index_module(module)
        model = CorpusModel(corpus=self.corpus, resolve=self._resolve_symbol)
        for module in self.corpus.modules:
            self._collect_declarations(module, model)
        return model

    def _index_module(self, module: ModuleInfo) -> None:
        assigns: dict[str, ast.expr] = {}
        imports: dict[str, tuple[str, str]] = {}
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigns[target.id] = node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    assigns[node.target.id] = node.value
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = resolve_relative(module, node.level, node.module)
                else:
                    base = node.module
                if base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports[local] = (base, alias.name)
        self.assignments[module.name] = assigns
        self.imports[module.name] = imports

    # ------------------------------------------------------------------
    def _collect_declarations(self, module: ModuleInfo, model: CorpusModel) -> None:
        # module-level interface declarations (rare but legal)
        for symbol, expr in self.assignments[module.name].items():
            value = self._eval(module.name, expr)
            if isinstance(value, InterfaceDecl):
                model.interfaces.append(value)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                base.id if isinstance(base, ast.Name) else _attr_tail(base)
                for base in node.bases
            )
            decl = ClassDecl(
                name=node.name,
                module=module.name,
                path=str(module.path),
                node=node,
                bases=tuple(b for b in bases if b),
            )
            for stmt in node.body:
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value_expr = stmt.value
                if value_expr is None:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "HEADER":
                        value = self._eval(module.name, value_expr)
                        if isinstance(value, HeaderDecl):
                            decl.header = value
                        elif value is None:
                            decl.header = None
                        else:
                            decl.header_known = False
                    elif target.id == "SERVICE":
                        value = self._eval(module.name, value_expr)
                        if isinstance(value, InterfaceDecl):
                            decl.service = value
                            model.interfaces.append(value)
            model.classes[decl.name] = decl

    # ------------------------------------------------------------------
    # The declaration evaluator
    # ------------------------------------------------------------------
    def _resolve_symbol(self, module_name: str, symbol: str) -> object:
        key = (module_name, symbol)
        if key in self._resolved:
            return self._resolved[key]
        self._resolved[key] = UNKNOWN  # cycle guard
        result: object = UNKNOWN
        assigns = self.assignments.get(module_name, {})
        imports = self.imports.get(module_name, {})
        if symbol in assigns:
            result = self._eval(module_name, assigns[symbol])
        elif symbol in imports:
            source_module, source_symbol = imports[symbol]
            if source_module in self.assignments:
                result = self._resolve_symbol(source_module, source_symbol)
            elif f"{source_module}.{source_symbol}" in self.assignments:
                # ``from package import module`` style: nothing to resolve
                result = UNKNOWN
        self._resolved[key] = result
        return result

    def _eval(self, module_name: str, expr: ast.expr) -> object:
        if isinstance(expr, ast.Constant):
            return expr.value
        if isinstance(expr, ast.Name):
            return self._resolve_symbol(module_name, expr.id)
        if isinstance(expr, (ast.List, ast.Tuple)):
            return [self._eval(module_name, e) for e in expr.elts]
        if isinstance(expr, ast.Call):
            return self._eval_call(module_name, expr)
        return UNKNOWN

    def _eval_call(self, module_name: str, call: ast.Call) -> object:
        func = call.func
        func_name = (
            func.id if isinstance(func, ast.Name) else _attr_tail(func)
        )
        if func_name in ("Field", "Primitive"):
            name = self._call_arg(module_name, call, 0, "name")
            return name if isinstance(name, str) else UNKNOWN
        if func_name == "HeaderFormat":
            return self._eval_header_format(module_name, call)
        if func_name == "ServiceInterface":
            return self._eval_service_interface(module_name, call)
        if func_name == "concat_formats":
            return self._eval_concat(module_name, call)
        return UNKNOWN

    def _call_arg(
        self, module_name: str, call: ast.Call, position: int, keyword: str
    ) -> object:
        for kw in call.keywords:
            if kw.arg == keyword:
                return self._eval(module_name, kw.value)
        if len(call.args) > position:
            return self._eval(module_name, call.args[position])
        return UNKNOWN

    def _eval_header_format(self, module_name: str, call: ast.Call) -> object:
        name = self._call_arg(module_name, call, 0, "name")
        fields_value = self._call_arg(module_name, call, 1, "fields")
        if not isinstance(name, str):
            return UNKNOWN
        fields, complete = _string_list(fields_value)
        return HeaderDecl(name=name, fields=tuple(fields), complete=complete)

    def _eval_service_interface(self, module_name: str, call: ast.Call) -> object:
        name = self._call_arg(module_name, call, 0, "name")
        prims_value = self._call_arg(module_name, call, 1, "primitives")
        if not isinstance(name, str):
            return UNKNOWN
        primitives, complete = _string_list(prims_value)
        return InterfaceDecl(
            name=name,
            primitives=tuple(primitives),
            complete=complete,
            module=module_name,
            line=call.lineno,
        )

    def _eval_concat(self, module_name: str, call: ast.Call) -> object:
        name = self._call_arg(module_name, call, 0, "name")
        if not isinstance(name, str):
            return UNKNOWN
        fields: list[str] = []
        complete = True
        for arg in call.args[1:]:
            value = self._eval(module_name, arg)
            if isinstance(value, HeaderDecl):
                complete = complete and value.complete
                fields.extend(f"{value.name}.{f}" for f in value.fields)
            else:
                complete = False
        return HeaderDecl(name=name, fields=tuple(fields), complete=complete)


def _string_list(value: object) -> tuple[list[str], bool]:
    """Flatten an evaluated list to its string members, noting gaps."""
    if not isinstance(value, list):
        return [], False
    out: list[str] = []
    complete = True
    for item in value:
        if isinstance(item, str):
            out.append(item)
        else:
            complete = False
    return out, complete


def _attr_tail(node: ast.expr) -> str:
    """Last attribute segment of a dotted expression (``a.b.C`` -> ``C``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""
