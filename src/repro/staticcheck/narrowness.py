"""Static T2 pass: narrow, declared interfaces between adjacent sublayers.

The runtime T2 litmus check counts the primitives actually exercised
through each :class:`~repro.core.interface.BoundPort` and verifies
adjacency from the interface log.  Statically:

``undeclared-primitive``
    Every call a sublayer makes through its port (``self.below.p(...)``)
    must name a primitive declared by *some*
    :class:`~repro.core.interface.ServiceInterface` in the corpus.  The
    concrete provider is chosen at stack-assembly time, so the static
    check is the necessary condition: a primitive no interface declares
    can never be bound, and :class:`BoundPort.__getattr__` would reject
    it at runtime — this pass rejects it before that.

``interface-width``
    A declared interface wider than the configured maximum (default:
    the runtime check's ``DEFAULT_MAX_INTERFACE_WIDTH``) is reported as
    a warning — statically wide means the narrowness argument rests on
    callers' restraint, which T2 does not allow.
"""

from __future__ import annotations

import ast

from .config import StaticCheckConfig
from .isolation import PORT_PUBLIC_ATTRS, _is_self_below
from .model import CorpusModel
from .report import ERROR, WARNING, Violation


def check_undeclared_primitives(model: CorpusModel) -> list[Violation]:
    declared = model.declared_primitives()
    violations: list[Violation] = []
    for decl in model.sublayer_classes():
        for node in ast.walk(decl.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and _is_self_below(node.func.value)
            ):
                continue
            primitive = node.func.attr
            if primitive in declared or primitive in PORT_PUBLIC_ATTRS:
                continue
            violations.append(
                Violation(
                    rule="undeclared-primitive",
                    severity=ERROR,
                    module=decl.module,
                    path=decl.path,
                    line=node.lineno,
                    message=(
                        f"{decl.name}: `self.below.{primitive}(...)` names a "
                        f"primitive no ServiceInterface declares; ports carry "
                        f"declared primitives only (T2)"
                    ),
                )
            )
    return violations


def check_interface_widths(
    model: CorpusModel, config: StaticCheckConfig
) -> list[Violation]:
    violations: list[Violation] = []
    seen: set[tuple[str, str, int]] = set()
    for decl in model.interfaces:
        key = (decl.module, decl.name, decl.line)
        if key in seen:
            continue
        seen.add(key)
        width = len(decl.primitives)
        if width <= config.max_interface_width:
            continue
        module = model.corpus.get(decl.module)
        violations.append(
            Violation(
                rule="interface-width",
                severity=WARNING,
                module=decl.module,
                path=str(module.path) if module else decl.module,
                line=decl.line,
                message=(
                    f"interface {decl.name!r} declares {width} primitives "
                    f"(> {config.max_interface_width}): not narrow (T2)"
                ),
            )
        )
    return violations
