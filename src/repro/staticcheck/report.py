"""The static checker's report: rule violations in the shared format.

A run produces one :class:`Violation` per finding and folds them into a
:class:`StaticReport` — the static mirror of
:class:`~repro.core.litmus.LitmusReport`, built on the same
:class:`~repro.core.report.CheckResult`/:class:`~repro.core.report.Report`
types so CI and tests consume both checkers' output identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.errors import LitmusFailure
from ..core.report import CheckResult, Report

ERROR = "error"
WARNING = "warning"

#: Every rule the checker knows, in report order, with the litmus test
#: it statically mirrors.
ALL_RULES: tuple[tuple[str, str], ...] = (
    ("layer-order", "T1"),
    ("import-cycle", "T1"),
    ("state-reach", "T3"),
    ("foreign-header-field", "T3"),
    ("undeclared-primitive", "T2"),
    ("interface-width", "T2"),
    ("batch-parity", "T2"),
)

#: The symbolic data-plane rules (``--flow``): reachability properties
#: (no-escape, blackhole-freedom, loop-freedom) roll up under T4,
#: tenant isolation under T5.
FLOW_RULES: tuple[tuple[str, str], ...] = (
    ("flow-reachability", "T4"),
    ("flow-isolation", "T5"),
)


@dataclass(frozen=True)
class Violation:
    """One static finding, anchored to a source location."""

    rule: str
    severity: str  # ERROR or WARNING
    module: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: {self.severity}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class StaticReport(Report):
    """Per-rule results plus the flat violation list."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == ERROR]

    @property
    def warnings(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == WARNING]

    def require(self) -> None:
        """Raise :class:`LitmusFailure` on the first failed rule."""
        for r in self.results:
            if not r.passed:
                raise LitmusFailure(r.name, "; ".join(r.details) or "failed")

    def to_dict(self) -> dict[str, Any]:
        data = super().to_dict()
        data["violations"] = [v.to_dict() for v in self.violations]
        return data

    def as_dict(self) -> dict[str, Any]:
        """Canonical machine-readable form (the ``--format json`` payload).

        Deterministically ordered: rules in declaration order, violations
        sorted by (rule, path, line) — diff-clean across runs.
        """
        return {
            "passed": self.passed,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "results": [r.to_dict() for r in self.results],
            "violations": [v.to_dict() for v in self.violations],
        }

    def text(self) -> str:
        """Human-readable emitter: one line per violation, then summary."""
        lines = [v.format() for v in self.violations]
        lines.append(self.summary())
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def github(self) -> str:
        """GitHub Actions workflow-command emitter (``--format github``).

        One ``::error``/``::warning`` annotation per violation — the
        Checks UI pins each finding to its file and line — plus a
        ``::notice`` summary so a clean run still leaves a mark.
        """
        lines = []
        for v in self.violations:
            command = "error" if v.severity == ERROR else "warning"
            location = f"file={v.path}" + (f",line={v.line}" if v.line else "")
            lines.append(
                f"::{command} {location},title=staticcheck {v.rule}::"
                f"{_escape_property(v.message)}"
            )
        passing = sum(1 for r in self.results if r.passed)
        lines.append(
            f"::notice title=staticcheck::{passing}/{len(self.results)} "
            f"rules passed — {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)


def build_report(
    violations: list[Violation],
    checked_modules: int,
    strict: bool = False,
    base_dir: str | Path | None = None,
    rules: tuple[tuple[str, str], ...] = ALL_RULES,
) -> StaticReport:
    """Fold violations into per-rule :class:`CheckResult` entries.

    A rule fails on any error-severity violation (or any violation at
    all under ``strict``).  ``base_dir`` relativises paths for stable,
    machine-independent output.  ``rules`` is the set reported on —
    ``ALL_RULES`` plus ``FLOW_RULES`` when the flow analyzer ran.
    """
    if base_dir is not None:
        violations = [_relativize(v, Path(base_dir)) for v in violations]
    ordered = sorted(violations, key=lambda v: (v.rule, v.path, v.line))
    results: list[CheckResult] = []
    for rule, litmus in rules:
        mine = [v for v in ordered if v.rule == rule]
        failing = [
            v for v in mine if v.severity == ERROR or (strict and mine)
        ]
        results.append(
            CheckResult(
                name=rule,
                passed=not failing,
                details=[v.format() for v in mine],
                metrics={
                    "litmus": litmus,
                    "errors": sum(1 for v in mine if v.severity == ERROR),
                    "warnings": sum(1 for v in mine if v.severity == WARNING),
                    "checked_modules": checked_modules,
                },
            )
        )
    return StaticReport(results=results, violations=ordered)


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value (GitHub's own rules)."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _relativize(violation: Violation, base: Path) -> Violation:
    try:
        relative = Path(violation.path).resolve().relative_to(base.resolve())
    except ValueError:
        return violation
    return Violation(
        rule=violation.rule,
        severity=violation.severity,
        module=violation.module,
        path=str(relative),
        line=violation.line,
        message=violation.message,
    )
