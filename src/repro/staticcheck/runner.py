"""Orchestration: run every static rule over a package and report.

``run_staticcheck`` is the library entry point (the CLI in
``__main__`` is a thin wrapper): load the corpus, build the model, run
the seven AST rules — plus, with ``flow=True``, the two symbolic
data-plane rules (T4/T5) — and fold the findings into a
:class:`~repro.staticcheck.report.StaticReport`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..par.cache import ProofCache
from .batchparity import check_batch_parity
from .config import StaticCheckConfig
from .imports import check_import_cycles, check_layer_order, collect_imports
from .isolation import check_foreign_header_fields, check_state_reach
from .loader import load_package
from .model import build_model
from .narrowness import check_interface_widths, check_undeclared_primitives
from .report import ALL_RULES, FLOW_RULES, StaticReport, Violation, build_report


def run_staticcheck(
    root_dir: str | Path,
    config: StaticCheckConfig | None = None,
    base_dir: str | Path | None = None,
    flow: bool = False,
    flow_topologies: Iterable[str] | None = None,
    flow_specs: Iterable[str | Path] = (),
    flow_cache: ProofCache | None = None,
) -> StaticReport:
    """Run all seven static rules over the package at ``root_dir``.

    ``flow=True`` (or any ``flow_specs``) also runs the symbolic
    reachability/isolation analysis and reports its findings under the
    ``flow-reachability`` / ``flow-isolation`` rules.
    """
    config = config if config is not None else StaticCheckConfig()
    corpus = load_package(root_dir)
    edges = collect_imports(corpus)
    model = build_model(corpus)
    violations: list[Violation] = []
    violations += check_layer_order(corpus, edges, config)
    violations += check_import_cycles(corpus, edges)
    violations += check_state_reach(model)
    violations += check_foreign_header_fields(model)
    violations += check_undeclared_primitives(model)
    violations += check_interface_widths(model, config)
    violations += check_batch_parity(model)
    rules = ALL_RULES
    flow_specs = list(flow_specs)
    if flow or flow_specs:
        # Imported here so a plain T1-T3 run never touches the engine.
        from .flowcheck import check_flow_properties

        violations += check_flow_properties(
            # --flow-spec alone analyzes just those files; --flow adds
            # the example topologies (all of them unless named).
            topologies=(flow_topologies if flow else []),
            spec_files=flow_specs,
            cache=flow_cache,
        )
        rules = ALL_RULES + FLOW_RULES
    return build_report(
        violations,
        checked_modules=len(corpus.modules),
        strict=config.strict,
        base_dir=base_dir,
        rules=rules,
    )
