"""Orchestration: run every static rule over a package and report.

``run_staticcheck`` is the library entry point (the CLI in
``__main__`` is a thin wrapper): load the corpus, build the model, run
the six rules, fold the findings into a
:class:`~repro.staticcheck.report.StaticReport`.
"""

from __future__ import annotations

from pathlib import Path

from .config import StaticCheckConfig
from .imports import check_import_cycles, check_layer_order, collect_imports
from .isolation import check_foreign_header_fields, check_state_reach
from .loader import load_package
from .model import build_model
from .narrowness import check_interface_widths, check_undeclared_primitives
from .report import StaticReport, Violation, build_report


def run_staticcheck(
    root_dir: str | Path,
    config: StaticCheckConfig | None = None,
    base_dir: str | Path | None = None,
) -> StaticReport:
    """Run all six static rules over the package at ``root_dir``."""
    config = config if config is not None else StaticCheckConfig()
    corpus = load_package(root_dir)
    edges = collect_imports(corpus)
    model = build_model(corpus)
    violations: list[Violation] = []
    violations += check_layer_order(corpus, edges, config)
    violations += check_import_cycles(corpus, edges)
    violations += check_state_reach(model)
    violations += check_foreign_header_fields(model)
    violations += check_undeclared_primitives(model)
    violations += check_interface_widths(model, config)
    return build_report(
        violations,
        checked_modules=len(corpus.modules),
        strict=config.strict,
        base_dir=base_dir,
    )
