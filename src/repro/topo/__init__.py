"""repro.topo — fleet-scale topology simulation with a sharded DES.

The paper's claim is that sublayering composes at every scale; this
package takes the repo's host-pair stacks to *networks*: declarative
topology generators (star, ring, grid, fat-tree, seeded random) over
the Fig 4 router sublayers, partitioned into regions and executed
either serially or as a conservative-lookahead parallel simulation on
forked workers — with the two executions provably byte-identical on
delivery order, metrics, and traces.

Layer position: tier 8, above :mod:`repro.faults` — topo may import
compose/network/par/obs/faults; nothing below it imports topo (the
staticcheck tier table enforces both directions).
"""

from .links import FleetChannel
from .region import RegionWorld
from .runner import FleetResult, run_fleet, write_artifacts
from .spec import (
    KINDS,
    FleetSpec,
    assign_regions,
    fat_tree,
    flow_spec,
    grid,
    make_spec,
    random_graph,
    ring,
    star,
    static_fibs,
)
from .traffic import Flow, plan_traffic

__all__ = [
    "KINDS",
    "FleetChannel",
    "FleetResult",
    "FleetSpec",
    "Flow",
    "RegionWorld",
    "assign_regions",
    "fat_tree",
    "flow_spec",
    "grid",
    "make_spec",
    "plan_traffic",
    "random_graph",
    "ring",
    "run_fleet",
    "star",
    "static_fibs",
    "write_artifacts",
]
