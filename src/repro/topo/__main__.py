"""Fleet CLI: ``python -m repro.topo``.

Three subcommands:

* ``run`` — generate a topology, simulate traffic serially or sharded,
  and write the canonical artifact set (deliveries, merged spans,
  merged metrics).  CI runs it twice — ``--mode serial`` and
  ``--mode sharded`` — and byte-compares the artifacts.
* ``campaign`` — fleet-scale fault campaigns (link cut, partition)
  through the :mod:`repro.faults` scenario machinery.
* ``flow`` — export a generated topology's oracle FIBs as a flow-spec
  document for ``python -m repro.flow --spec`` (T4/T5).

Examples::

    python -m repro.topo run --kind grid --nodes 64 --shards 2 --mode sharded
    python -m repro.topo run --kind ring --nodes 12 --routing protocol \\
        --duration 40 --out-dir fleet-artifacts
    python -m repro.topo campaign --matrix fleet-smoke --seeds 2
    python -m repro.topo flow --kind fat-tree --nodes 36 --out fleet.json
"""

from __future__ import annotations

import argparse
import json
import sys

from ..core.errors import ConfigurationError
from .campaign import MATRICES
from .runner import run_fleet, write_artifacts
from .spec import KINDS, flow_spec, make_spec


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kind",
        choices=KINDS,
        default="grid",
        help="topology generator (default: grid)",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=64,
        metavar="N",
        help="approximate node count (default: 64)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root seed (default: 0)"
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.topo",
        description="Fleet-scale topology simulation (sharded parallel DES).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate a generated fleet")
    _add_spec_arguments(run_p)
    run_p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="region count for the partition (default: 1)",
    )
    run_p.add_argument(
        "--mode",
        choices=("serial", "sharded"),
        default="serial",
        help="conductor mode (default: serial)",
    )
    run_p.add_argument(
        "--routing",
        choices=("static", "protocol"),
        default="static",
        help="static oracle FIBs or live hello+LSP convergence",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="sharded mode: >=2 forks one worker per region; "
        "0 = all CPUs (default: 1, in-process windows)",
    )
    run_p.add_argument(
        "--flows", type=int, default=8, help="traffic flows (default: 8)"
    )
    run_p.add_argument(
        "--packets",
        type=int,
        default=10,
        help="packets per flow (default: 10)",
    )
    run_p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="virtual-second horizon (default: run to quiescence; "
        "required for --routing protocol)",
    )
    run_p.add_argument(
        "--out-dir",
        metavar="DIR",
        help="write deliveries.jsonl, spans*.jsonl, metrics.json here",
    )
    run_p.add_argument(
        "--json",
        action="store_true",
        help="print the run summary as JSON instead of text",
    )

    camp_p = sub.add_parser("campaign", help="fleet fault campaigns")
    camp_p.add_argument(
        "--matrix",
        choices=sorted(MATRICES),
        default="fleet-smoke",
        help="fleet scenario matrix (default: fleet-smoke)",
    )
    camp_p.add_argument(
        "--seeds",
        type=int,
        default=2,
        metavar="N",
        help="trials per scenario, seeds 0..N-1 (default: 2)",
    )
    camp_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for trials; 0 = all CPUs (default: 1)",
    )
    camp_p.add_argument(
        "--out", metavar="FILE.json", help="write the JSON report here"
    )

    flow_p = sub.add_parser("flow", help="export a flow-spec document")
    _add_spec_arguments(flow_p)
    flow_p.add_argument(
        "--ttl", type=int, default=32, help="spec TTL field (default: 32)"
    )
    flow_p.add_argument(
        "--out", metavar="FILE.json", help="write the spec here (default: stdout)"
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        return _cmd_flow(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_run(args: argparse.Namespace) -> int:
    spec = make_spec(args.kind, args.nodes, shards=args.shards, seed=args.seed)
    result = run_fleet(
        spec,
        mode=args.mode,
        routing=args.routing,
        flows=args.flows,
        packets=args.packets,
        duration=args.duration,
        jobs=args.jobs,
    )
    if args.out_dir:
        write_artifacts(result, args.out_dir)
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print(
            f"{summary['spec']}: {summary['nodes']} nodes / "
            f"{summary['edges']} edges, {summary['shards']} shard(s), "
            f"{summary['mode']}/{summary['routing']}"
        )
        print(
            f"  delivered {summary['delivered']} packets over "
            f"{summary['events']} events"
            + (
                f" in {result.extras['windows']} windows"
                if "windows" in result.extras
                else ""
            )
        )
        if summary["converged"] is not None:
            print(f"  converged: {summary['converged']}")
        if args.out_dir:
            print(f"  artifacts: {args.out_dir}")
    if result.converged is False:
        return 1
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    scenarios = MATRICES[args.matrix]()
    seeds = list(range(args.seeds))
    results = [s.run(seeds, jobs=args.jobs) for s in scenarios]
    report = {
        "matrix": args.matrix,
        "seeds": seeds,
        "ok": all(r.ok for r in results),
        "scenarios": [r.as_dict() for r in results],
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            json.dump(report, fp, indent=1, sort_keys=True)
            fp.write("\n")
    for result in results:
        status = "green" if result.ok else "RED"
        print(f"  {result.name:<32} {status} ({len(result.trials)} trials)")
        for trial in result.trials:
            for violation in trial.violations:
                print(
                    f"    seed {trial.seed}: {violation.monitor}: "
                    f"{violation.detail}"
                )
    print("resilient" if report["ok"] else "INVARIANT VIOLATIONS")
    return 0 if report["ok"] else 1


def _cmd_flow(args: argparse.Namespace) -> int:
    spec = make_spec(args.kind, args.nodes, seed=args.seed)
    document = flow_spec(spec, ttl=args.ttl)
    text = json.dumps(document, indent=1, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            fp.write(text)
        print(f"wrote {document['name']} flow spec to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
