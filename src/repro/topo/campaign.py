"""Fleet-wide fault campaigns: link cuts and partitions at scale.

These scenarios plug generated fleet topologies into the
:mod:`repro.faults` campaign machinery — the dependency arrow points
downward (topo imports faults, never the reverse).  Each trial builds
the declared graph as a :class:`~repro.network.topology.Topology`
(routers joined by impairable :class:`ManagedLink`\\ s), runs LSP
flooding to convergence, injects the fleet-scale fault — a backbone
link cut, or a multi-link partition that splits the graph — and
demands reconvergence plus post-repair delivery, judged by the same
:class:`~repro.faults.monitors.ReconvergenceMonitor` the host-pair
scenarios use.
"""

from __future__ import annotations

from typing import Callable

from ..faults.monitors import (
    Evidence,
    Monitor,
    NoEscapeMonitor,
    ReconvergenceMonitor,
)
from ..faults.scenarios import Scenario
from ..network import LinkState, Topology
from ..obs import MetricsRegistry
from ..sim import Simulator
from .spec import FleetSpec, adjacency, make_spec


class FleetScenario(Scenario):
    """Base for fleet trials: build the spec's graph, converge, fault it."""

    profile = "fleet"

    def __init__(self, spec: FleetSpec, converge_timeout: float = 60.0):
        """Run over ``spec``'s graph with a per-phase convergence budget."""
        self.spec = spec
        self.converge_timeout = converge_timeout

    def monitors(self) -> list[Monitor]:
        """Reconvergence observations plus the no-escape check."""
        return [ReconvergenceMonitor(), NoEscapeMonitor()]

    def cut_edges(self) -> list[tuple[int, int]]:
        """The edges this scenario fails mid-trial."""
        raise NotImplementedError

    def probe(self) -> tuple[int, int]:
        """A (src, dst) pair expected to span the faulted part."""
        a, b = self.cut_edges()[0]
        return a, b

    def execute(self, seed: int) -> Evidence:
        """Converge, cut, demand reconvergence, repair, demand it again."""
        sim = Simulator()
        registry = MetricsRegistry()
        self._observe(registry)
        evidence = Evidence(scenario=self.name, seed=seed, metrics=registry)
        observations: dict[str, bool] = {}
        evidence.extras["convergence"] = observations
        try:
            topo = Topology.build(
                sim,
                list(self.spec.edges),
                routing_cls=LinkState,
                seed=seed,
            )
            topo.start()
            observations["initial-convergence"] = (
                topo.converge(timeout=self.converge_timeout) is not None
            )
            src, dst = self.probe()
            topo.send_data(src, dst, b"before")
            sim.run(until=sim.now + 2)
            observations["delivery-before-fault"] = any(
                (p.src, p.dst) == (src, dst) for p in topo.delivered
            )

            for a, b in self.cut_edges():
                topo.fail_link(a, b)
            observations["reconvergence-after-fault"] = (
                topo.converge(timeout=self.converge_timeout) is not None
            )
            observations["routes-correct-after-fault"] = all(
                topo.routes_correct(source) for source in topo.routers
            )

            for a, b in self.cut_edges():
                topo.restore_link(a, b)
            observations["reconvergence-after-repair"] = (
                topo.converge(timeout=self.converge_timeout) is not None
            )
            delivered_before = len(topo.delivered)
            topo.send_data(src, dst, b"after")
            sim.run(until=sim.now + 2)
            observations["delivery-after-repair"] = (
                len(topo.delivered) > delivered_before
            )
        except Exception as exc:  # noqa: BLE001 — escapes ARE the finding
            evidence.errors.append(f"{type(exc).__name__}: {exc}")
        evidence.extras.setdefault("info", {}).update(
            {
                "virtual_time": round(sim.now, 3),
                "nodes": len(self.spec.nodes),
                "edges": len(self.spec.edges),
            }
        )
        return evidence


class FleetLinkCutScenario(FleetScenario):
    """Cut the highest-degree node's first link; the mesh must reroute."""

    def __init__(self, spec: FleetSpec, converge_timeout: float = 60.0):
        """Pick the cut deterministically from the spec's degree table."""
        super().__init__(spec, converge_timeout)
        self.name = f"fleet-linkcut-{spec.name}"
        adj = adjacency(spec.nodes, spec.edges)
        hub = max(sorted(spec.nodes), key=lambda n: len(adj[n]))
        peer = adj[hub][0]
        self._cut = [(min(hub, peer), max(hub, peer))]

    def cut_edges(self) -> list[tuple[int, int]]:
        """The single hub-adjacent edge chosen at construction."""
        return self._cut


class FleetPartitionScenario(FleetScenario):
    """Cut every edge between the first region and the rest.

    While partitioned, "correct routes" means *no* routes across the
    gap (the oracle only credits reachable destinations); after repair
    the full mesh must converge again and deliver across the healed
    boundary.
    """

    def __init__(self, spec: FleetSpec, converge_timeout: float = 60.0):
        """Derive the partition cut from the spec's own region split."""
        super().__init__(spec, converge_timeout)
        self.name = f"fleet-partition-{spec.name}"
        if spec.shards < 2:
            spec = spec.with_regions(2)
        self._island = set(spec.regions[0])
        self._cut = [
            (a, b)
            for a, b in spec.edges
            if (a in self._island) != (b in self._island)
        ]

    def cut_edges(self) -> list[tuple[int, int]]:
        """Every edge crossing the island boundary."""
        return self._cut

    def probe(self) -> tuple[int, int]:
        """A pair spanning the island boundary."""
        a, b = self.cut_edges()[0]
        return a, b


def fleet_matrix(
    kind: str = "grid", nodes: int = 16, seed: int = 0
) -> list[Scenario]:
    """The fleet campaign: one link cut and one partition scenario."""
    spec = make_spec(kind, nodes, shards=2, seed=seed)
    return [
        FleetLinkCutScenario(spec),
        FleetPartitionScenario(spec),
    ]


MATRICES: dict[str, Callable[[], list[Scenario]]] = {
    "fleet": fleet_matrix,
    "fleet-smoke": lambda: fleet_matrix(kind="ring", nodes=8),
}
