"""Fleet links: rank-stamped, shard-agnostic packet channels.

A :class:`FleetChannel` is one *direction* of a fleet edge.  Unlike
:class:`repro.sim.link.Link` it models delay only — fleet-scale
impairment comes from explicit link cuts, not per-packet loss — and it
stamps every delivery with a deterministic tie-break rank::

    rank = (send_time, 0, link_id, seq)

a pure function of the delivery's causal source (which channel sent
it, and when, and in what order).  The sharded conductor injects
cross-region deliveries at synchronization-window boundaries — much
later, in insertion-counter terms, than a serial run schedules the
same events — and this rank is exactly what makes the two executions
order events identically at a tied timestamp (see
:mod:`repro.sim.engine`).

The channel does not know whether its destination is local or remote:
it hands ``(arrival, rank, dst, packet)`` to a sink callback.  The
region wires the sink to its own simulator for intra-region edges and
to its cross-region outbox for boundary edges, so the channel itself
behaves identically under any partition — the invariant behind the
1/2/4-shard determinism tests.
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim.engine import Rank

#: One in-flight delivery: (arrival_time, rank, dst_address, packet).
Delivery = tuple[float, Rank, int, Any]

#: Sink signature: receives one Delivery entry.
ChannelSink = Callable[[Delivery], None]


class FleetChannel:
    """One direction of a fleet edge, delivering after a fixed delay."""

    def __init__(
        self,
        src: int,
        dst: int,
        delay: float,
        link_id: int,
        now: Callable[[], float],
        sink: ChannelSink,
        metrics: Any | None = None,
    ):
        self.src = src
        self.dst = dst
        self.delay = delay
        self.link_id = link_id
        self.alive = True
        self._now = now
        self._sink = sink
        self._seq = 0
        self._metrics = metrics

    def send(self, packet: Any) -> None:
        """Emit ``packet`` toward ``dst``; a dead channel blackholes it."""
        if not self.alive:
            if self._metrics is not None:
                self._metrics.inc(f"fleetlink/{self.src}->{self.dst}/dropped_cut")
            return
        sent_at = self._now()
        seq = self._seq
        self._seq += 1
        if self._metrics is not None:
            self._metrics.inc(f"fleetlink/{self.src}->{self.dst}/sent")
        self._sink(
            (
                sent_at + self.delay,
                (sent_at, 0, self.link_id, seq),
                self.dst,
                packet,
            )
        )

    def __repr__(self) -> str:
        state = "up" if self.alive else "cut"
        return f"FleetChannel({self.src}->{self.dst}, {state})"
